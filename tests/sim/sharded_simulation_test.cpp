#include "sim/sharded.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ks::sim {
namespace {

TEST(ShardedSimulation, StartsEmpty) {
  ShardedSimulation sharded;
  EXPECT_EQ(sharded.shard_count(), 5);  // 4 node shards + global
  EXPECT_EQ(sharded.Now(), kTimeZero);
  EXPECT_EQ(sharded.pending(), 0u);
  EXPECT_EQ(sharded.executed(), 0u);
  EXPECT_TRUE(sharded.CapacityStatus().ok());
}

TEST(ShardedSimulation, RunsShardLocalEventsInTimeOrder) {
  ShardedSimulation sharded;
  std::vector<int> order;
  sharded.ScheduleAt(1, Millis(3), [&] { order.push_back(3); });
  sharded.ScheduleAt(1, Millis(1), [&] { order.push_back(1); });
  sharded.ScheduleAt(1, Millis(2), [&] { order.push_back(2); });
  sharded.RunUntil(Millis(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sharded.Now(), Millis(10));
  EXPECT_EQ(sharded.executed(), 3u);
}

TEST(ShardedSimulation, SkipAheadOverIdleWindows) {
  // One event at t=0, one at t=10s: the engine must not grind through ten
  // thousand empty 1 ms windows in between.
  ShardedSimulation sharded;
  int fired = 0;
  sharded.ScheduleAt(1, kTimeZero, [&] { ++fired; });
  sharded.ScheduleAt(2, Seconds(10), [&] { ++fired; });
  sharded.RunUntil(Seconds(10));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sharded.windows(), 2u);
}

TEST(ShardedSimulation, CrossShardSendLandsAfterWindowBarrier) {
  ShardedConfig config;
  config.window = Millis(1);
  ShardedSimulation sharded(config);
  Time landed = kTimeZero;
  // From shard 1, at t=100us, schedule onto shard 2 two windows out.
  sharded.ScheduleAt(1, Micros(100), [&] {
    sharded.ScheduleAt(2, Millis(2) + Micros(7), [&] {
      landed = sharded.Now(2);
    });
  });
  sharded.RunUntil(Millis(5));
  EXPECT_EQ(landed, Millis(2) + Micros(7));
  EXPECT_EQ(sharded.cross_shard_sends(), 1u);
  EXPECT_EQ(sharded.lookahead_violations(), 0u);
}

TEST(ShardedSimulation, LookaheadViolationClampsAndCounts) {
  ShardedConfig config;
  config.window = Millis(1);
  ShardedSimulation sharded(config);
  Time landed = kTimeZero;
  // A same-window cross-shard send violates the conservative lookahead:
  // clamped to the window end, and counted.
  sharded.ScheduleAt(1, Micros(100), [&] {
    sharded.ScheduleAt(2, Micros(200), [&] { landed = sharded.Now(2); });
  });
  sharded.RunUntil(Millis(5));
  EXPECT_EQ(landed, Millis(1));
  EXPECT_EQ(sharded.lookahead_violations(), 1u);
}

TEST(ShardedSimulation, CancelShardLocalEvent) {
  ShardedSimulation sharded;
  int fired = 0;
  auto ref = sharded.ScheduleAt(3, Millis(2), [&] { ++fired; });
  ASSERT_TRUE(ref.valid());
  EXPECT_TRUE(sharded.Cancel(ref));
  EXPECT_FALSE(sharded.Cancel(ref));  // already cancelled
  sharded.RunUntil(Millis(5));
  EXPECT_EQ(fired, 0);
}

TEST(ShardedSimulation, CrossShardSendIsFireAndForget) {
  ShardedSimulation sharded;
  ShardedSimulation::EventRef ref;
  sharded.ScheduleAt(1, Micros(10), [&] {
    ref = sharded.ScheduleAt(2, Millis(3), [] {});
  });
  sharded.RunUntil(Millis(5));
  EXPECT_FALSE(ref.valid());
}

// The determinism contract: a workload fanning messages across shards
// produces a byte-identical execution trace regardless of how many worker
// threads drain the windows.
std::string RunPingWorkload(int threads) {
  ShardedConfig config;
  config.node_shards = 4;
  config.threads = threads;
  config.window = Millis(1);
  ShardedSimulation sharded(config);
  std::string trace;

  // Each node shard runs a periodic tick; every third tick it messages the
  // global shard. All appends to `trace` happen on the global shard — the
  // per-shard work only touches that shard's own counter, and the window
  // barrier orders the global-shard appends across threads.
  struct NodeState {
    int ticks = 0;
  };
  std::vector<NodeState> states(5);

  std::function<void(int)> tick = [&](int shard) {
    auto& st = states[static_cast<std::size_t>(shard)];
    ++st.ticks;
    if (st.ticks % 3 == 0) {
      const int count = st.ticks;
      sharded.ScheduleAt(
          ShardedSimulation::kGlobalShard,
          sharded.Now(shard) + Millis(1), [&, shard, count] {
            trace += "g<-" + std::to_string(shard) + ":" +
                     std::to_string(count) + "@" +
                     std::to_string(
                         sharded.Now(ShardedSimulation::kGlobalShard).count()) +
                     "\n";
          });
    }
    if (st.ticks < 30) {
      sharded.ScheduleAt(shard, sharded.Now(shard) + Millis(1),
                         [&, shard] { tick(shard); });
    }
  };
  for (int shard = 1; shard <= 4; ++shard) {
    sharded.ScheduleAt(shard, Micros(100 * shard), [&, shard] { tick(shard); });
  }
  sharded.RunUntil(Seconds(1));
  return trace;
}

TEST(ShardedSimulation, DeterministicAcrossThreadCounts) {
  const std::string serial = RunPingWorkload(0);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(RunPingWorkload(2), serial);
  EXPECT_EQ(RunPingWorkload(5), serial);
}

// Satellite: event-id headroom. Each shard owns its own 2^40 sequence
// namespace, so the capacity latch (and its test) extends per shard: an
// exhausted shard reports through CapacityStatus with its index, and the
// other shards stay healthy.
TEST(ShardedSimulation, CapacityStatusLatchesPerShard) {
  ShardedSimulation sharded;
  EXPECT_TRUE(sharded.CapacityStatus().ok());
  // Pretend shard 2 already consumed its whole lifetime budget (the same
  // 2^40 sequence cap simulation_test.cpp pins for the single engine).
  constexpr std::uint64_t kMaxSeq = (1ull << 40) - 1;
  sharded.InjectLifetimeEventCountForTest(2, kMaxSeq);
  sharded.ScheduleAt(2, Millis(1), [] {});  // pushes shard 2 over
  EXPECT_TRUE(sharded.exhausted());
  const Status st = sharded.CapacityStatus();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("shard 2"), std::string::npos);
  // Other shards still accept events; their own latches are untouched.
  EXPECT_TRUE(sharded.shard(1).CapacityStatus().ok());
  sharded.ScheduleAt(1, Millis(1), [] {});
  sharded.RunUntil(Millis(2));
}

TEST(ShardForIndex, DeterministicAndInRange) {
  // Pure function of (seed, index, node_shards): same inputs, same shard —
  // never pointer values or iteration order.
  for (int shards : {1, 4, 16}) {
    for (std::uint64_t index = 0; index < 1000; ++index) {
      const int a = ShardForIndex(42, index, shards);
      const int b = ShardForIndex(42, index, shards);
      EXPECT_EQ(a, b);
      EXPECT_GE(a, 1);
      EXPECT_LE(a, shards);
    }
  }
  // Different seeds shuffle the layout.
  int moved = 0;
  for (std::uint64_t index = 0; index < 1000; ++index) {
    if (ShardForIndex(1, index, 16) != ShardForIndex(2, index, 16)) ++moved;
  }
  EXPECT_GT(moved, 800);
}

TEST(ShardForIndex, SpreadsRoughlyEvenly) {
  std::vector<int> counts(17, 0);
  for (std::uint64_t index = 0; index < 16000; ++index) {
    ++counts[static_cast<std::size_t>(ShardForIndex(7, index, 16))];
  }
  for (int shard = 1; shard <= 16; ++shard) {
    EXPECT_GT(counts[static_cast<std::size_t>(shard)], 700);
    EXPECT_LT(counts[static_cast<std::size_t>(shard)], 1300);
  }
}

}  // namespace
}  // namespace ks::sim
