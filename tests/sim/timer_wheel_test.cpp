#include "sim/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"

namespace ks::sim {
namespace {

TEST(TimerWheelTest, ExactAtMicrosecondTick) {
  Simulation sim;
  TimerWheel wheel(&sim, Duration{0});
  std::vector<std::pair<std::int64_t, int>> fired;
  wheel.ScheduleAt(Micros(456), [&] { fired.push_back({sim.Now().count(), 1}); });
  wheel.ScheduleAt(Micros(123), [&] { fired.push_back({sim.Now().count(), 0}); });
  sim.Run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], std::make_pair(std::int64_t{123}, 0));
  EXPECT_EQ(fired[1], std::make_pair(std::int64_t{456}, 1));
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_FALSE(wheel.armed());
}

TEST(TimerWheelTest, QuantizesUpToGrid) {
  Simulation sim;
  TimerWheel wheel(&sim, Micros(500));
  EXPECT_EQ(wheel.QuantizeUp(Micros(0)), Micros(0));
  EXPECT_EQ(wheel.QuantizeUp(Micros(1)), Micros(500));
  EXPECT_EQ(wheel.QuantizeUp(Micros(500)), Micros(500));
  EXPECT_EQ(wheel.QuantizeUp(Micros(1250)), Micros(1500));
  Time at{0};
  wheel.ScheduleAt(Micros(1250), [&] { at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(at, Micros(1500));
}

TEST(TimerWheelTest, CoalescesWindowIntoOneEngineEvent) {
  Simulation sim;
  TimerWheel wheel(&sim, Millis(1));
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    wheel.ScheduleAt(Micros(5001 + 100 * i), [&] {
      ++fired;
      EXPECT_EQ(sim.Now(), Micros(6000));
    });
  }
  // Ten timers, one armed engine event.
  EXPECT_EQ(wheel.pending(), 10u);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(wheel.stats().fired, 10u);
  EXPECT_EQ(wheel.stats().ticks, 1u);
}

TEST(TimerWheelTest, SameTickOrderIsRequestedTimeThenInsertion) {
  Simulation sim;
  TimerWheel wheel(&sim, Millis(1));
  std::vector<int> order;
  wheel.ScheduleAt(Micros(900), [&] { order.push_back(0); });  // latest due
  wheel.ScheduleAt(Micros(100), [&] { order.push_back(1); });
  wheel.ScheduleAt(Micros(100), [&] { order.push_back(2); });  // FIFO after 1
  wheel.ScheduleAt(Micros(500), [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 0}));
}

TEST(TimerWheelTest, CancelPreventsFireAndStaleCancelIsNoop) {
  Simulation sim;
  TimerWheel wheel(&sim, Micros(1));
  int fired = 0;
  const TimerId a = wheel.ScheduleAt(Millis(1), [&] { ++fired; });
  const TimerId b = wheel.ScheduleAt(Millis(2), [&] { ++fired; });
  EXPECT_TRUE(wheel.Cancel(a));
  EXPECT_FALSE(wheel.Cancel(a));  // already cancelled
  EXPECT_EQ(wheel.pending(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(wheel.Cancel(b));  // already fired
  EXPECT_FALSE(wheel.Cancel(kInvalidTimer));
}

TEST(TimerWheelTest, CancellingLastTimerDisarmsTheWheel) {
  Simulation sim;
  TimerWheel wheel(&sim, Micros(500));
  const TimerId t = wheel.ScheduleAt(Millis(5), [] {});
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_TRUE(wheel.Cancel(t));
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(wheel.armed());
}

TEST(TimerWheelTest, InvalidateAllDropsEverything) {
  Simulation sim;
  TimerWheel wheel(&sim, Micros(500));
  int fired = 0;
  const TimerId a = wheel.ScheduleAt(Millis(1), [&] { ++fired; });
  wheel.ScheduleAt(Millis(2), [&] { ++fired; });
  EXPECT_EQ(wheel.InvalidateAll(), 2u);
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(wheel.Cancel(a));  // generation stamp: id is stale now
  // The wheel stays usable after an invalidation.
  Time at{0};
  wheel.ScheduleAt(Millis(3), [&] { at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(at, Millis(3));
  EXPECT_EQ(wheel.stats().invalidated, 2u);
}

TEST(TimerWheelTest, FarDeadlinesCascadeToExactFireTimes) {
  Simulation sim;
  TimerWheel wheel(&sim, Micros(1));
  // 1 s at a 1 us tick is 10^6 ticks: beyond the 64^3-tick top span, so
  // this exercises the overflow bin and every cascade level.
  std::vector<std::int64_t> fired;
  wheel.ScheduleAt(Seconds(1.0), [&] { fired.push_back(sim.Now().count()); });
  wheel.ScheduleAt(Millis(300), [&] { fired.push_back(sim.Now().count()); });
  wheel.ScheduleAt(Micros(70), [&] { fired.push_back(sim.Now().count()); });
  sim.Run();
  EXPECT_EQ(fired, (std::vector<std::int64_t>{70, 300000, 1000000}));
}

TEST(TimerWheelTest, CallbackMayScheduleSameInstant) {
  Simulation sim;
  TimerWheel wheel(&sim, Micros(500));
  std::vector<int> order;
  wheel.ScheduleAt(Millis(1), [&] {
    order.push_back(0);
    wheel.ScheduleAt(sim.Now(), [&] { order.push_back(1); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(sim.Now(), Millis(1));
}

TEST(TimerWheelTest, CallbackMayCancelSiblingInSameBatch) {
  Simulation sim;
  TimerWheel wheel(&sim, Millis(1));
  int fired = 0;
  TimerId victim = kInvalidTimer;
  wheel.ScheduleAt(Micros(400), [&] {
    ++fired;
    EXPECT_TRUE(wheel.Cancel(victim));
  });
  victim = wheel.ScheduleAt(Micros(600), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, CallbackMayInvalidateAllThenReschedule) {
  // The token backend's restart path: a wheel-resident timer wipes the
  // wheel and schedules the daemon's come-back timer in the same breath.
  Simulation sim;
  TimerWheel wheel(&sim, Micros(500));
  int stale_fires = 0;
  Time comeback{0};
  wheel.ScheduleAt(Millis(2), [&] { ++stale_fires; });
  wheel.ScheduleAt(Millis(2), [&] { ++stale_fires; });
  wheel.ScheduleAt(Millis(1), [&] {
    wheel.InvalidateAll();
    wheel.ScheduleAfter(Millis(50), [&] { comeback = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(stale_fires, 0);
  EXPECT_EQ(comeback, Millis(51));
  EXPECT_FALSE(wheel.armed());
}

TEST(TimerWheelTest, RandomizedAgainstEngineAtUnitTick) {
  // With a 1 us tick the wheel must be an exact drop-in for raw engine
  // events: same fire times, same (time, insertion) order.
  std::mt19937_64 rng(20260807);
  for (int round = 0; round < 5; ++round) {
    Simulation raw_sim;
    Simulation wheel_sim;
    TimerWheel wheel(&wheel_sim, Micros(1));
    std::vector<std::pair<std::int64_t, int>> raw_fired;
    std::vector<std::pair<std::int64_t, int>> wheel_fired;
    std::uniform_int_distribution<std::int64_t> at_us(0, 2'000'000);
    for (int i = 0; i < 500; ++i) {
      const Time t{at_us(rng)};
      raw_sim.ScheduleAt(t, [&raw_fired, &raw_sim, i] {
        raw_fired.push_back({raw_sim.Now().count(), i});
      });
      wheel.ScheduleAt(t, [&wheel_fired, &wheel_sim, i] {
        wheel_fired.push_back({wheel_sim.Now().count(), i});
      });
    }
    raw_sim.Run();
    wheel_sim.Run();
    EXPECT_EQ(raw_fired, wheel_fired);
  }
}

TEST(TimerWheelTest, StatsCountCoalescing) {
  Simulation sim;
  TimerWheel wheel(&sim, Millis(5));
  // 4 devices x 20 renewals landing in the same 5 ms windows.
  for (int d = 0; d < 4; ++d) {
    for (int k = 1; k <= 20; ++k) {
      wheel.ScheduleAt(Millis(5 * k) + Micros(100 * d), [] {});
    }
  }
  sim.Run();
  EXPECT_EQ(wheel.stats().scheduled, 80u);
  EXPECT_EQ(wheel.stats().fired, 80u);
  // All four devices' renewals in window k collapse onto one tick.
  EXPECT_LE(wheel.stats().ticks, 21u);
}

}  // namespace
}  // namespace ks::sim
