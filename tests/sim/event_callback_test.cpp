#include "sim/event_callback.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace ks::sim {
namespace {

// Instance-counting capture: every constructor (incl. the moves the engine's
// relocation path uses) increments, every destructor decrements. A nonzero
// count after the callback dies means a leaked or double-destroyed capture.
struct Counted {
  static int live;
  int* hits;
  explicit Counted(int* h) : hits(h) { ++live; }
  Counted(const Counted& o) : hits(o.hits) { ++live; }
  Counted(Counted&& o) noexcept : hits(o.hits) { ++live; }
  ~Counted() { --live; }
  void operator()() const { ++*hits; }
};
int Counted::live = 0;

TEST(EventCallback, EmptyIsFalsey) {
  EventCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(EventCallback, InlineCaptureInvokes) {
  int hits = 0;
  EventCallback cb([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(EventCallback, LargeCaptureUsesHeapAndStillInvokes) {
  // 128 bytes of capture — well past kInlineCapacity, so this exercises the
  // heap fallback path end to end.
  std::array<double, 16> payload{};
  payload[0] = 1.5;
  payload[15] = 2.5;
  static_assert(sizeof(payload) > EventCallback::kInlineCapacity);
  double sum = 0.0;
  EventCallback cb([payload, &sum] { sum = payload[0] + payload[15]; });
  cb();
  EXPECT_DOUBLE_EQ(sum, 4.0);
}

TEST(EventCallback, MoveTransfersTargetAndEmptiesSource) {
  int hits = 0;
  EventCallback a([&hits] { ++hits; });
  EventCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  EventCallback c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(EventCallback, DestroysCaptureExactlyOnce) {
  int hits = 0;
  {
    EventCallback a{Counted(&hits)};
    EXPECT_EQ(Counted::live, 1);
    EventCallback b(std::move(a));
    EXPECT_EQ(Counted::live, 1);  // relocation, not duplication
    b();
  }
  EXPECT_EQ(Counted::live, 0);
  EXPECT_EQ(hits, 1);
}

TEST(EventCallback, StringCaptureSurvivesMove) {
  // Regression guard for the relocation path: libstdc++'s SSO string is
  // self-referential, so a bytewise slot move would leave the capture's
  // data pointer dangling. Both short (SSO) and long (heap) strings must
  // read back intact after the callback is moved.
  const std::string short_s = "pod-7";
  const std::string long_s(100, 'x');
  std::string out_short, out_long;
  EventCallback a([short_s, long_s, &out_short, &out_long] {
    out_short = short_s;
    out_long = long_s;
  });
  EventCallback b(std::move(a));
  EventCallback c(std::move(b));
  c();
  EXPECT_EQ(out_short, short_s);
  EXPECT_EQ(out_long, long_s);
}

TEST(EventCallback, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<std::uint64_t>(42);
  std::uint64_t got = 0;
  EventCallback cb([p = std::move(owned), &got] { got = *p; });
  cb();
  EXPECT_EQ(got, 42u);
}

TEST(EventCallback, EmplaceReplacesTarget) {
  int hits = 0;
  EventCallback cb{Counted(&hits)};
  EXPECT_EQ(Counted::live, 1);
  int other = 0;
  cb.emplace([&other] { ++other; });
  EXPECT_EQ(Counted::live, 0);  // old target destroyed by emplace
  cb();
  EXPECT_EQ(other, 1);
  EXPECT_EQ(hits, 0);
}

TEST(EventCallback, ResetDestroysAndEmpties) {
  int hits = 0;
  EventCallback cb{Counted(&hits)};
  cb.reset();
  EXPECT_EQ(Counted::live, 0);
  EXPECT_FALSE(static_cast<bool>(cb));
  cb.reset();  // idempotent
}

}  // namespace
}  // namespace ks::sim
