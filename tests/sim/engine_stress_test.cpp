// Stress and regression tests for the allocation-light event core:
//
//  * the pending() underflow regression — Cancel() on an id that already
//    fired used to be accepted (tombstone inserted, pending decremented),
//    silently skipping a live event later and driving pending() below zero;
//  * cancel/reschedule churn (the node-watchdog shape) at a rate that
//    forces the lazy-deletion heap through its stale-purge path;
//  * a randomized schedule/cancel/run interleaving cross-checked against a
//    straightforward reference model, which pins the (time, insertion-order)
//    determinism contract through slot reuse and compaction.

#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace ks::sim {
namespace {

TEST(SimulationCancel, FiredIdIsNotCancellable) {
  Simulation sim;
  int fired = 0;
  const EventId first = sim.ScheduleAt(Seconds(1), [&] { ++fired; });
  const EventId second = sim.ScheduleAt(Seconds(2), [&] { ++fired; });
  ASSERT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  // The regression: cancelling the fired id must be a no-op, not a
  // tombstone that later swallows a live event or corrupts pending().
  EXPECT_FALSE(sim.Cancel(first));
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_TRUE(sim.Cancel(second));
  EXPECT_EQ(sim.pending(), 0u);
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulationCancel, PendingStaysExactAcrossFireAndCancel) {
  Simulation sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.ScheduleAt(Seconds(i), [] {}));
  }
  EXPECT_EQ(sim.pending(), 100u);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(sim.Step());
  EXPECT_EQ(sim.pending(), 50u);
  // Cancel everything, fired and pending alike: only the 50 still-pending
  // events may count.
  std::size_t cancelled = 0;
  for (const EventId id : ids) {
    if (sim.Cancel(id)) ++cancelled;
  }
  EXPECT_EQ(cancelled, 50u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulationCancel, SelfCancelDuringCallbackIsNoop) {
  Simulation sim;
  EventId self = kInvalidEvent;
  bool self_cancel = true;
  self = sim.ScheduleAt(Seconds(1), [&] {
    self_cancel = sim.Cancel(self);  // already firing: must be false
  });
  sim.Run();
  EXPECT_FALSE(self_cancel);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulationCancel, CancelledHeadKeepsExecutedExact) {
  // RunUntil drains cancelled heads through the same path as Step(); a
  // double scan would either double-count executed() or stall the clock.
  Simulation sim;
  for (int i = 0; i < 10; ++i) {
    const EventId id = sim.ScheduleAt(Seconds(1), [] {});
    sim.Cancel(id);
  }
  int fired = 0;
  sim.ScheduleAt(Seconds(2), [&] { ++fired; });
  sim.RunUntil(Seconds(3));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.executed(), 1u);
  EXPECT_EQ(sim.Now(), Seconds(3));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulationStress, WatchdogCancelRescheduleChurn) {
  // The node failure-detection shape: every heartbeat cancels and re-arms
  // its node's detection timer. Detection timers never fire while
  // heartbeats flow, and the cancelled entries (one per heartbeat) vastly
  // outnumber live events, forcing repeated stale purges.
  Simulation sim;
  constexpr int kNodes = 64;
  constexpr std::uint64_t kHeartbeats = 200000;
  std::vector<EventId> detect(kNodes, kInvalidEvent);
  std::uint64_t detections = 0;

  struct Heartbeat {
    Simulation* sim;
    std::vector<EventId>* detect;
    std::uint64_t* detections;
    int node;
    void operator()() const {
      EventId& d = (*detect)[static_cast<std::size_t>(node)];
      if (d != kInvalidEvent) {
        EXPECT_TRUE(sim->Cancel(d));
      }
      std::uint64_t* hits = detections;
      d = sim->ScheduleAfter(Seconds(10), [hits] { ++*hits; });
      sim->ScheduleAfter(Seconds(1), Heartbeat{sim, detect, detections, node});
    }
  };

  for (int n = 0; n < kNodes; ++n) {
    sim.ScheduleAfter(Micros(n), Heartbeat{&sim, &detect, &detections, n});
  }
  sim.Run(kHeartbeats);
  EXPECT_EQ(detections, 0u);  // heartbeats always beat the 10 s timeout
  EXPECT_EQ(sim.executed(), kHeartbeats);
  // Each node holds exactly one pending heartbeat and one detection timer.
  EXPECT_EQ(sim.pending(), static_cast<std::size_t>(2 * kNodes));
}

TEST(SimulationStress, ReuseAfterDrainCompaction) {
  Simulation sim;
  std::uint64_t fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 10000; ++i) {  // past the compaction threshold
    ids.push_back(sim.ScheduleAt(Micros(i), [&] { ++fired; }));
  }
  sim.Run();
  EXPECT_EQ(fired, 10000u);
  EXPECT_EQ(sim.pending(), 0u);
  // The drained engine may have compacted its arenas; stale ids from
  // before the compaction must still be rejected, and fresh scheduling
  // must work with full ordering guarantees.
  for (const EventId id : ids) EXPECT_FALSE(sim.Cancel(id));
  std::vector<int> order;
  sim.ScheduleAfter(Seconds(2), [&] { order.push_back(2); });
  sim.ScheduleAfter(Seconds(1), [&] { order.push_back(1); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// Reference model: the engine's observable contract, implemented the naive
// way. Events fire in (time, insertion order); cancel only works on events
// that have neither fired nor been cancelled.
struct ModelEvent {
  Time at;
  std::uint64_t tag = 0;
  EventId id = kInvalidEvent;
  bool cancelled = false;
  bool fired = false;
};

TEST(SimulationStress, RandomCancelRescheduleMatchesReferenceModel) {
  Rng rng(0xC0FFEE);
  Simulation sim;
  std::vector<ModelEvent> model;
  std::vector<std::uint64_t> expected, actual;
  std::uint64_t next_tag = 0;

  for (int round = 0; round < 300; ++round) {
    // Schedule a burst at randomized offsets; small range so ties are
    // common and the FIFO-within-timestamp rule is really exercised.
    const int burst = static_cast<int>(rng.UniformInt(1, 30));
    for (int i = 0; i < burst; ++i) {
      const Duration delay = Micros(rng.UniformInt(0, 500));
      const std::uint64_t tag = next_tag++;
      ModelEvent ev;
      ev.at = sim.Now() + delay;
      ev.tag = tag;
      ev.id = sim.ScheduleAfter(delay,
                                [tag, &actual] { actual.push_back(tag); });
      model.push_back(ev);
    }
    // Cancel a random subset of live events, and try a few dead ids.
    for (ModelEvent& ev : model) {
      if (!ev.fired && !ev.cancelled && rng.Chance(0.3)) {
        EXPECT_TRUE(sim.Cancel(ev.id)) << "tag " << ev.tag;
        ev.cancelled = true;
      } else if (ev.fired && rng.Chance(0.02)) {
        EXPECT_FALSE(sim.Cancel(ev.id)) << "tag " << ev.tag;
      }
    }
    // Advance; the model fires everything due by then in (at, tag) order
    // (tag doubles as insertion order — it is assigned monotonically).
    const Time until = sim.Now() + Micros(rng.UniformInt(0, 400));
    sim.RunUntil(until);
    std::vector<ModelEvent*> due;
    for (ModelEvent& ev : model) {
      if (!ev.fired && !ev.cancelled && ev.at <= until) due.push_back(&ev);
    }
    std::sort(due.begin(), due.end(), [](const ModelEvent* a,
                                         const ModelEvent* b) {
      if (a->at != b->at) return a->at < b->at;
      return a->tag < b->tag;
    });
    for (ModelEvent* ev : due) {
      ev->fired = true;
      expected.push_back(ev->tag);
    }
    const std::size_t live = static_cast<std::size_t>(
        std::count_if(model.begin(), model.end(), [](const ModelEvent& ev) {
          return !ev.fired && !ev.cancelled;
        }));
    ASSERT_EQ(sim.pending(), live) << "round " << round;
    ASSERT_EQ(actual.size(), expected.size()) << "round " << round;
  }
  sim.Run();
  std::vector<ModelEvent*> rest;
  for (ModelEvent& ev : model) {
    if (!ev.fired && !ev.cancelled) rest.push_back(&ev);
  }
  std::sort(rest.begin(), rest.end(),
            [](const ModelEvent* a, const ModelEvent* b) {
              if (a->at != b->at) return a->at < b->at;
              return a->tag < b->tag;
            });
  for (ModelEvent* ev : rest) {
    ev->fired = true;
    expected.push_back(ev->tag);
  }
  // Deferred full comparison: identical firing order, event for event.
  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace ks::sim
