#include "sim/tick_hub.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace ks::sim {
namespace {

TEST(TickHubTest, FiresAtExactPeriodMultiples) {
  Simulation sim;
  TickHub hub(&sim);
  std::vector<std::int64_t> at;
  hub.Subscribe(Millis(10), [&] { at.push_back(sim.Now().count()); });
  sim.RunUntil(Millis(35));
  EXPECT_EQ(at, (std::vector<std::int64_t>{10000, 20000, 30000}));
}

TEST(TickHubTest, EqualPeriodSubscribersShareOneEngineEvent) {
  Simulation sim;
  TickHub hub(&sim, Micros(500));
  int a = 0;
  int b = 0;
  int c = 0;
  hub.Subscribe(Seconds(1.0), [&] { ++a; });
  hub.Subscribe(Seconds(1.0), [&] { ++b; });
  hub.Subscribe(Seconds(1.0), [&] { ++c; });
  sim.RunUntil(Seconds(10.0));
  EXPECT_EQ(a, 10);
  EXPECT_EQ(b, 10);
  EXPECT_EQ(c, 10);
  EXPECT_EQ(hub.fires(), 30u);
  // Three subscribers, ten sampling instants, ten engine events.
  EXPECT_EQ(hub.ticks(), 10u);
}

TEST(TickHubTest, UnsubscribeStopsFiring) {
  Simulation sim;
  TickHub hub(&sim);
  int n = 0;
  const TickHub::SubId id = hub.Subscribe(Millis(1), [&] { ++n; });
  sim.RunUntil(Millis(3));
  EXPECT_TRUE(hub.Unsubscribe(id));
  EXPECT_FALSE(hub.Unsubscribe(id));
  sim.RunUntil(Millis(10));
  EXPECT_EQ(n, 3);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(TickHubTest, SubscriberMayUnsubscribeItselfMidFire) {
  Simulation sim;
  TickHub hub(&sim);
  int n = 0;
  TickHub::SubId id = 0;
  id = hub.Subscribe(Millis(1), [&] {
    if (++n == 2) hub.Unsubscribe(id);
  });
  sim.RunUntil(Millis(10));
  EXPECT_EQ(n, 2);
  EXPECT_EQ(hub.subscribers(), 0u);
}

TEST(TickHubTest, MixedPeriodsKeepTheirOwnGrids) {
  Simulation sim;
  TickHub hub(&sim, Micros(500));
  std::vector<std::int64_t> fast;
  std::vector<std::int64_t> slow;
  hub.Subscribe(Millis(3), [&] { fast.push_back(sim.Now().count()); });
  hub.Subscribe(Millis(5), [&] { slow.push_back(sim.Now().count()); });
  sim.RunUntil(Millis(15));
  EXPECT_EQ(fast, (std::vector<std::int64_t>{3000, 6000, 9000, 12000, 15000}));
  EXPECT_EQ(slow, (std::vector<std::int64_t>{5000, 10000, 15000}));
}

}  // namespace
}  // namespace ks::sim
