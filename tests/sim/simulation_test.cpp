#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ks::sim {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.Now(), kTimeZero);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(Seconds(3), [&] { order.push_back(3); });
  sim.ScheduleAt(Seconds(1), [&] { order.push_back(1); });
  sim.ScheduleAt(Seconds(2), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Seconds(3));
}

TEST(Simulation, SameTimeIsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  Time fired{-1};
  sim.ScheduleAt(Seconds(5), [&] {
    sim.ScheduleAfter(Seconds(2), [&] { fired = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired, Seconds(7));
}

TEST(Simulation, PastSchedulingClampsToNow) {
  Simulation sim;
  Time fired{-1};
  sim.ScheduleAt(Seconds(5), [&] {
    sim.ScheduleAt(Seconds(1), [&] { fired = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired, Seconds(5));
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.ScheduleAt(Seconds(1), [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(Simulation, CancelTwiceIsFalse) {
  Simulation sim;
  const EventId id = sim.ScheduleAt(Seconds(1), [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(kInvalidEvent));
}

TEST(Simulation, CancelledEventsDoNotBlockRunUntil) {
  Simulation sim;
  const EventId id = sim.ScheduleAt(Seconds(1), [] {});
  sim.Cancel(id);
  bool ran = false;
  sim.ScheduleAt(Seconds(2), [&] { ran = true; });
  sim.RunUntil(Seconds(3));
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.Now(), Seconds(3));
}

TEST(Simulation, RunUntilStopsBeforeLaterEvents) {
  Simulation sim;
  bool early = false, late = false;
  sim.ScheduleAt(Seconds(1), [&] { early = true; });
  sim.ScheduleAt(Seconds(10), [&] { late = true; });
  sim.RunUntil(Seconds(5));
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.Now(), Seconds(5));
  sim.Run();
  EXPECT_TRUE(late);
}

TEST(Simulation, RunUntilAdvancesClockWithoutEvents) {
  Simulation sim;
  sim.RunUntil(Seconds(42));
  EXPECT_EQ(sim.Now(), Seconds(42));
}

TEST(Simulation, MaxEventsGuardStopsSelfRescheduling) {
  Simulation sim;
  std::function<void()> loop = [&] { sim.ScheduleAfter(Seconds(1), loop); };
  sim.ScheduleAfter(Seconds(1), loop);
  sim.Run(100);
  EXPECT_EQ(sim.executed(), 100u);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.Step());
  sim.ScheduleAt(Seconds(1), [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(Simulation, MillionEventSmoke) {
  // Throughput smoke: the engine must chew through a large event count
  // without pathological behavior (this is the workhorse under every
  // cluster experiment).
  Simulation sim;
  std::uint64_t fired = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    sim.ScheduleAt(Micros(i % 1000), [&] { ++fired; });
  }
  sim.Run();
  EXPECT_EQ(fired, 1'000'000u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, EventsScheduledDuringRunExecute) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAt(Seconds(1), [&] {
    ++count;
    sim.ScheduleAfter(Seconds(1), [&] { ++count; });
  });
  sim.Run();
  EXPECT_EQ(count, 2);
}

TEST(Simulation, HealthyEngineReportsOkCapacity) {
  Simulation sim;
  sim.ScheduleAt(Seconds(1), [] {});
  EXPECT_FALSE(sim.exhausted());
  EXPECT_TRUE(sim.CapacityStatus().ok());
  EXPECT_EQ(sim.lifetime_events(), 1u);
}

TEST(Simulation, LifetimeExhaustionLatchesInsteadOfAborting) {
  constexpr std::uint64_t kMaxSeq = (1ull << 40) - 1;
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(Seconds(1), [&] { ++fired; });
  // Pretend all but two ids of the 2^40 - 1 lifetime space are spent.
  sim.InjectLifetimeEventCountForTest(kMaxSeq - 2);
  EXPECT_EQ(sim.lifetime_events(), kMaxSeq - 2);
  EXPECT_FALSE(sim.exhausted());

  // The last two ids still mint...
  EXPECT_NE(sim.ScheduleAt(Seconds(2), [&] { ++fired; }), kInvalidEvent);
  EXPECT_NE(sim.ScheduleAt(Seconds(3), [&] { ++fired; }), kInvalidEvent);
  EXPECT_FALSE(sim.exhausted());

  // ...then the guard trips: no abort, Schedule returns kInvalidEvent and
  // the engine reports the exhaustion with its counts.
  EXPECT_EQ(sim.ScheduleAt(Seconds(4), [&] { ++fired; }), kInvalidEvent);
  EXPECT_TRUE(sim.exhausted());
  const Status status = sim.CapacityStatus();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("lifetime"), std::string::npos);
  EXPECT_NE(status.message().find(std::to_string(kMaxSeq)),
            std::string::npos);

  // Later attempts stay rejected (both Schedule flavors), but everything
  // already queued still drains normally.
  EXPECT_EQ(sim.ScheduleAfter(Seconds(1), [&] { ++fired; }), kInvalidEvent);
  sim.Run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace ks::sim
