#include "kubeshare/algorithm.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ks::kubeshare {
namespace {

ScheduleRequest Req(const std::string& name, double util, double mem = 0.1) {
  ScheduleRequest r;
  r.sharepod = name;
  r.gpu.gpu_request = util;
  r.gpu.gpu_limit = 1.0;
  r.gpu.gpu_mem = mem;
  return r;
}

std::vector<NodeFreeGpus> Supply(int per_node, int nodes = 2) {
  std::vector<NodeFreeGpus> out;
  for (int i = 0; i < nodes; ++i) {
    out.push_back({"node-" + std::to_string(i), per_node});
  }
  return out;
}

TEST(Algorithm1, FirstRequestCreatesNewDevice) {
  VgpuPool pool;
  auto id = ScheduleSharePod(pool, Req("a", 0.3), Supply(4));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.DeviceOf("a"), *id);
}

TEST(Algorithm1, SecondRequestPacksViaBestFit) {
  VgpuPool pool;
  auto first = ScheduleSharePod(pool, Req("a", 0.3), Supply(4));
  auto second = ScheduleSharePod(pool, Req("b", 0.3), Supply(4));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // shared, not a fresh device
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Algorithm1, BestFitPicksTightestHole) {
  VgpuPool pool;
  // Device 1 at 0.7 used, device 2 at 0.4 used.
  auto d1 = ScheduleSharePod(pool, Req("a", 0.7), Supply(4));
  auto d2 = ScheduleSharePod(pool, Req("b", 0.4), Supply(4));
  ASSERT_NE(*d1, *d2);  // 0.4 does not fit into d1's 0.3 residual
  // A 0.25 request fits both; best fit = tightest residual = d1 (0.3 left).
  auto d3 = ScheduleSharePod(pool, Req("c", 0.25), Supply(4));
  ASSERT_TRUE(d3.ok());
  EXPECT_EQ(*d3, *d1);
}

TEST(Algorithm1, NewDeviceWhenNothingFits) {
  VgpuPool pool;
  ASSERT_TRUE(ScheduleSharePod(pool, Req("a", 0.8), Supply(4)).ok());
  auto second = ScheduleSharePod(pool, Req("b", 0.5), Supply(4));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(pool.size(), 2u);
}

TEST(Algorithm1, UnavailableWhenNoPhysicalGpuLeft) {
  VgpuPool pool;
  ASSERT_TRUE(ScheduleSharePod(pool, Req("a", 0.8), Supply(1, 1)).ok());
  auto second = ScheduleSharePod(pool, Req("b", 0.5), Supply(0, 1));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
}

TEST(Algorithm1, MemoryDimensionAlsoPacks) {
  VgpuPool pool;
  ASSERT_TRUE(ScheduleSharePod(pool, Req("a", 0.1, 0.9), Supply(4)).ok());
  // Compute fits but memory does not -> new device.
  auto second = ScheduleSharePod(pool, Req("b", 0.1, 0.5), Supply(4));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(pool.size(), 2u);
}

TEST(Algorithm1, NodeConstraintRestrictsNewDevice) {
  VgpuPool pool;
  ScheduleRequest r = Req("a", 0.5);
  r.node_constraint = "node-1";
  auto id = ScheduleSharePod(pool, r, Supply(4));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(pool.Get(*id)->node, "node-1");
}

TEST(Algorithm1, NodeConstraintExcludesForeignDevices) {
  VgpuPool pool;
  ASSERT_TRUE(ScheduleSharePod(pool, Req("a", 0.2), Supply(4, 1)).ok());
  ASSERT_EQ(pool.List()[0]->node, "node-0");
  ScheduleRequest r = Req("b", 0.2);
  r.node_constraint = "node-7";
  auto res = ScheduleSharePod(pool, r, Supply(4, 1));  // only node-0 exists
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kUnavailable);
}

// ---- Affinity: Step 1 --------------------------------------------------

TEST(Algorithm1, AffinityGroupsOnSameDevice) {
  VgpuPool pool;
  ScheduleRequest a = Req("a", 0.3);
  a.locality.affinity = Label("grp");
  ScheduleRequest b = Req("b", 0.3);
  b.locality.affinity = Label("grp");
  auto d1 = ScheduleSharePod(pool, a, Supply(4));
  auto d2 = ScheduleSharePod(pool, b, Supply(4));
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(*d1, *d2);
}

TEST(Algorithm1, AffinityOverflowIsHardRejected) {
  VgpuPool pool;
  ScheduleRequest a = Req("a", 0.7);
  a.locality.affinity = Label("grp");
  ScheduleRequest b = Req("b", 0.7);
  b.locality.affinity = Label("grp");
  ASSERT_TRUE(ScheduleSharePod(pool, a, Supply(4)).ok());
  auto res = ScheduleSharePod(pool, b, Supply(4));
  ASSERT_FALSE(res.ok());
  // Line 6 of Algorithm 1: reject, do NOT fall through to a new device.
  EXPECT_EQ(res.status().code(), StatusCode::kRejected);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Algorithm1, AffinityWithExclusionConflictRejected) {
  VgpuPool pool;
  ScheduleRequest a = Req("a", 0.2);
  a.locality.affinity = Label("grp");
  a.locality.exclusion = Label("tenant-a");
  ASSERT_TRUE(ScheduleSharePod(pool, a, Supply(4)).ok());
  ScheduleRequest b = Req("b", 0.2);
  b.locality.affinity = Label("grp");
  b.locality.exclusion = Label("tenant-b");
  auto res = ScheduleSharePod(pool, b, Supply(4));
  EXPECT_EQ(res.status().code(), StatusCode::kRejected);
}

TEST(Algorithm1, AffinityWithAntiAffinityConflictRejected) {
  VgpuPool pool;
  ScheduleRequest a = Req("a", 0.2);
  a.locality.affinity = Label("grp");
  a.locality.anti_affinity = Label("anti");
  ASSERT_TRUE(ScheduleSharePod(pool, a, Supply(4)).ok());
  ScheduleRequest b = Req("b", 0.2);
  b.locality.affinity = Label("grp");
  b.locality.anti_affinity = Label("anti");
  auto res = ScheduleSharePod(pool, b, Supply(4));
  EXPECT_EQ(res.status().code(), StatusCode::kRejected);
}

TEST(Algorithm1, FirstAffinityRequestPrefersIdleDevice) {
  VgpuPool pool;
  // Busy device (no affinity) and an idle one.
  ASSERT_TRUE(ScheduleSharePod(pool, Req("busy", 0.2), Supply(4)).ok());
  const GpuId idle = pool.Create("node-0").id;
  ASSERT_TRUE(pool.Activate(idle, GpuUuid("GPU-IDLE")).ok());
  ScheduleRequest a = Req("a", 0.2);
  a.locality.affinity = Label("grp");
  auto id = ScheduleSharePod(pool, a, Supply(4));
  ASSERT_TRUE(id.ok());
  // Lines 9-14: prefer the idle device so the group has headroom, even
  // though best-fit would have packed onto the busy one.
  EXPECT_EQ(*id, idle);
}

// ---- Anti-affinity / exclusion: Step 2 ----------------------------------

TEST(Algorithm1, AntiAffinitySpreadsAcrossDevices) {
  VgpuPool pool;
  ScheduleRequest a = Req("a", 0.2);
  a.locality.anti_affinity = Label("spread");
  ScheduleRequest b = Req("b", 0.2);
  b.locality.anti_affinity = Label("spread");
  auto d1 = ScheduleSharePod(pool, a, Supply(4));
  auto d2 = ScheduleSharePod(pool, b, Supply(4));
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_NE(*d1, *d2);
}

TEST(Algorithm1, ExclusionSeparatesTenants) {
  VgpuPool pool;
  ScheduleRequest a = Req("a", 0.2);
  a.locality.exclusion = Label("tenant-a");
  ScheduleRequest b = Req("b", 0.2);
  b.locality.exclusion = Label("tenant-b");
  ScheduleRequest a2 = Req("a2", 0.2);
  a2.locality.exclusion = Label("tenant-a");
  auto d1 = ScheduleSharePod(pool, a, Supply(4));
  auto d2 = ScheduleSharePod(pool, b, Supply(4));
  auto d3 = ScheduleSharePod(pool, a2, Supply(4));
  ASSERT_TRUE(d1.ok() && d2.ok() && d3.ok());
  EXPECT_NE(*d1, *d2);
  EXPECT_EQ(*d1, *d3);
}

TEST(Algorithm1, UnlabelledAvoidsExclusiveDevice) {
  VgpuPool pool;
  ScheduleRequest a = Req("a", 0.2);
  a.locality.exclusion = Label("tenant-a");
  auto d1 = ScheduleSharePod(pool, a, Supply(4));
  auto d2 = ScheduleSharePod(pool, Req("b", 0.2), Supply(4));
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_NE(*d1, *d2);
}

TEST(Algorithm1, IdleDevicePassesFiltersUnconditionally) {
  VgpuPool pool;
  // A previously-exclusive device whose tenant left: after detach the
  // labels are recomputed, and the idle device is usable by anyone.
  ScheduleRequest a = Req("a", 0.2);
  a.locality.exclusion = Label("tenant-a");
  auto d1 = ScheduleSharePod(pool, a, Supply(4, 1));
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(pool.Detach("a").ok());
  auto d2 = ScheduleSharePod(pool, Req("b", 0.2), Supply(0, 1));
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(*d1, *d2);
}

// ---- Step 3 preference order --------------------------------------------

TEST(Algorithm1, PrefersUnlabelledOverLabelledDevices) {
  VgpuPool pool;
  ScheduleRequest grp = Req("g", 0.2);
  grp.locality.affinity = Label("grp");
  ASSERT_TRUE(ScheduleSharePod(pool, grp, Supply(4)).ok());
  ASSERT_TRUE(ScheduleSharePod(pool, Req("plain", 0.5), Supply(4)).ok());
  // New unlabelled request: must pick the unlabelled device even though the
  // labelled one is emptier (worst-fit only applies within labelled ones).
  auto id = ScheduleSharePod(pool, Req("c", 0.3), Supply(4));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, pool.DeviceOf("plain"));
}

TEST(Algorithm1, WorstFitAmongLabelledDevices) {
  VgpuPool pool;
  ScheduleRequest g1 = Req("g1", 0.6);
  g1.locality.affinity = Label("grp-1");
  ScheduleRequest g2 = Req("g2", 0.2);
  g2.locality.affinity = Label("grp-2");
  ASSERT_TRUE(ScheduleSharePod(pool, g1, Supply(2, 1)).ok());
  ASSERT_TRUE(ScheduleSharePod(pool, g2, Supply(1, 1)).ok());
  ASSERT_EQ(pool.size(), 2u);
  // No unlabelled device exists and no free GPU: a plain request must go to
  // the labelled device with the MOST residual (worst fit) = g2's device.
  auto id = ScheduleSharePod(pool, Req("c", 0.3), Supply(0, 1));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, pool.DeviceOf("g2"));
}

TEST(Algorithm1, NodeTieBreakSpreadsIdleDevices) {
  // Four idle (activated) devices, two per node: simultaneous placements
  // must alternate nodes rather than queueing on one kubelet.
  VgpuPool pool;
  for (int n = 0; n < 2; ++n) {
    for (int g = 0; g < 2; ++g) {
      const GpuId id = pool.Create("node-" + std::to_string(n)).id;
      ASSERT_TRUE(
          pool.Activate(id, GpuUuid("GPU-" + id.value())).ok());
    }
  }
  auto d1 = ScheduleSharePod(pool, Req("a", 0.9), Supply(0));
  auto d2 = ScheduleSharePod(pool, Req("b", 0.9), Supply(0));
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_NE(pool.Get(*d1)->node, pool.Get(*d2)->node);
}

TEST(Algorithm1, WorstFitVariantSpreads) {
  VgpuPool pool;
  ASSERT_TRUE(ScheduleSharePod(pool, Req("a", 0.3), Supply(4),
                               PlacementVariant::kWorstFitEverywhere)
                  .ok());
  // Worst-fit prefers the roomiest feasible device: a fresh one is not
  // created while an existing one fits, but among existing devices the
  // emptiest wins.
  ASSERT_TRUE(ScheduleSharePod(pool, Req("b", 0.7), Supply(4),
                               PlacementVariant::kWorstFitEverywhere)
                  .ok());
  ASSERT_EQ(pool.size(), 1u);  // b still fit into a's residual 0.7
  ASSERT_TRUE(ScheduleSharePod(pool, Req("c", 0.5), Supply(4),
                               PlacementVariant::kWorstFitEverywhere)
                  .ok());
  ASSERT_EQ(pool.size(), 2u);
  // A 0.2 request now goes to the roomier device (residual 0.5), not the
  // full one (residual 0.0).
  auto d = ScheduleSharePod(pool, Req("d", 0.2), Supply(4),
                            PlacementVariant::kWorstFitEverywhere);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, pool.DeviceOf("c"));
}

TEST(Algorithm1, FirstFitVariantTakesFirstFeasible) {
  VgpuPool pool;
  ASSERT_TRUE(ScheduleSharePod(pool, Req("a", 0.7), Supply(4),
                               PlacementVariant::kFirstFit)
                  .ok());
  ASSERT_TRUE(ScheduleSharePod(pool, Req("b", 0.5), Supply(4),
                               PlacementVariant::kFirstFit)
                  .ok());
  ASSERT_EQ(pool.size(), 2u);
  // 0.3 fits the first device (residual 0.3) and first-fit stops there.
  auto d = ScheduleSharePod(pool, Req("c", 0.3), Supply(4),
                            PlacementVariant::kFirstFit);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, pool.DeviceOf("a"));
}

TEST(Algorithm1, MemoryOvercommitSkipsMemFilter) {
  VgpuPool pool;
  pool.set_memory_overcommit(true);
  ASSERT_TRUE(ScheduleSharePod(pool, Req("a", 0.3, 0.8), Supply(4)).ok());
  // 0.8 + 0.8 memory would be rejected without the extension.
  auto d = ScheduleSharePod(pool, Req("b", 0.3, 0.8), Supply(4));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, pool.DeviceOf("a"));
  EXPECT_GT(pool.Get(*d)->used_mem, 1.0);
}

TEST(Algorithm1, InvalidSpecRejected) {
  VgpuPool pool;
  ScheduleRequest r = Req("bad", 0.5);
  r.gpu.gpu_limit = 0.3;  // request > limit
  EXPECT_FALSE(ScheduleSharePod(pool, r, Supply(4)).ok());
}

// ---- Property: random request streams never violate invariants ----------

struct StreamParam {
  std::uint64_t seed;
};

class AlgorithmProperty : public ::testing::TestWithParam<StreamParam> {};

TEST_P(AlgorithmProperty, RandomStreamKeepsPoolInvariants) {
  Rng rng(GetParam().seed);
  VgpuPool pool;
  std::vector<std::string> placed;
  int supply = 32;
  for (int i = 0; i < 300; ++i) {
    if (!placed.empty() && rng.Chance(0.3)) {
      // Random departure.
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(placed.size()) - 1));
      ASSERT_TRUE(pool.Detach(placed[idx]).ok());
      placed.erase(placed.begin() + static_cast<std::ptrdiff_t>(idx));
      continue;
    }
    ScheduleRequest r = Req("sp-" + std::to_string(i),
                            rng.Uniform(0.05, 0.6), rng.Uniform(0.05, 0.5));
    if (rng.Chance(0.2)) {
      r.locality.anti_affinity = Label("anti-" + std::to_string(
          rng.UniformInt(0, 2)));
    }
    if (rng.Chance(0.15)) {
      r.locality.exclusion = Label("excl-" + std::to_string(
          rng.UniformInt(0, 1)));
    }
    std::vector<NodeFreeGpus> free{
        {"node-0", supply - static_cast<int>(pool.size())}};
    auto result = ScheduleSharePod(pool, r, free);
    if (result.ok()) placed.push_back(r.sharepod);

    // Invariants: no device over-committed; anti-affinity labels unique per
    // device attachment set; exclusion uniform across a device.
    for (const VgpuInfo* d : pool.List()) {
      EXPECT_LE(d->used_util, 1.0 + 1e-9);
      EXPECT_LE(d->used_mem, 1.0 + 1e-9);
      EXPECT_GE(d->used_util, -1e-9);
    }
    EXPECT_LE(pool.size(), static_cast<std::size_t>(supply));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmProperty,
                         ::testing::Values(StreamParam{101}, StreamParam{202},
                                           StreamParam{303}, StreamParam{404},
                                           StreamParam{505}),
                         [](const ::testing::TestParamInfo<StreamParam>& i) {
                           return "seed" + std::to_string(i.param.seed);
                         });

}  // namespace
}  // namespace ks::kubeshare
