#include <gtest/gtest.h>

#include "kubeshare/kubeshare.hpp"
#include "kubeshare/replicaset.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

namespace ks::kubeshare {
namespace {

SharePod MakeSharePod(const std::string& name, double request, double mem) {
  SharePod sp;
  sp.meta.name = name;
  sp.spec.gpu.gpu_request = request;
  sp.spec.gpu.gpu_limit = 1.0;
  sp.spec.gpu.gpu_mem = mem;
  return sp;
}

k8s::ClusterConfig SmallCluster() {
  k8s::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.gpus_per_node = 2;
  return cfg;
}

// ---- Hybrid pool policy (§4.4 "a hybrid strategy can also be designed") --

TEST(HybridPoolPolicy, KeepsUpToReserveIdleVgpus) {
  k8s::Cluster cluster(SmallCluster());
  KubeShareConfig cfg;
  cfg.pool_policy = PoolPolicy::kHybrid;
  cfg.hybrid_reserve = 1;
  KubeShare kubeshare(&cluster, cfg);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(kubeshare.Start().ok());

  // Two sharePods on two separate vGPUs.
  ASSERT_TRUE(kubeshare.CreateSharePod(MakeSharePod("a", 0.8, 0.4)).ok());
  ASSERT_TRUE(kubeshare.CreateSharePod(MakeSharePod("b", 0.8, 0.4)).ok());
  cluster.sim().RunUntil(Seconds(15));
  ASSERT_EQ(kubeshare.pool().size(), 2u);

  // Delete both: hybrid keeps exactly one idle vGPU warm.
  ASSERT_TRUE(kubeshare.sharepods().Delete("a").ok());
  ASSERT_TRUE(kubeshare.sharepods().Delete("b").ok());
  cluster.sim().RunUntil(Seconds(25));
  ASSERT_EQ(kubeshare.pool().size(), 1u);
  EXPECT_EQ(kubeshare.pool().List()[0]->state, VgpuState::kIdle);
  EXPECT_EQ(kubeshare.devmgr().vgpus_released(), 1u);

  // The next sharePod reuses the warm vGPU — no new acquisition.
  const auto created = kubeshare.devmgr().vgpus_created();
  ASSERT_TRUE(kubeshare.CreateSharePod(MakeSharePod("c", 0.5, 0.4)).ok());
  cluster.sim().RunUntil(Seconds(35));
  EXPECT_EQ(kubeshare.sharepods().Get("c")->status.phase,
            SharePodPhase::kRunning);
  EXPECT_EQ(kubeshare.devmgr().vgpus_created(), created);
}

// ---- Memory over-commitment end to end -----------------------------------

TEST(MemoryOvercommit, SchedulerPacksBeyondPhysicalMemory) {
  k8s::Cluster cluster(SmallCluster());
  KubeShareConfig cfg;
  cfg.allow_memory_overcommit = true;
  KubeShare kubeshare(&cluster, cfg);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(kubeshare.Start().ok());
  // 0.7 + 0.7 memory on one GPU: rejected without the extension, packed
  // with it (compute requests still fit: 0.4 + 0.4).
  ASSERT_TRUE(kubeshare.CreateSharePod(MakeSharePod("a", 0.4, 0.7)).ok());
  ASSERT_TRUE(kubeshare.CreateSharePod(MakeSharePod("b", 0.4, 0.7)).ok());
  cluster.sim().RunUntil(Seconds(15));
  EXPECT_EQ(kubeshare.sharepods().Get("a")->spec.gpu_id,
            kubeshare.sharepods().Get("b")->spec.gpu_id);
}

TEST(MemoryOvercommit, WithoutExtensionSuchPodsGetSeparateGpus) {
  k8s::Cluster cluster(SmallCluster());
  KubeShare kubeshare(&cluster);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(kubeshare.Start().ok());
  ASSERT_TRUE(kubeshare.CreateSharePod(MakeSharePod("a", 0.4, 0.7)).ok());
  ASSERT_TRUE(kubeshare.CreateSharePod(MakeSharePod("b", 0.4, 0.7)).ok());
  cluster.sim().RunUntil(Seconds(15));
  EXPECT_NE(kubeshare.sharepods().Get("a")->spec.gpu_id,
            kubeshare.sharepods().Get("b")->spec.gpu_id);
}

TEST(MemoryOvercommit, OverCommittedJobsRunSlowerButComplete) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 1;
  ccfg.gpus_per_node = 1;  // force sharing
  k8s::Cluster cluster(ccfg);
  KubeShareConfig cfg;
  cfg.allow_memory_overcommit = true;
  KubeShare kubeshare(&cluster, cfg);
  workload::WorkloadHost host(&cluster);
  host.EnableMemoryOvercommit(/*bandwidth=*/8e9);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(kubeshare.Start().ok());

  for (const char* name : {"a", "b"}) {
    workload::TrainingSpec spec;
    spec.steps = 100;
    spec.step_kernel = Millis(10);
    spec.model_bytes = 11ull << 30;  // 2 x 11 GB > 16 GB device
    host.ExpectJob(name, [spec] {
      return std::make_unique<workload::TrainingJob>(spec);
    });
    ASSERT_TRUE(kubeshare.CreateSharePod(MakeSharePod(name, 0.4, 0.75)).ok());
  }
  cluster.sim().RunUntil(Minutes(10));
  EXPECT_EQ(host.completed(), 2u);
  // Each of the 2x1s kernel streams alternates with multi-second page
  // migrations: completion takes far longer than the compute alone.
  const auto* a = host.RecordOf("a");
  EXPECT_GT(a->finished - a->started, Seconds(5));
}

// ---- Vertical elasticity (ResizeSharePod) ---------------------------------

class ResizeTest : public ::testing::Test {
 protected:
  ResizeTest() : cluster_(SmallCluster()), kubeshare_(&cluster_),
                 host_(&cluster_) {
    EXPECT_TRUE(cluster_.Start().ok());
    EXPECT_TRUE(kubeshare_.Start().ok());
  }

  void SubmitGreedy(const std::string& name, double request, double limit) {
    workload::TrainingSpec spec;
    spec.steps = 1'000'000;
    spec.step_kernel = Millis(10);
    host_.ExpectJob(name, [spec] {
      return std::make_unique<workload::TrainingJob>(spec);
    });
    SharePod sp = MakeSharePod(name, request, 0.2);
    sp.spec.gpu.gpu_limit = limit;
    ASSERT_TRUE(kubeshare_.CreateSharePod(sp).ok());
  }

  double UsageOf(const std::string& name) {
    const vgpu::FrontendHook* hook = host_.RunningHook(name);
    if (hook == nullptr) return -1.0;
    auto sp = kubeshare_.sharepods().Get(name);
    auto dev = kubeshare_.pool().Get(sp->spec.gpu_id);
    return cluster_.BackendForGpu(*dev->uuid)->UsageOf(hook->container());
  }

  k8s::Cluster cluster_;
  KubeShare kubeshare_;
  workload::WorkloadHost host_;
};

TEST_F(ResizeTest, RaisedLimitTakesEffectOnRunningContainer) {
  SubmitGreedy("job", 0.3, 0.4);
  cluster_.sim().RunUntil(Seconds(60));
  EXPECT_NEAR(UsageOf("job"), 0.4, 0.05);  // throttled at the old limit
  ASSERT_TRUE(kubeshare_.ResizeSharePod("job", 0.3, 0.8).ok());
  cluster_.sim().RunUntil(Seconds(120));
  EXPECT_NEAR(UsageOf("job"), 0.8, 0.05);  // new limit applied live
  auto sp = kubeshare_.sharepods().Get("job");
  EXPECT_DOUBLE_EQ(sp->spec.gpu.gpu_limit, 0.8);
  EXPECT_GE(cluster_.api().events().CountReason("Resized"), 1u);
}

TEST_F(ResizeTest, RaisedRequestRebalancesSharers) {
  SubmitGreedy("a", 0.3, 1.0);
  SubmitGreedy("b", 0.3, 1.0);
  cluster_.sim().RunUntil(Seconds(60));
  // Same GPU, equal requests: fair split.
  ASSERT_EQ(kubeshare_.sharepods().Get("a")->spec.gpu_id,
            kubeshare_.sharepods().Get("b")->spec.gpu_id);
  EXPECT_NEAR(UsageOf("a"), 0.5, 0.05);
  // Raise a's guarantee to 0.7: the backend must pin a at 0.7, b at 0.3.
  ASSERT_TRUE(kubeshare_.ResizeSharePod("a", 0.7, 1.0).ok());
  cluster_.sim().RunUntil(Seconds(180));
  EXPECT_NEAR(UsageOf("a"), 0.7, 0.05);
  EXPECT_NEAR(UsageOf("b"), 0.3, 0.05);
}

TEST_F(ResizeTest, GrowthBeyondResidualRejected) {
  SubmitGreedy("a", 0.5, 1.0);
  SubmitGreedy("b", 0.4, 1.0);
  cluster_.sim().RunUntil(Seconds(15));
  ASSERT_EQ(kubeshare_.sharepods().Get("a")->spec.gpu_id,
            kubeshare_.sharepods().Get("b")->spec.gpu_id);
  // 0.5 + 0.4 committed: raising a to 0.7 would over-commit.
  EXPECT_EQ(kubeshare_.ResizeSharePod("a", 0.7, 1.0).code(),
            StatusCode::kResourceExhausted);
  // Shrinking works and frees capacity for b.
  ASSERT_TRUE(kubeshare_.ResizeSharePod("a", 0.1, 0.3).ok());
  EXPECT_TRUE(kubeshare_.ResizeSharePod("b", 0.9, 1.0).ok());
}

TEST_F(ResizeTest, ErrorPaths) {
  EXPECT_EQ(kubeshare_.ResizeSharePod("ghost", 0.5, 1.0).code(),
            StatusCode::kNotFound);
  SubmitGreedy("a", 0.3, 1.0);
  cluster_.sim().RunUntil(Seconds(15));
  EXPECT_FALSE(kubeshare_.ResizeSharePod("a", 0.8, 0.5).ok());  // req > lim
}

// ---- Gang admission (SharePod groups) ------------------------------------

class GangTest : public ::testing::Test {
 protected:
  GangTest() : cluster_(SmallCluster()), kubeshare_(&cluster_) {
    EXPECT_TRUE(cluster_.Start().ok());
    EXPECT_TRUE(kubeshare_.Start().ok());
  }

  std::vector<SharePod> Workers(int n, double request,
                                const std::string& prefix = "w") {
    std::vector<SharePod> out;
    for (int i = 0; i < n; ++i) {
      SharePod sp = MakeSharePod(prefix + std::to_string(i), request, 0.1);
      sp.spec.locality.affinity = Label("gang-" + prefix);
      out.push_back(std::move(sp));
    }
    return out;
  }

  k8s::Cluster cluster_;
  KubeShare kubeshare_;
};

TEST_F(GangTest, FittingGroupIsAdmittedAndCoScheduled) {
  ASSERT_TRUE(kubeshare_.CreateSharePodGroup(Workers(4, 0.2)).ok());
  cluster_.sim().RunUntil(Seconds(15));
  const GpuId device = kubeshare_.sharepods().Get("w0")->spec.gpu_id;
  for (int i = 0; i < 4; ++i) {
    auto sp = kubeshare_.sharepods().Get("w" + std::to_string(i));
    EXPECT_EQ(sp->status.phase, SharePodPhase::kRunning);
    EXPECT_EQ(sp->spec.gpu_id, device);  // affinity kept the gang together
  }
}

TEST_F(GangTest, OversizedGroupIsRejectedAtomically) {
  // 4 workers at 0.3 with one affinity label: the 4th overflows the shared
  // device — nothing may be created.
  const Status s = kubeshare_.CreateSharePodGroup(Workers(4, 0.3));
  EXPECT_EQ(s.code(), StatusCode::kRejected);
  EXPECT_EQ(kubeshare_.sharepods().size(), 0u);
  EXPECT_EQ(kubeshare_.pool().size(), 0u);  // dry run left no residue
}

TEST_F(GangTest, GroupBeyondPhysicalSupplyIsUnavailable) {
  // Three exclusive tenants need three GPUs; the cluster has two.
  std::vector<SharePod> pods;
  for (int i = 0; i < 3; ++i) {
    SharePod sp = MakeSharePod("t" + std::to_string(i), 0.5, 0.1);
    sp.spec.locality.exclusion = Label("tenant-" + std::to_string(i));
    pods.push_back(std::move(sp));
  }
  const Status s = kubeshare_.CreateSharePodGroup(pods);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(kubeshare_.sharepods().size(), 0u);
}

TEST_F(GangTest, InvalidMembersRejected) {
  EXPECT_FALSE(kubeshare_.CreateSharePodGroup({}).ok());
  std::vector<SharePod> dup = Workers(1, 0.2);
  ASSERT_TRUE(kubeshare_.CreateSharePod(dup[0]).ok());
  EXPECT_EQ(kubeshare_.CreateSharePodGroup(Workers(1, 0.2)).code(),
            StatusCode::kAlreadyExists);
}

// ---- SharePodReplicaSet ---------------------------------------------------

class ReplicaSetTest : public ::testing::Test {
 protected:
  ReplicaSetTest() : cluster_(SmallCluster()), kubeshare_(&cluster_) {
    EXPECT_TRUE(cluster_.Start().ok());
    EXPECT_TRUE(kubeshare_.Start().ok());
  }

  SharePodReplicaSet::Spec MakeSpec(const std::string& name, int replicas) {
    SharePodReplicaSet::Spec spec;
    spec.name = name;
    spec.replicas = replicas;
    spec.template_spec.gpu.gpu_request = 0.3;
    spec.template_spec.gpu.gpu_limit = 0.8;
    spec.template_spec.gpu.gpu_mem = 0.3;
    return spec;
  }

  std::size_t RunningReplicas() {
    std::size_t n = 0;
    for (const SharePod& sp : kubeshare_.sharepods().List()) {
      if (sp.status.phase == SharePodPhase::kRunning) ++n;
    }
    return n;
  }

  k8s::Cluster cluster_;
  KubeShare kubeshare_;
};

TEST_F(ReplicaSetTest, MaintainsDesiredReplicas) {
  SharePodReplicaSet rs(&kubeshare_, MakeSpec("serve", 3));
  ASSERT_TRUE(rs.Start().ok());
  cluster_.sim().RunUntil(Seconds(15));
  EXPECT_EQ(rs.live(), 3u);
  EXPECT_EQ(RunningReplicas(), 3u);
}

TEST_F(ReplicaSetTest, ReplacesDeletedReplica) {
  SharePodReplicaSet rs(&kubeshare_, MakeSpec("serve", 2));
  ASSERT_TRUE(rs.Start().ok());
  cluster_.sim().RunUntil(Seconds(15));
  ASSERT_TRUE(kubeshare_.sharepods().Delete("serve-0").ok());
  cluster_.sim().RunUntil(Seconds(30));
  EXPECT_EQ(rs.live(), 2u);
  EXPECT_EQ(RunningReplicas(), 2u);
  EXPECT_EQ(rs.created_total(), 3u);  // 2 initial + 1 replacement
  EXPECT_FALSE(kubeshare_.sharepods().Contains("serve-0"));
  EXPECT_TRUE(kubeshare_.sharepods().Contains("serve-2"));
}

TEST_F(ReplicaSetTest, ScaleUpAndDown) {
  SharePodReplicaSet rs(&kubeshare_, MakeSpec("serve", 1));
  ASSERT_TRUE(rs.Start().ok());
  cluster_.sim().RunUntil(Seconds(15));
  rs.Scale(4);
  cluster_.sim().RunUntil(Seconds(30));
  EXPECT_EQ(rs.live(), 4u);
  EXPECT_EQ(RunningReplicas(), 4u);
  rs.Scale(2);
  cluster_.sim().RunUntil(Seconds(45));
  EXPECT_EQ(rs.live(), 2u);
  EXPECT_EQ(RunningReplicas(), 2u);
  rs.Scale(-5);  // clamped to zero
  cluster_.sim().RunUntil(Seconds(60));
  EXPECT_EQ(rs.live(), 0u);
}

TEST_F(ReplicaSetTest, ForeignSharePodsAreIgnored) {
  SharePodReplicaSet rs(&kubeshare_, MakeSpec("serve", 1));
  ASSERT_TRUE(rs.Start().ok());
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("other", 0.2, 0.2)).ok());
  cluster_.sim().RunUntil(Seconds(15));
  EXPECT_EQ(rs.live(), 1u);
  ASSERT_TRUE(kubeshare_.sharepods().Delete("other").ok());
  cluster_.sim().RunUntil(Seconds(25));
  EXPECT_EQ(rs.created_total(), 1u);  // never reacted to "other"
}

TEST_F(ReplicaSetTest, InvalidSpecsRejected) {
  SharePodReplicaSet rs(&kubeshare_, MakeSpec("bad", -1));
  EXPECT_FALSE(rs.Start().ok());
}

TEST_F(ReplicaSetTest, ReplicaHookSeesEveryReplica) {
  SharePodReplicaSet rs(&kubeshare_, MakeSpec("serve", 2));
  std::vector<std::string> names;
  rs.SetReplicaHook([&](const std::string& name) { names.push_back(name); });
  ASSERT_TRUE(rs.Start().ok());
  cluster_.sim().RunUntil(Seconds(15));
  ASSERT_TRUE(kubeshare_.sharepods().Delete("serve-1").ok());
  cluster_.sim().RunUntil(Seconds(30));
  EXPECT_EQ(names.size(), 3u);
  EXPECT_EQ(names[2], "serve-2");
}

}  // namespace
}  // namespace ks::kubeshare
