#include "kubeshare/kubeshare.hpp"

#include <gtest/gtest.h>

#include "k8s/device_plugin.hpp"

namespace ks::kubeshare {
namespace {

SharePod MakeSharePod(const std::string& name, double request, double limit,
                      double mem = 0.25) {
  SharePod sp;
  sp.meta.name = name;
  sp.spec.pod.requests.Set(k8s::kResourceCpu, 2000);
  sp.spec.gpu.gpu_request = request;
  sp.spec.gpu.gpu_limit = limit;
  sp.spec.gpu.gpu_mem = mem;
  return sp;
}

class KubeShareTest : public ::testing::Test {
 protected:
  static k8s::ClusterConfig SmallCluster() {
    k8s::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.gpus_per_node = 2;
    return cfg;
  }

  KubeShareTest() : cluster_(SmallCluster()), kubeshare_(&cluster_) {
    EXPECT_TRUE(cluster_.Start().ok());
    EXPECT_TRUE(kubeshare_.Start().ok());
  }

  int CountPods(const char* role) {
    int n = 0;
    for (const k8s::Pod& p : cluster_.api().pods().List()) {
      auto it = p.meta.labels.find(kRoleLabel);
      if (it != p.meta.labels.end() && it->second == role && !p.terminal()) {
        ++n;
      }
    }
    return n;
  }

  k8s::Cluster cluster_;
  KubeShare kubeshare_;
};

TEST_F(KubeShareTest, SharePodReachesRunningWithDeviceEnv) {
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("sp-1", 0.5, 0.8)).ok());
  cluster_.sim().RunUntil(Seconds(15));
  auto sp = kubeshare_.sharepods().Get("sp-1");
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp->status.phase, SharePodPhase::kRunning);
  ASSERT_FALSE(sp->status.workload_pod.empty());
  auto pod = cluster_.api().pods().Get(sp->status.workload_pod);
  ASSERT_TRUE(pod.ok());
  EXPECT_EQ(pod->status.phase, k8s::PodPhase::kRunning);
  // The device binding and the library configuration are in the env.
  const auto& env = pod->status.effective_env;
  ASSERT_EQ(env.count(k8s::kNvidiaVisibleDevices), 1u);
  auto binding = KubeShare::ParseBinding(env);
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->sharepod, "sp-1");
  EXPECT_DOUBLE_EQ(binding->spec.gpu_request, 0.5);
  EXPECT_DOUBLE_EQ(binding->spec.gpu_limit, 0.8);
  EXPECT_DOUBLE_EQ(binding->spec.gpu_mem, 0.25);
  // An acquisition pod holds the physical GPU.
  EXPECT_EQ(CountPods(kRoleAcquisition), 1);
}

TEST_F(KubeShareTest, TwoSharePodsShareOneGpu) {
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("a", 0.4, 0.8)).ok());
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("b", 0.4, 0.8)).ok());
  cluster_.sim().RunUntil(Seconds(15));
  auto a = kubeshare_.sharepods().Get("a");
  auto b = kubeshare_.sharepods().Get("b");
  EXPECT_EQ(a->spec.gpu_id, b->spec.gpu_id);
  EXPECT_EQ(kubeshare_.pool().size(), 1u);
  EXPECT_EQ(CountPods(kRoleAcquisition), 1);  // one physical GPU held
  // Both workload pods see the same UUID.
  auto pa = cluster_.api().pods().Get(a->status.workload_pod);
  auto pb = cluster_.api().pods().Get(b->status.workload_pod);
  EXPECT_EQ(pa->status.effective_env.at(k8s::kNvidiaVisibleDevices),
            pb->status.effective_env.at(k8s::kNvidiaVisibleDevices));
}

TEST_F(KubeShareTest, NonFittingSharePodsGetSeparateGpus) {
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("a", 0.7, 1.0)).ok());
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("b", 0.7, 1.0)).ok());
  cluster_.sim().RunUntil(Seconds(15));
  auto a = kubeshare_.sharepods().Get("a");
  auto b = kubeshare_.sharepods().Get("b");
  EXPECT_NE(a->spec.gpu_id, b->spec.gpu_id);
  EXPECT_EQ(kubeshare_.pool().size(), 2u);
}

TEST_F(KubeShareTest, OnDemandReleaseReturnsGpuToKubernetes) {
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("a", 0.4, 0.8)).ok());
  cluster_.sim().RunUntil(Seconds(15));
  ASSERT_EQ(kubeshare_.pool().size(), 1u);
  // The user deletes the sharePod: workload pod goes away, the vGPU turns
  // idle and — in on-demand mode — is released immediately.
  ASSERT_TRUE(kubeshare_.sharepods().Delete("a").ok());
  cluster_.sim().RunUntil(Seconds(20));
  EXPECT_EQ(kubeshare_.pool().size(), 0u);
  EXPECT_EQ(kubeshare_.devmgr().vgpus_released(), 1u);
  EXPECT_EQ(CountPods(kRoleAcquisition), 0);
  EXPECT_EQ(CountPods(kRoleWorkload), 0);
  // A native pod can now take all 4 GPUs' worth of capacity.
  k8s::Pod native;
  native.meta.name = "native";
  native.spec.requests.Set(k8s::kResourceNvidiaGpu, 2);
  ASSERT_TRUE(cluster_.api().pods().Create(native).ok());
  cluster_.sim().RunUntil(Seconds(40));
  EXPECT_EQ(cluster_.api().pods().Get("native")->status.phase,
            k8s::PodPhase::kRunning);
}

TEST_F(KubeShareTest, WorkloadCompletionFinishesSharePod) {
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("a", 0.4, 0.8)).ok());
  cluster_.sim().RunUntil(Seconds(15));
  auto sp = kubeshare_.sharepods().Get("a");
  ASSERT_EQ(sp->status.phase, SharePodPhase::kRunning);
  ASSERT_TRUE(cluster_.ExitPodContainer(sp->status.workload_pod, true).ok());
  cluster_.sim().RunUntil(Seconds(20));
  sp = kubeshare_.sharepods().Get("a");
  EXPECT_EQ(sp->status.phase, SharePodPhase::kSucceeded);
  EXPECT_EQ(kubeshare_.pool().size(), 0u);  // on-demand release
}

TEST_F(KubeShareTest, AntiAffinityForcesDistinctGpus) {
  SharePod a = MakeSharePod("a", 0.2, 0.5);
  a.spec.locality.anti_affinity = Label("spread");
  SharePod b = MakeSharePod("b", 0.2, 0.5);
  b.spec.locality.anti_affinity = Label("spread");
  ASSERT_TRUE(kubeshare_.CreateSharePod(a).ok());
  ASSERT_TRUE(kubeshare_.CreateSharePod(b).ok());
  cluster_.sim().RunUntil(Seconds(15));
  EXPECT_NE(kubeshare_.sharepods().Get("a")->spec.gpu_id,
            kubeshare_.sharepods().Get("b")->spec.gpu_id);
}

TEST_F(KubeShareTest, AffinityOverflowRejected) {
  SharePod a = MakeSharePod("a", 0.7, 1.0);
  a.spec.locality.affinity = Label("grp");
  SharePod b = MakeSharePod("b", 0.7, 1.0);
  b.spec.locality.affinity = Label("grp");
  ASSERT_TRUE(kubeshare_.CreateSharePod(a).ok());
  ASSERT_TRUE(kubeshare_.CreateSharePod(b).ok());
  cluster_.sim().RunUntil(Seconds(15));
  EXPECT_EQ(kubeshare_.sharepods().Get("a")->status.phase,
            SharePodPhase::kRunning);
  EXPECT_EQ(kubeshare_.sharepods().Get("b")->status.phase,
            SharePodPhase::kRejected);
  EXPECT_EQ(kubeshare_.sched().rejected_count(), 1u);
}

TEST_F(KubeShareTest, PinnedGpuIdIsHonored) {
  // First-class resources: the user names the vGPU explicitly.
  SharePod a = MakeSharePod("a", 0.3, 0.6);
  a.spec.gpu_id = GpuId("my-vgpu");
  a.spec.node_name = "node-1";
  SharePod b = MakeSharePod("b", 0.3, 0.6);
  b.spec.gpu_id = GpuId("my-vgpu");
  b.spec.node_name = "node-1";
  ASSERT_TRUE(kubeshare_.CreateSharePod(a).ok());
  ASSERT_TRUE(kubeshare_.CreateSharePod(b).ok());
  cluster_.sim().RunUntil(Seconds(15));
  EXPECT_EQ(kubeshare_.sharepods().Get("a")->status.phase,
            SharePodPhase::kRunning);
  EXPECT_EQ(kubeshare_.sharepods().Get("b")->status.phase,
            SharePodPhase::kRunning);
  auto dev = kubeshare_.pool().Get(GpuId("my-vgpu"));
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ(dev->node, "node-1");
  EXPECT_EQ(dev->attached.size(), 2u);
  EXPECT_EQ(kubeshare_.sched().scheduled_count(), 0u);  // bypassed Algorithm 1
}

TEST_F(KubeShareTest, PinnedGpuIdWithoutNodeIsRejected) {
  SharePod a = MakeSharePod("a", 0.3, 0.6);
  a.spec.gpu_id = GpuId("dangling");
  ASSERT_TRUE(kubeshare_.CreateSharePod(a).ok());
  cluster_.sim().RunUntil(Seconds(5));
  EXPECT_EQ(kubeshare_.sharepods().Get("a")->status.phase,
            SharePodPhase::kRejected);
}

TEST_F(KubeShareTest, SaturatedClusterQueuesUntilCapacityFrees) {
  // 4 physical GPUs; 4 big sharePods fill them; the 5th waits, then runs
  // after one finishes.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(kubeshare_
                    .CreateSharePod(MakeSharePod("sp-" + std::to_string(i),
                                                 0.9, 1.0))
                    .ok());
  }
  cluster_.sim().RunUntil(Seconds(20));
  int running = 0, pending = 0;
  for (const SharePod& sp : kubeshare_.sharepods().List()) {
    if (sp.status.phase == SharePodPhase::kRunning) ++running;
    if (sp.status.phase == SharePodPhase::kPending) ++pending;
  }
  EXPECT_EQ(running, 4);
  EXPECT_EQ(pending, 1);
  EXPECT_GE(kubeshare_.sched().retry_count(), 1u);
  // Finish one; the waiter must eventually run.
  auto victim = kubeshare_.sharepods().Get("sp-0");
  ASSERT_TRUE(
      cluster_.ExitPodContainer(victim->status.workload_pod, true).ok());
  cluster_.sim().RunUntil(Seconds(60));
  running = 0;
  for (const SharePod& sp : kubeshare_.sharepods().List()) {
    if (sp.status.phase == SharePodPhase::kRunning) ++running;
  }
  EXPECT_EQ(running, 4);
}

TEST_F(KubeShareTest, CoexistsWithNativeGpuPods) {
  // A native pod takes one GPU through kube-scheduler; KubeShare must not
  // hand that GPU out again.
  k8s::Pod native1, native2;
  native1.meta.name = "native-1";
  native1.spec.requests.Set(k8s::kResourceNvidiaGpu, 2);  // fills one node
  native2.meta.name = "native-2";
  native2.spec.requests.Set(k8s::kResourceNvidiaGpu, 1);
  ASSERT_TRUE(cluster_.api().pods().Create(native1).ok());
  ASSERT_TRUE(cluster_.api().pods().Create(native2).ok());
  cluster_.sim().RunUntil(Seconds(10));
  ASSERT_EQ(cluster_.api().pods().Get("native-1")->status.phase,
            k8s::PodPhase::kRunning);
  ASSERT_EQ(cluster_.api().pods().Get("native-2")->status.phase,
            k8s::PodPhase::kRunning);
  // Only 1 physical GPU left for KubeShare.
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("a", 0.6, 1.0)).ok());
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("b", 0.6, 1.0)).ok());
  cluster_.sim().RunUntil(Seconds(25));
  int running = 0, pending = 0;
  for (const SharePod& sp : kubeshare_.sharepods().List()) {
    if (sp.status.phase == SharePodPhase::kRunning) ++running;
    if (sp.status.phase == SharePodPhase::kPending) ++pending;
  }
  EXPECT_EQ(running, 1);
  EXPECT_EQ(pending, 1);
}

TEST_F(KubeShareTest, ReservationPolicyKeepsIdleVgpu) {
  k8s::ClusterConfig ccfg = SmallCluster();
  k8s::Cluster cluster(ccfg);
  KubeShareConfig kcfg;
  kcfg.pool_policy = PoolPolicy::kReservation;
  KubeShare kubeshare(&cluster, kcfg);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(kubeshare.Start().ok());
  ASSERT_TRUE(kubeshare.CreateSharePod(MakeSharePod("a", 0.4, 0.8)).ok());
  cluster.sim().RunUntil(Seconds(15));
  ASSERT_TRUE(kubeshare.sharepods().Delete("a").ok());
  cluster.sim().RunUntil(Seconds(20));
  ASSERT_EQ(kubeshare.pool().size(), 1u);
  EXPECT_EQ(kubeshare.pool().List()[0]->state, VgpuState::kIdle);
  // The next sharePod reuses the idle vGPU without a second acquisition.
  const auto created_before = kubeshare.devmgr().vgpus_created();
  ASSERT_TRUE(kubeshare.CreateSharePod(MakeSharePod("b", 0.4, 0.8)).ok());
  cluster.sim().RunUntil(Seconds(30));
  EXPECT_EQ(kubeshare.sharepods().Get("b")->status.phase,
            SharePodPhase::kRunning);
  EXPECT_EQ(kubeshare.devmgr().vgpus_created(), created_before);
}

TEST_F(KubeShareTest, ParseBindingRoundTrip) {
  std::map<std::string, std::string> env{
      {kEnvSharePod, "my-sp"},
      {kEnvGpuId, "vgpu-9"},
      {kEnvGpuRequest, "0.350000"},
      {kEnvGpuLimit, "0.900000"},
      {kEnvGpuMem, "0.250000"},
  };
  auto binding = KubeShare::ParseBinding(env);
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->sharepod, "my-sp");
  EXPECT_EQ(binding->gpu_id, GpuId("vgpu-9"));
  EXPECT_DOUBLE_EQ(binding->spec.gpu_request, 0.35);
  EXPECT_DOUBLE_EQ(binding->spec.gpu_limit, 0.9);
  EXPECT_DOUBLE_EQ(binding->spec.gpu_mem, 0.25);
}

TEST_F(KubeShareTest, ParseBindingDefaultsAndAbsence) {
  // No KUBESHARE_SHAREPOD: not a KubeShare container.
  EXPECT_FALSE(KubeShare::ParseBinding({{"PATH", "/usr/bin"}}).has_value());
  // Sharepod name alone: spec fields default to an unconstrained vGPU.
  auto binding = KubeShare::ParseBinding({{kEnvSharePod, "sp"}});
  ASSERT_TRUE(binding.has_value());
  EXPECT_DOUBLE_EQ(binding->spec.gpu_request, 0.0);
  EXPECT_DOUBLE_EQ(binding->spec.gpu_limit, 1.0);
  EXPECT_DOUBLE_EQ(binding->spec.gpu_mem, 1.0);
}

TEST_F(KubeShareTest, InvalidGpuSpecRejectedAtCreation) {
  SharePod sp = MakeSharePod("bad", 0.8, 0.5);  // request > limit
  EXPECT_FALSE(kubeshare_.CreateSharePod(sp).ok());
  SharePod unnamed = MakeSharePod("", 0.1, 0.5);
  EXPECT_FALSE(kubeshare_.CreateSharePod(unnamed).ok());
}

}  // namespace
}  // namespace ks::kubeshare
