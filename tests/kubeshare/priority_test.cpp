#include <gtest/gtest.h>

#include "kubeshare/kubeshare.hpp"

namespace ks::kubeshare {
namespace {

SharePod MakeSharePod(const std::string& name, double request, int priority) {
  SharePod sp;
  sp.meta.name = name;
  sp.spec.gpu.gpu_request = request;
  sp.spec.gpu.gpu_limit = 1.0;
  sp.spec.gpu.gpu_mem = 0.2;
  sp.spec.priority = priority;
  return sp;
}

class PriorityTest : public ::testing::Test {
 protected:
  static k8s::ClusterConfig Config() {
    k8s::ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.gpus_per_node = 1;
    return cfg;
  }

  PriorityTest() : cluster_(Config()), kubeshare_(&cluster_) {
    EXPECT_TRUE(cluster_.Start().ok());
    EXPECT_TRUE(kubeshare_.Start().ok());
  }

  k8s::Cluster cluster_;
  KubeShare kubeshare_;
};

TEST_F(PriorityTest, HigherPriorityLeavesQueueFirst) {
  // Three pending sharePods submitted back to back: the scheduler's first
  // cycle is busy with "low-1", so "high" and "low-2" sit in the queue
  // together — "high" must be picked next despite arriving later.
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("low-1", 0.3, 0)).ok());
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("low-2", 0.3, 0)).ok());
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("high", 0.3, 10)).ok());
  cluster_.sim().RunUntil(Seconds(5));
  auto low1 = kubeshare_.sharepods().Get("low-1");
  auto low2 = kubeshare_.sharepods().Get("low-2");
  auto high = kubeshare_.sharepods().Get("high");
  ASSERT_TRUE(low1->status.scheduled_time.has_value());
  ASSERT_TRUE(low2->status.scheduled_time.has_value());
  ASSERT_TRUE(high->status.scheduled_time.has_value());
  EXPECT_LT(*high->status.scheduled_time, *low2->status.scheduled_time);
}

TEST_F(PriorityTest, FifoAmongEqualPriorities) {
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("first", 0.2, 5)).ok());
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("second", 0.2, 5)).ok());
  cluster_.sim().RunUntil(Seconds(5));
  EXPECT_LT(*kubeshare_.sharepods().Get("first")->status.scheduled_time,
            *kubeshare_.sharepods().Get("second")->status.scheduled_time);
}

TEST_F(PriorityTest, PriorityGetsCapacityWhenContended) {
  // Fill the single GPU, queue one low- and one high-priority waiter, then
  // free the capacity: the high-priority waiter must win the slot.
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("hog", 0.9, 0)).ok());
  cluster_.sim().RunUntil(Seconds(10));
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("low", 0.9, 0)).ok());
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("high", 0.9, 10)).ok());
  cluster_.sim().RunUntil(Seconds(12));
  ASSERT_TRUE(kubeshare_.sharepods().Delete("hog").ok());
  cluster_.sim().RunUntil(Seconds(40));
  EXPECT_EQ(kubeshare_.sharepods().Get("high")->status.phase,
            SharePodPhase::kRunning);
  EXPECT_EQ(kubeshare_.sharepods().Get("low")->status.phase,
            SharePodPhase::kPending);
}

}  // namespace
}  // namespace ks::kubeshare
