#include <gtest/gtest.h>

#include "kubeshare/kubeshare.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

namespace ks::kubeshare {
namespace {

SharePod MakeSharePod(const std::string& name, double request,
                      double mem = 0.3) {
  SharePod sp;
  sp.meta.name = name;
  sp.spec.gpu.gpu_request = request;
  sp.spec.gpu.gpu_limit = 1.0;
  sp.spec.gpu.gpu_mem = mem;
  return sp;
}

class DevMgrEdgeTest : public ::testing::Test {
 protected:
  static k8s::ClusterConfig Config() {
    k8s::ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.gpus_per_node = 2;
    return cfg;
  }

  DevMgrEdgeTest() : cluster_(Config()), kubeshare_(&cluster_) {
    EXPECT_TRUE(cluster_.Start().ok());
    EXPECT_TRUE(kubeshare_.Start().ok());
  }

  k8s::Cluster cluster_;
  KubeShare kubeshare_;
};

TEST_F(DevMgrEdgeTest, SharePodDeletedDuringAcquisitionCleansUp) {
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("fleeting", 0.5)).ok());
  // Delete while the acquisition pod is still starting (< ~2 s).
  cluster_.sim().RunUntil(Millis(500));
  ASSERT_EQ(kubeshare_.pool().size(), 1u);
  ASSERT_TRUE(kubeshare_.sharepods().Delete("fleeting").ok());
  cluster_.sim().RunUntil(Seconds(20));
  // The vGPU went idle on detach and was released on-demand.
  EXPECT_EQ(kubeshare_.pool().size(), 0u);
  // No workload pod survives; the acquisition pod was deleted too.
  for (const k8s::Pod& p : cluster_.api().pods().List()) {
    EXPECT_TRUE(p.terminal()) << p.meta.name;
  }
}

TEST_F(DevMgrEdgeTest, AcquisitionFailureFailsSharePod) {
  // Fill both physical GPUs with native pods scheduled via kube-scheduler,
  // then pin a sharePod to this node: the free-GPU estimate says 0, so the
  // scheduler keeps it pending rather than creating a doomed vGPU.
  for (int i = 0; i < 2; ++i) {
    k8s::Pod native;
    native.meta.name = "native-" + std::to_string(i);
    native.spec.requests.Set(k8s::kResourceNvidiaGpu, 1);
    ASSERT_TRUE(cluster_.api().pods().Create(native).ok());
  }
  cluster_.sim().RunUntil(Seconds(10));
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("starved", 0.5)).ok());
  cluster_.sim().RunUntil(Seconds(20));
  EXPECT_EQ(kubeshare_.sharepods().Get("starved")->status.phase,
            SharePodPhase::kPending);
  EXPECT_GE(kubeshare_.sched().retry_count(), 1u);
  // Free a GPU: the sharePod must eventually run.
  ASSERT_TRUE(cluster_.api().pods().Delete("native-0").ok());
  cluster_.sim().RunUntil(Seconds(60));
  EXPECT_EQ(kubeshare_.sharepods().Get("starved")->status.phase,
            SharePodPhase::kRunning);
}

TEST_F(DevMgrEdgeTest, SecondSharePodWaitsForSameVgpuActivation) {
  // Two sharePods scheduled onto the same (still-creating) vGPU: both must
  // launch from the single acquisition.
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("a", 0.3)).ok());
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("b", 0.3)).ok());
  cluster_.sim().RunUntil(Seconds(15));
  EXPECT_EQ(kubeshare_.devmgr().vgpus_created(), 1u);
  EXPECT_EQ(kubeshare_.sharepods().Get("a")->status.phase,
            SharePodPhase::kRunning);
  EXPECT_EQ(kubeshare_.sharepods().Get("b")->status.phase,
            SharePodPhase::kRunning);
}

TEST_F(DevMgrEdgeTest, PinnedGpuIdOvercommitRejected) {
  SharePod a = MakeSharePod("a", 0.7);
  a.spec.gpu_id = GpuId("pin");
  a.spec.node_name = "node-0";
  SharePod b = MakeSharePod("b", 0.7);
  b.spec.gpu_id = GpuId("pin");
  b.spec.node_name = "node-0";
  ASSERT_TRUE(kubeshare_.CreateSharePod(a).ok());
  ASSERT_TRUE(kubeshare_.CreateSharePod(b).ok());
  cluster_.sim().RunUntil(Seconds(15));
  EXPECT_EQ(kubeshare_.sharepods().Get("a")->status.phase,
            SharePodPhase::kRunning);
  EXPECT_EQ(kubeshare_.sharepods().Get("b")->status.phase,
            SharePodPhase::kRejected);
}

TEST_F(DevMgrEdgeTest, ReserveVgpuProducesIdleEntry) {
  auto id = kubeshare_.devmgr().ReserveVgpu("node-0");
  ASSERT_TRUE(id.ok());
  cluster_.sim().RunUntil(Seconds(10));
  auto dev = kubeshare_.pool().Get(*id);
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ(dev->state, VgpuState::kIdle);
  EXPECT_TRUE(dev->uuid.has_value());
}

TEST_F(DevMgrEdgeTest, WorkloadPodFailureMarksSharePodFailed) {
  workload::WorkloadHost host(&cluster_);
  workload::TrainingSpec oom;
  oom.model_bytes = 10ull << 30;  // over the 30% quota below
  host.ExpectJob("doomed", [oom] {
    return std::make_unique<workload::TrainingJob>(oom);
  });
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("doomed", 0.3, 0.3)).ok());
  cluster_.sim().RunUntil(Seconds(20));
  EXPECT_EQ(kubeshare_.sharepods().Get("doomed")->status.phase,
            SharePodPhase::kFailed);
  // Failure released the placement: the pool drained (on-demand).
  EXPECT_EQ(kubeshare_.pool().size(), 0u);
}

TEST_F(DevMgrEdgeTest, ExternallyDeletedAcquisitionPodFailsSharePods) {
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("a", 0.3)).ok());
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("b", 0.3)).ok());
  cluster_.sim().RunUntil(Seconds(15));
  ASSERT_EQ(kubeshare_.sharepods().Get("a")->status.phase,
            SharePodPhase::kRunning);
  // An operator (or an eviction) deletes the pod holding the physical GPU.
  ASSERT_TRUE(cluster_.api().pods().Delete("kubeshare-vgpu-1").ok());
  cluster_.sim().RunUntil(Seconds(25));
  EXPECT_EQ(kubeshare_.sharepods().Get("a")->status.phase,
            SharePodPhase::kFailed);
  EXPECT_EQ(kubeshare_.sharepods().Get("b")->status.phase,
            SharePodPhase::kFailed);
  EXPECT_EQ(kubeshare_.pool().size(), 0u);
  EXPECT_GE(cluster_.api().events().CountReason("Lost"), 1u);
  // The system still serves new sharePods with a fresh acquisition.
  ASSERT_TRUE(kubeshare_.CreateSharePod(MakeSharePod("c", 0.3)).ok());
  cluster_.sim().RunUntil(Seconds(45));
  EXPECT_EQ(kubeshare_.sharepods().Get("c")->status.phase,
            SharePodPhase::kRunning);
}

TEST_F(DevMgrEdgeTest, DoubleStartRejected) {
  EXPECT_FALSE(kubeshare_.Start().ok());
  EXPECT_FALSE(kubeshare_.sched().Start().ok());
  EXPECT_FALSE(kubeshare_.devmgr().Start().ok());
}

}  // namespace
}  // namespace ks::kubeshare
