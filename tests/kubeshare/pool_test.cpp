#include "kubeshare/pool.hpp"

#include <gtest/gtest.h>

namespace ks::kubeshare {
namespace {

vgpu::ResourceSpec Spec(double request, double mem = 0.1) {
  vgpu::ResourceSpec s;
  s.gpu_request = request;
  s.gpu_limit = 1.0;
  s.gpu_mem = mem;
  return s;
}

vgpu::ResourceSpec SliceSpec(int groups, double request = 0.1) {
  vgpu::ResourceSpec s = Spec(request);
  s.slice_groups = groups;
  return s;
}

TEST(VgpuPool, CreateAssignsUniqueIds) {
  VgpuPool pool;
  const GpuId a = pool.Create("node-0").id;
  const GpuId b = pool.Create("node-0").id;
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.CountOnNode("node-0"), 2u);
  EXPECT_EQ(pool.CountOnNode("node-1"), 0u);
}

TEST(VgpuPool, CreateWithIdRejectsDuplicates) {
  VgpuPool pool;
  ASSERT_TRUE(pool.CreateWithId(GpuId("mine"), "node-0").ok());
  EXPECT_FALSE(pool.CreateWithId(GpuId("mine"), "node-1").ok());
  EXPECT_FALSE(pool.CreateWithId(GpuId(""), "node-0").ok());
}

TEST(VgpuPool, ActivateSetsUuidOnce) {
  VgpuPool pool;
  const GpuId id = pool.Create("node-0").id;
  EXPECT_EQ(pool.Get(id)->state, VgpuState::kCreating);
  ASSERT_TRUE(pool.Activate(id, GpuUuid("GPU-X")).ok());
  EXPECT_EQ(pool.Get(id)->state, VgpuState::kIdle);
  EXPECT_EQ(pool.Get(id)->uuid, GpuUuid("GPU-X"));
  EXPECT_FALSE(pool.Activate(id, GpuUuid("GPU-Y")).ok());
  EXPECT_FALSE(pool.Activate(GpuId("ghost"), GpuUuid("GPU-Z")).ok());
}

TEST(VgpuPool, AttachReservesCapacity) {
  VgpuPool pool;
  const GpuId id = pool.Create("node-0").id;
  ASSERT_TRUE(pool.Attach(id, "a", Spec(0.6, 0.5), {}).ok());
  auto dev = pool.Get(id);
  EXPECT_DOUBLE_EQ(dev->used_util, 0.6);
  EXPECT_DOUBLE_EQ(dev->used_mem, 0.5);
  EXPECT_DOUBLE_EQ(dev->residual_util(), 0.4);
  EXPECT_EQ(dev->attached.size(), 1u);
  EXPECT_EQ(pool.DeviceOf("a"), id);
}

TEST(VgpuPool, AttachRejectsOvercommit) {
  VgpuPool pool;
  const GpuId id = pool.Create("node-0").id;
  ASSERT_TRUE(pool.Attach(id, "a", Spec(0.6), {}).ok());
  EXPECT_EQ(pool.Attach(id, "b", Spec(0.5), {}).code(),
            StatusCode::kResourceExhausted);
  // Memory over-commit is equally rejected (no memory over-commitment in
  // the paper's design).
  EXPECT_EQ(pool.Attach(id, "c", Spec(0.1, 0.95), {}).code(),
            StatusCode::kResourceExhausted);
  // Exact fill is allowed.
  EXPECT_TRUE(pool.Attach(id, "d", Spec(0.4, 0.5), {}).ok());
}

TEST(VgpuPool, AttachTwiceFails) {
  VgpuPool pool;
  const GpuId id = pool.Create("node-0").id;
  ASSERT_TRUE(pool.Attach(id, "a", Spec(0.1), {}).ok());
  EXPECT_EQ(pool.Attach(id, "a", Spec(0.1), {}).code(),
            StatusCode::kAlreadyExists);
}

TEST(VgpuPool, ExclusionBlocksOtherLabels) {
  VgpuPool pool;
  const GpuId id = pool.Create("node-0").id;
  LocalitySpec tenant_a;
  tenant_a.exclusion = Label("tenant-a");
  ASSERT_TRUE(pool.Attach(id, "a1", Spec(0.2), tenant_a).ok());
  LocalitySpec tenant_b;
  tenant_b.exclusion = Label("tenant-b");
  EXPECT_EQ(pool.Attach(id, "b1", Spec(0.2), tenant_b).code(),
            StatusCode::kRejected);
  LocalitySpec none;
  EXPECT_EQ(pool.Attach(id, "n1", Spec(0.2), none).code(),
            StatusCode::kRejected);
  // Same label shares fine.
  EXPECT_TRUE(pool.Attach(id, "a2", Spec(0.2), tenant_a).ok());
}

TEST(VgpuPool, AntiAffinityBlocksSameLabel) {
  VgpuPool pool;
  const GpuId id = pool.Create("node-0").id;
  LocalitySpec anti;
  anti.anti_affinity = Label("spread-me");
  ASSERT_TRUE(pool.Attach(id, "a", Spec(0.2), anti).ok());
  EXPECT_EQ(pool.Attach(id, "b", Spec(0.2), anti).code(),
            StatusCode::kRejected);
}

TEST(VgpuPool, DetachRecomputesLabelsAndUsage) {
  VgpuPool pool;
  const GpuId id = pool.Create("node-0").id;
  LocalitySpec anti;
  anti.anti_affinity = Label("L");
  ASSERT_TRUE(pool.Attach(id, "a", Spec(0.3), anti).ok());
  ASSERT_TRUE(pool.Attach(id, "b", Spec(0.2), {}).ok());
  auto device = pool.Detach("a");
  ASSERT_TRUE(device.ok());
  EXPECT_EQ(*device, id);
  auto dev = pool.Get(id);
  EXPECT_DOUBLE_EQ(dev->used_util, 0.2);
  // The anti-affinity label left with its contributor: the device can now
  // accept another "L" container.
  EXPECT_TRUE(pool.Attach(id, "c", Spec(0.2), anti).ok());
}

TEST(VgpuPool, DetachUnknownFails) {
  VgpuPool pool;
  EXPECT_FALSE(pool.Detach("ghost").ok());
}

TEST(VgpuPool, IdleTransitionAndRemove) {
  VgpuPool pool;
  const GpuId id = pool.Create("node-0").id;
  ASSERT_TRUE(pool.Activate(id, GpuUuid("GPU-X")).ok());
  ASSERT_TRUE(pool.Attach(id, "a", Spec(0.3), {}).ok());
  EXPECT_EQ(pool.Get(id)->state, VgpuState::kActive);
  EXPECT_FALSE(pool.Remove(id).ok());  // still attached
  ASSERT_TRUE(pool.Detach("a").ok());
  EXPECT_EQ(pool.Get(id)->state, VgpuState::kIdle);
  ASSERT_TRUE(pool.Remove(id).ok());
  EXPECT_FALSE(pool.Contains(id));
}

TEST(VgpuPool, AffinityLabelsAccumulate) {
  VgpuPool pool;
  const GpuId id = pool.Create("node-0").id;
  LocalitySpec g1, g2;
  g1.affinity = Label("grp-1");
  g2.affinity = Label("grp-2");
  ASSERT_TRUE(pool.Attach(id, "a", Spec(0.2), g1).ok());
  ASSERT_TRUE(pool.Attach(id, "b", Spec(0.2), g2).ok());
  auto dev = pool.Get(id);
  EXPECT_EQ(dev->affinity.size(), 2u);
  EXPECT_TRUE(dev->affinity.count(Label("grp-1")) > 0);
  EXPECT_TRUE(dev->affinity.count(Label("grp-2")) > 0);
}

TEST(VgpuPoolSlices, AttachAllocatesContiguousFirstFitRuns) {
  VgpuPool pool;
  pool.EnableSpatial(7);
  const GpuId id = pool.Create("node-0").id;
  ASSERT_TRUE(pool.Attach(id, "a", SliceSpec(2), {}).ok());
  ASSERT_TRUE(pool.Attach(id, "b", SliceSpec(3), {}).ok());
  EXPECT_EQ(pool.SliceOf("a"), std::make_pair(0, 2));
  EXPECT_EQ(pool.SliceOf("b"), std::make_pair(2, 3));
  EXPECT_EQ(pool.Get(id)->slices.DebugString(), "#####..");
  // 3 more groups do not fit the 2 free ones.
  EXPECT_EQ(pool.Attach(id, "c", SliceSpec(3), {}).code(),
            StatusCode::kResourceExhausted);
  // A temporal attachment (no claim) coexists without consuming groups.
  ASSERT_TRUE(pool.Attach(id, "d", Spec(0.1), {}).ok());
  EXPECT_FALSE(pool.SliceOf("d").has_value());
  EXPECT_EQ(pool.Get(id)->slices.UsedGroups(), 5);
  ASSERT_TRUE(pool.CheckIndexInvariants().ok());
}

TEST(VgpuPoolSlices, DetachReleasesGroupsForReuse) {
  VgpuPool pool;
  pool.EnableSpatial(7);
  const GpuId id = pool.Create("node-0").id;
  ASSERT_TRUE(pool.Attach(id, "a", SliceSpec(2), {}).ok());
  ASSERT_TRUE(pool.Attach(id, "b", SliceSpec(2), {}).ok());
  ASSERT_TRUE(pool.Attach(id, "c", SliceSpec(3), {}).ok());
  ASSERT_TRUE(pool.Detach("b").ok());
  // The freed middle run is fragmented away from the tail free space...
  EXPECT_EQ(pool.Get(id)->slices.DebugString(), "##..###");
  // ...and first-fit reuses it for the next fitting claim.
  ASSERT_TRUE(pool.Attach(id, "e", SliceSpec(2), {}).ok());
  EXPECT_EQ(pool.SliceOf("e"), std::make_pair(2, 2));
  ASSERT_TRUE(pool.CheckIndexInvariants().ok());
}

TEST(VgpuPoolSlices, PinnedOffsetAttachRestoresExactPlacement) {
  // The DevMgr rebuild path re-attaches recovered sharePods at the offset
  // persisted in their spec; the pool must honor it or reject it, never
  // silently relocate.
  VgpuPool pool;
  pool.EnableSpatial(7);
  const GpuId id = pool.Create("node-0").id;
  ASSERT_TRUE(pool.Attach(id, "a", SliceSpec(2), {}, /*slice_offset=*/4).ok());
  EXPECT_EQ(pool.SliceOf("a"), std::make_pair(4, 2));
  EXPECT_EQ(pool.Attach(id, "b", SliceSpec(3), {}, /*slice_offset=*/3).code(),
            StatusCode::kResourceExhausted);  // overlaps a's run
  ASSERT_TRUE(pool.Attach(id, "b", SliceSpec(3), {}, /*slice_offset=*/0).ok());
  EXPECT_EQ(pool.Get(id)->slices.DebugString(), "###.##.");
  ASSERT_TRUE(pool.CheckIndexInvariants().ok());
}

TEST(VgpuPoolSlices, ClaimsRejectedWithoutSpatialMode) {
  VgpuPool pool;  // spatial off: devices have no slice geometry
  const GpuId id = pool.Create("node-0").id;
  ASSERT_TRUE(pool.Attach(id, "a", SliceSpec(2), {}).ok());
  // The claim is ignored on a temporal pool — no slice is recorded.
  EXPECT_FALSE(pool.SliceOf("a").has_value());
  EXPECT_DOUBLE_EQ(pool.FragmentationRatio(), 0.0);
}

TEST(VgpuPoolSlices, OversizedClaimRejected) {
  VgpuPool pool;
  pool.EnableSpatial(4);
  const GpuId id = pool.Create("node-0").id;
  EXPECT_EQ(pool.Attach(id, "a", SliceSpec(5), {}).code(),
            StatusCode::kRejected);
  EXPECT_EQ(pool.Get(id)->slices.UsedGroups(), 0);
}

TEST(VgpuPoolSlices, FragmentationRatioTracksPoolShape) {
  VgpuPool pool;
  pool.EnableSpatial(7);
  const GpuId id = pool.Create("node-0").id;
  EXPECT_DOUBLE_EQ(pool.FragmentationRatio(), 0.0);
  ASSERT_TRUE(pool.Attach(id, "a", SliceSpec(2), {}, 0).ok());
  ASSERT_TRUE(pool.Attach(id, "b", SliceSpec(2), {}, 3).ok());
  // "##.##..": free groups {2, 5, 6}, largest run 2 -> 1 - 2/3.
  EXPECT_DOUBLE_EQ(pool.FragmentationRatio(), 1.0 - 2.0 / 3.0);
  ASSERT_TRUE(pool.Detach("b").ok());
  // "##.....": one contiguous free run again.
  EXPECT_DOUBLE_EQ(pool.FragmentationRatio(), 0.0);
}

TEST(VgpuPoolSlices, DebugStringPinsSliceOccupancy) {
  // The crash-restart byte-equality tests compare DebugString dumps; on
  // spatial pools those must include the slice picture so a rebuild that
  // relocates a slice cannot pass.
  VgpuPool pool;
  pool.EnableSpatial(7);
  const GpuId id = pool.Create("node-0").id;
  ASSERT_TRUE(pool.Activate(id, GpuUuid("GPU-X")).ok());
  ASSERT_TRUE(pool.Attach(id, "a", SliceSpec(3), {}).ok());
  EXPECT_NE(pool.DebugString().find("slices=###...."), std::string::npos)
      << pool.DebugString();
}

}  // namespace
}  // namespace ks::kubeshare
