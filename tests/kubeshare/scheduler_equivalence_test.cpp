// Property tests for the index-accelerated scheduler and the vGPU pool's
// incremental indices.
//
// ScheduleSharePod (indexed) and ScheduleSharePodReference (the literal
// Algorithm 1 scan over pool.List()) are run side by side on two pools fed
// the exact same randomized request/detach/resize/remove sequence. After
// every operation the two pools must agree on the returned device / error
// code and on the full pool contents, and the indexed pool's incremental
// indices must survive CheckIndexInvariants(). Any divergence is a bug in
// the index upkeep or in the fused scan.

#include "kubeshare/algorithm.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace ks::kubeshare {
namespace {

std::vector<NodeFreeGpus> Supply(int per_node, int nodes) {
  std::vector<NodeFreeGpus> out;
  for (int i = 0; i < nodes; ++i) {
    out.push_back({"node-" + std::to_string(i), per_node});
  }
  return out;
}

ScheduleRequest RandomRequest(Rng& rng, int i) {
  ScheduleRequest r;
  r.sharepod = "sp-" + std::to_string(i);
  r.gpu.gpu_request = 0.05 * static_cast<double>(rng.UniformInt(1, 18));
  r.gpu.gpu_limit = 1.0;
  r.gpu.gpu_mem = 0.05 * static_cast<double>(rng.UniformInt(1, 10));
  if (rng.Chance(0.35)) {
    r.locality.affinity =
        Label("aff-" + std::to_string(rng.UniformInt(0, 3)));
  }
  if (rng.Chance(0.20)) {
    r.locality.anti_affinity =
        Label("anti-" + std::to_string(rng.UniformInt(0, 2)));
  }
  if (rng.Chance(0.15)) {
    r.locality.exclusion =
        Label("excl-" + std::to_string(rng.UniformInt(0, 1)));
  }
  if (rng.Chance(0.10)) {
    r.node_constraint = "node-" + std::to_string(rng.UniformInt(0, 2));
  }
  return r;
}

/// Like RandomRequest, but most requests carry a MIG-style slice claim
/// (spatial pools). Width 0 — no claim — stays in the mix: temporal and
/// sliced attachments must coexist on one device without confusing either
/// scheduler, and the fragmentation-aware scoring only sees the sliced ones.
ScheduleRequest RandomSliceRequest(Rng& rng, int i) {
  ScheduleRequest r = RandomRequest(rng, i);
  if (rng.Chance(0.8)) {
    r.gpu.slice_groups = static_cast<int>(rng.UniformInt(1, 4));
  }
  return r;
}

/// Like RandomRequest, but biased hard toward node-constrained placements:
/// most requests pin a node, and some pin one outside the supply (the
/// must-fail path both schedulers have to reject identically).
ScheduleRequest RandomNodeConstrainedRequest(Rng& rng, int i) {
  ScheduleRequest r = RandomRequest(rng, i);
  if (rng.Chance(0.75)) {
    // node-0..4 against a 3-node supply: indices 3 and 4 never match.
    r.node_constraint = "node-" + std::to_string(rng.UniformInt(0, 4));
  } else {
    r.node_constraint.clear();
  }
  return r;
}

/// Full structural comparison of two pools. The indexed scheduler must
/// leave the pool in exactly the state the reference scan does.
void ExpectPoolsEqual(const VgpuPool& a, const VgpuPool& b,
                      const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  auto ia = a.entries().begin();
  auto ib = b.entries().begin();
  for (; ia != a.entries().end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first) << context;
    const VgpuInfo& da = ia->second;
    const VgpuInfo& db = ib->second;
    EXPECT_EQ(da.node, db.node) << context;
    EXPECT_DOUBLE_EQ(da.used_util, db.used_util) << context;
    EXPECT_DOUBLE_EQ(da.used_mem, db.used_mem) << context;
    EXPECT_EQ(da.affinity, db.affinity) << context;
    EXPECT_EQ(da.anti_affinity, db.anti_affinity) << context;
    EXPECT_EQ(da.exclusion, db.exclusion) << context;
    EXPECT_EQ(da.attached, db.attached) << context;
    EXPECT_EQ(da.slices, db.slices)
        << context << " slices " << da.slices.DebugString() << " vs "
        << db.slices.DebugString();
  }
}

using RequestGen = ScheduleRequest (*)(Rng&, int);

void RunEquivalenceSequence(PlacementVariant variant, std::uint64_t seed,
                            RequestGen make_request = &RandomRequest,
                            int ops = 400, bool spatial = false) {
  Rng rng(seed);
  VgpuPool indexed;
  VgpuPool reference;
  if (spatial) {
    indexed.EnableSpatial(7);
    reference.EnableSpatial(7);
  }
  const std::vector<NodeFreeGpus> supply = Supply(3, 3);
  std::vector<std::string> attached;

  for (int i = 0; i < ops; ++i) {
    const std::string context =
        "seed " + std::to_string(seed) + " op " + std::to_string(i);
    if (!attached.empty() && rng.Chance(0.25)) {
      // Detach the same sharePod from both pools.
      const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(attached.size()) - 1));
      const std::string name = attached[pick];
      attached.erase(attached.begin() + static_cast<std::ptrdiff_t>(pick));
      auto da = indexed.Detach(name);
      auto db = reference.Detach(name);
      ASSERT_EQ(da.status().code(), db.status().code()) << context;
      if (da.ok()) {
        EXPECT_EQ(*da, *db) << context;
      }
    } else if (!attached.empty() && rng.Chance(0.10)) {
      // Vertical resize of a random attachment.
      const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(attached.size()) - 1));
      const double request =
          0.05 * static_cast<double>(rng.UniformInt(1, 16));
      const Status sa = indexed.UpdateAttachment(attached[pick], request, 1.0);
      const Status sb =
          reference.UpdateAttachment(attached[pick], request, 1.0);
      EXPECT_EQ(sa.code(), sb.code()) << context;
    } else if (rng.Chance(0.08) && !indexed.idle_devices().empty()) {
      // Release an idle device (copied out: Remove mutates the idle set).
      const GpuId id = *indexed.idle_devices().begin();
      EXPECT_EQ(indexed.Remove(id).code(), reference.Remove(id).code())
          << context;
    } else {
      const ScheduleRequest r = make_request(rng, i);
      auto ra = ScheduleSharePod(indexed, r, supply, variant);
      auto rb = ScheduleSharePodReference(reference, r, supply, variant);
      ASSERT_EQ(ra.status().code(), rb.status().code())
          << context << " indexed=" << ra.status()
          << " reference=" << rb.status();
      if (ra.ok()) {
        EXPECT_EQ(*ra, *rb) << context;
        attached.push_back(r.sharepod);
      }
    }
    const Status inv = indexed.CheckIndexInvariants();
    ASSERT_TRUE(inv.ok()) << context << ": " << inv;
    ExpectPoolsEqual(indexed, reference, context);
    if (testing::Test::HasFatalFailure()) return;
  }
}

TEST(SchedulerEquivalence, PaperVariantMatchesReference) {
  RunEquivalenceSequence(PlacementVariant::kPaper, 11);
  RunEquivalenceSequence(PlacementVariant::kPaper, 12);
  RunEquivalenceSequence(PlacementVariant::kPaper, 13);
}

TEST(SchedulerEquivalence, WorstFitVariantMatchesReference) {
  RunEquivalenceSequence(PlacementVariant::kWorstFitEverywhere, 21);
  RunEquivalenceSequence(PlacementVariant::kWorstFitEverywhere, 22);
  RunEquivalenceSequence(PlacementVariant::kWorstFitEverywhere, 23);
}

TEST(SchedulerEquivalence, FirstFitVariantMatchesReference) {
  RunEquivalenceSequence(PlacementVariant::kFirstFit, 31);
  RunEquivalenceSequence(PlacementVariant::kFirstFit, 32);
  RunEquivalenceSequence(PlacementVariant::kFirstFit, 33);
}

TEST(SchedulerEquivalence, NodeConstrainedRequestsMatchReference) {
  // Node-pinned placements exercise the per-node index cut of the fused
  // scan, including pins to nodes outside the supply (hard rejections) —
  // the indexed scheduler must agree with the full scan on every one.
  for (const std::uint64_t seed : {41, 42, 43, 44}) {
    RunEquivalenceSequence(PlacementVariant::kPaper, seed,
                           &RandomNodeConstrainedRequest, 500);
  }
  RunEquivalenceSequence(PlacementVariant::kWorstFitEverywhere, 45,
                         &RandomNodeConstrainedRequest, 500);
  RunEquivalenceSequence(PlacementVariant::kFirstFit, 46,
                         &RandomNodeConstrainedRequest, 500);
}

TEST(SchedulerEquivalence, SpatialSliceClaimsMatchReference) {
  // Spatial pools add the slice-fit admission rule and the fragmentation
  // tie-break to placement; the indexed scheduler must still agree with
  // the Algorithm 1 reference scan on every placement, error code, and on
  // the resulting slice occupancy of every device.
  for (const std::uint64_t seed : {51, 52, 53, 54}) {
    RunEquivalenceSequence(PlacementVariant::kPaper, seed,
                           &RandomSliceRequest, 400, /*spatial=*/true);
  }
  RunEquivalenceSequence(PlacementVariant::kWorstFitEverywhere, 55,
                         &RandomSliceRequest, 400, /*spatial=*/true);
  RunEquivalenceSequence(PlacementVariant::kFirstFit, 56,
                         &RandomSliceRequest, 400, /*spatial=*/true);
}

/// Eviction-triggered re-placement: the isolation enforcer evicts a tenant
/// (Detach) and the controller immediately re-schedules the surviving
/// sharePod name as a fresh request — often into a pool whose shape the
/// eviction just changed. The indexed scheduler must agree with the
/// reference scan on every re-placement, including ones that land the pod
/// on a different device than it was evicted from.
void RunEvictionReplacementSequence(PlacementVariant variant,
                                    std::uint64_t seed, bool spatial) {
  Rng rng(seed);
  VgpuPool indexed;
  VgpuPool reference;
  if (spatial) {
    indexed.EnableSpatial(7);
    reference.EnableSpatial(7);
  }
  const std::vector<NodeFreeGpus> supply = Supply(3, 3);
  struct Placement {
    ScheduleRequest request;
    GpuId device;
  };
  std::vector<Placement> attached;
  int evict_replacements = 0;

  for (int i = 0; i < 400; ++i) {
    const std::string context = "seed " + std::to_string(seed) + " op " +
                                std::to_string(i) + " (eviction mix)";
    if (!attached.empty() && rng.Chance(0.30)) {
      // Evict a random tenant and re-place it immediately.
      const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(attached.size()) - 1));
      Placement victim = attached[pick];
      attached.erase(attached.begin() + static_cast<std::ptrdiff_t>(pick));
      auto da = indexed.Detach(victim.request.sharepod);
      auto db = reference.Detach(victim.request.sharepod);
      ASSERT_EQ(da.status().code(), db.status().code()) << context;
      if (da.ok()) EXPECT_EQ(*da, *db) << context;

      auto ra = ScheduleSharePod(indexed, victim.request, supply, variant);
      auto rb =
          ScheduleSharePodReference(reference, victim.request, supply, variant);
      ASSERT_EQ(ra.status().code(), rb.status().code())
          << context << " re-placement indexed=" << ra.status()
          << " reference=" << rb.status();
      if (ra.ok()) {
        EXPECT_EQ(*ra, *rb) << context << " re-placement";
        attached.push_back({victim.request, *ra});
        ++evict_replacements;
      }
    } else {
      const ScheduleRequest r =
          spatial ? RandomSliceRequest(rng, i) : RandomRequest(rng, i);
      auto ra = ScheduleSharePod(indexed, r, supply, variant);
      auto rb = ScheduleSharePodReference(reference, r, supply, variant);
      ASSERT_EQ(ra.status().code(), rb.status().code())
          << context << " indexed=" << ra.status()
          << " reference=" << rb.status();
      if (ra.ok()) {
        EXPECT_EQ(*ra, *rb) << context;
        attached.push_back({r, *ra});
      }
    }
    const Status inv = indexed.CheckIndexInvariants();
    ASSERT_TRUE(inv.ok()) << context << ": " << inv;
    ExpectPoolsEqual(indexed, reference, context);
    if (testing::Test::HasFatalFailure()) return;
  }
  // The mix must actually have exercised the evict→re-place path.
  EXPECT_GT(evict_replacements, 10) << "seed " << seed;
}

TEST(SchedulerEquivalence, EvictionReplacementsMatchReference) {
  for (const std::uint64_t seed : {61, 62, 63}) {
    RunEvictionReplacementSequence(PlacementVariant::kPaper, seed,
                                   /*spatial=*/false);
  }
  RunEvictionReplacementSequence(PlacementVariant::kWorstFitEverywhere, 64,
                                 /*spatial=*/false);
  RunEvictionReplacementSequence(PlacementVariant::kFirstFit, 65,
                                 /*spatial=*/false);
}

TEST(SchedulerEquivalence, SpatialEvictionReplacementsMatchReference) {
  // Evicting a sliced tenant frees a slice run; the re-placement must see
  // identical fragmentation-aware scoring in both schedulers.
  for (const std::uint64_t seed : {66, 67}) {
    RunEvictionReplacementSequence(PlacementVariant::kPaper, seed,
                                   /*spatial=*/true);
  }
}

/// Autoscaler-driven replica churn: a replicaset stamps IDENTICAL requests
/// from one template, so scale-up bursts hand both schedulers runs of
/// exactly-equal candidates — the regime where any tie-break divergence
/// between the indexed scan and the reference scan shows up immediately.
/// Scale-downs detach the newest replicas first (the replicaset's surplus
/// deletion order), interleaved with unrelated tenant traffic so the pool
/// shape keeps shifting under the bursts.
void RunReplicaChurnSequence(PlacementVariant variant, std::uint64_t seed,
                             bool spatial) {
  Rng rng(seed);
  VgpuPool indexed;
  VgpuPool reference;
  if (spatial) {
    indexed.EnableSpatial(7);
    reference.EnableSpatial(7);
  }
  const std::vector<NodeFreeGpus> supply = Supply(3, 3);

  // The service template every replica copies (only the name differs).
  ScheduleRequest tmpl;
  tmpl.gpu.gpu_request = 0.45;
  tmpl.gpu.gpu_limit = 1.0;
  tmpl.gpu.gpu_mem = 0.15;
  if (spatial) tmpl.gpu.slice_groups = 2;

  std::vector<std::string> replicas;  // placement order = deletion order
  std::vector<std::string> others;
  int next_replica = 0;
  int scale_ups = 0;
  int scale_downs = 0;

  for (int i = 0; i < 400; ++i) {
    const std::string context = "seed " + std::to_string(seed) + " op " +
                                std::to_string(i) + " (replica churn)";
    const double roll = rng.Uniform(0.0, 1.0);
    if (roll < 0.35) {
      // Scale-up burst: the autoscaler's up_step stamps several identical
      // requests back to back.
      const int step = static_cast<int>(rng.UniformInt(1, 4));
      for (int s = 0; s < step; ++s) {
        ScheduleRequest r = tmpl;
        r.sharepod = "svc-" + std::to_string(next_replica++);
        auto ra = ScheduleSharePod(indexed, r, supply, variant);
        auto rb = ScheduleSharePodReference(reference, r, supply, variant);
        ASSERT_EQ(ra.status().code(), rb.status().code())
            << context << " indexed=" << ra.status()
            << " reference=" << rb.status();
        if (ra.ok()) {
          EXPECT_EQ(*ra, *rb) << context;
          replicas.push_back(r.sharepod);
        }
      }
      ++scale_ups;
    } else if (roll < 0.60 && !replicas.empty()) {
      // Scale-down: newest replicas detach first.
      const int step = static_cast<int>(rng.UniformInt(
          1, static_cast<std::int64_t>(std::min<std::size_t>(
                 replicas.size(), 3))));
      for (int s = 0; s < step; ++s) {
        const std::string name = replicas.back();
        replicas.pop_back();
        auto da = indexed.Detach(name);
        auto db = reference.Detach(name);
        ASSERT_EQ(da.status().code(), db.status().code()) << context;
        if (da.ok()) EXPECT_EQ(*da, *db) << context;
      }
      ++scale_downs;
    } else if (roll < 0.72 && !others.empty()) {
      // Unrelated tenant leaves.
      const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(others.size()) - 1));
      const std::string name = others[pick];
      others.erase(others.begin() + static_cast<std::ptrdiff_t>(pick));
      auto da = indexed.Detach(name);
      auto db = reference.Detach(name);
      ASSERT_EQ(da.status().code(), db.status().code()) << context;
      if (da.ok()) EXPECT_EQ(*da, *db) << context;
    } else {
      // Unrelated tenant arrives and keeps reshaping the pool under the
      // replica bursts.
      const ScheduleRequest r =
          spatial ? RandomSliceRequest(rng, i) : RandomRequest(rng, i);
      auto ra = ScheduleSharePod(indexed, r, supply, variant);
      auto rb = ScheduleSharePodReference(reference, r, supply, variant);
      ASSERT_EQ(ra.status().code(), rb.status().code())
          << context << " indexed=" << ra.status()
          << " reference=" << rb.status();
      if (ra.ok()) {
        EXPECT_EQ(*ra, *rb) << context;
        others.push_back(r.sharepod);
      }
    }
    const Status inv = indexed.CheckIndexInvariants();
    ASSERT_TRUE(inv.ok()) << context << ": " << inv;
    ExpectPoolsEqual(indexed, reference, context);
    if (testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(scale_ups, 20) << "seed " << seed;
  EXPECT_GT(scale_downs, 20) << "seed " << seed;
}

TEST(SchedulerEquivalence, ReplicaChurnMatchesReference) {
  for (const std::uint64_t seed : {71, 72, 73, 74}) {
    RunReplicaChurnSequence(PlacementVariant::kPaper, seed,
                            /*spatial=*/false);
  }
  RunReplicaChurnSequence(PlacementVariant::kWorstFitEverywhere, 75,
                          /*spatial=*/false);
  RunReplicaChurnSequence(PlacementVariant::kFirstFit, 76,
                          /*spatial=*/false);
}

TEST(SchedulerEquivalence, SpatialReplicaChurnMatchesReference) {
  // Sliced replicas: identical two-group claims force the
  // fragmentation-aware tie-break through the same burst pattern.
  for (const std::uint64_t seed : {81, 82}) {
    RunReplicaChurnSequence(PlacementVariant::kPaper, seed,
                            /*spatial=*/true);
  }
}

TEST(SchedulerEquivalence, OvercommitPoolsStayEquivalent) {
  // Memory over-commitment changes Attach's admission rule; the indexed
  // scan must track the reference under it too.
  Rng rng(77);
  VgpuPool indexed;
  VgpuPool reference;
  indexed.set_memory_overcommit(true);
  reference.set_memory_overcommit(true);
  const std::vector<NodeFreeGpus> supply = Supply(2, 2);
  for (int i = 0; i < 120; ++i) {
    ScheduleRequest r = RandomRequest(rng, i);
    r.gpu.gpu_mem = 0.9;  // would over-commit memory without the flag
    auto ra = ScheduleSharePod(indexed, r, supply);
    auto rb = ScheduleSharePodReference(reference, r, supply);
    ASSERT_EQ(ra.status().code(), rb.status().code()) << "op " << i;
    if (ra.ok()) {
      EXPECT_EQ(*ra, *rb) << "op " << i;
    }
    ASSERT_TRUE(indexed.CheckIndexInvariants().ok()) << "op " << i;
  }
}

TEST(PoolIndexInvariants, HoldAcrossRandomMutations) {
  // Directly drive every pool mutator and re-verify the incremental
  // indices against a from-scratch rebuild after each step.
  Rng rng(5150);
  VgpuPool pool;
  std::vector<std::string> attached;
  int next_pod = 0;
  for (int i = 0; i < 300; ++i) {
    const std::int64_t action = rng.UniformInt(0, 9);
    if (action <= 3) {  // attach to a random existing or new device
      if (pool.size() == 0 || rng.Chance(0.3)) {
        pool.Create("node-" + std::to_string(rng.UniformInt(0, 2)));
      }
      auto it = pool.entries().begin();
      std::advance(it, rng.UniformInt(
          0, static_cast<std::int64_t>(pool.size()) - 1));
      const GpuId id = it->first;
      const std::string name = "pod-" + std::to_string(next_pod++);
      vgpu::ResourceSpec gpu;
      gpu.gpu_request = 0.05 * static_cast<double>(rng.UniformInt(1, 12));
      gpu.gpu_mem = 0.05 * static_cast<double>(rng.UniformInt(1, 8));
      LocalitySpec locality;
      if (rng.Chance(0.4)) {
        locality.affinity =
            Label("aff-" + std::to_string(rng.UniformInt(0, 2)));
      }
      if (pool.Attach(id, name, gpu, locality).ok()) {
        attached.push_back(name);
      }
    } else if (action <= 5 && !attached.empty()) {
      const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(attached.size()) - 1));
      (void)pool.Detach(attached[pick]);
      attached.erase(attached.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (action == 6 && !attached.empty()) {
      const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(attached.size()) - 1));
      (void)pool.UpdateAttachment(
          attached[pick], 0.05 * static_cast<double>(rng.UniformInt(1, 14)),
          1.0);
    } else if (action == 7 && !pool.idle_devices().empty()) {
      const GpuId id = *pool.idle_devices().begin();  // copy before Remove
      (void)pool.Remove(id);
    } else if (action == 8) {
      (void)pool.CreateWithId(GpuId("pinned-" + std::to_string(i)),
                              "node-" + std::to_string(rng.UniformInt(0, 2)));
    } else {
      pool.Create("node-" + std::to_string(rng.UniformInt(0, 2)));
    }
    const Status inv = pool.CheckIndexInvariants();
    ASSERT_TRUE(inv.ok()) << "op " << i << ": " << inv;
  }
}

TEST(PoolIndexInvariants, SliceOccupancyHoldsAcrossRandomMutations) {
  // Spatial pool under random slice-claim churn: CheckIndexInvariants
  // rebuilds every device's SliceMap from the attachment table and any
  // drift (leaked groups, overlapping runs, stale occupancy after Detach)
  // is a mutator bug.
  Rng rng(6160);
  VgpuPool pool;
  pool.EnableSpatial(7);
  std::vector<std::string> attached;
  int next_pod = 0;
  for (int i = 0; i < 300; ++i) {
    const std::int64_t action = rng.UniformInt(0, 9);
    if (action <= 4) {
      if (pool.size() == 0 || rng.Chance(0.3)) {
        pool.Create("node-" + std::to_string(rng.UniformInt(0, 2)));
      }
      auto it = pool.entries().begin();
      std::advance(it, rng.UniformInt(
          0, static_cast<std::int64_t>(pool.size()) - 1));
      const GpuId id = it->first;
      const std::string name = "pod-" + std::to_string(next_pod++);
      vgpu::ResourceSpec gpu;
      gpu.gpu_request = 0.05 * static_cast<double>(rng.UniformInt(1, 6));
      gpu.gpu_mem = 0.05 * static_cast<double>(rng.UniformInt(1, 4));
      if (rng.Chance(0.85)) {
        gpu.slice_groups = static_cast<int>(rng.UniformInt(1, 4));
      }
      // Occasionally pin an explicit offset (the DevMgr rebuild path).
      const int offset =
          rng.Chance(0.2) ? static_cast<int>(rng.UniformInt(0, 6)) : -1;
      if (pool.Attach(id, name, gpu, LocalitySpec{}, offset).ok()) {
        attached.push_back(name);
        if (gpu.slice_groups > 0) {
          EXPECT_TRUE(pool.SliceOf(name).has_value()) << name;
        }
      }
    } else if (action <= 7 && !attached.empty()) {
      const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(attached.size()) - 1));
      (void)pool.Detach(attached[pick]);
      attached.erase(attached.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (action == 8 && !pool.idle_devices().empty()) {
      const GpuId id = *pool.idle_devices().begin();  // copy before Remove
      (void)pool.Remove(id);
    } else {
      pool.Create("node-" + std::to_string(rng.UniformInt(0, 2)));
    }
    const Status inv = pool.CheckIndexInvariants();
    ASSERT_TRUE(inv.ok()) << "op " << i << ": " << inv;
    EXPECT_GE(pool.FragmentationRatio(), 0.0);
    EXPECT_LE(pool.FragmentationRatio(), 1.0);
  }
}

TEST(PoolIndexInvariants, SurviveCopyingThePool) {
  // The gang-admission dry run copies the pool and mutates the copy; both
  // the copy's indices and the original's must stay self-consistent and
  // independent.
  VgpuPool pool;
  const GpuId id = pool.Create("node-0").id;
  vgpu::ResourceSpec gpu;
  gpu.gpu_request = 0.4;
  gpu.gpu_mem = 0.2;
  LocalitySpec locality;
  locality.affinity = Label("team-a");
  ASSERT_TRUE(pool.Attach(id, "pod-a", gpu, locality).ok());

  VgpuPool copy = pool;
  ASSERT_TRUE(copy.CheckIndexInvariants().ok());
  ASSERT_TRUE(copy.Detach("pod-a").ok());
  ASSERT_TRUE(copy.CheckIndexInvariants().ok());
  EXPECT_EQ(copy.idle_devices().count(id), 1u);

  // The original is untouched by the copy's mutation.
  ASSERT_TRUE(pool.CheckIndexInvariants().ok());
  EXPECT_EQ(pool.idle_devices().count(id), 0u);
  EXPECT_EQ(pool.AttachedOnNode("node-0"), 1);
  EXPECT_NE(pool.DevicesWithAffinity(Label("team-a")), nullptr);
}

}  // namespace
}  // namespace ks::kubeshare
