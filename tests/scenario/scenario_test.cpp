#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace ks::scenario {
namespace {

Expected<Scenario> ParseString(const std::string& text) {
  std::stringstream ss(text);
  return Scenario::Parse(ss);
}

TEST(ScenarioParse, MinimalScenario) {
  auto s = ParseString("cluster nodes=1 gpus=1\n");
  EXPECT_TRUE(s.ok()) << s.status();
}

TEST(ScenarioParse, RequiresCluster) {
  auto s = ParseString("run until=10\n");
  EXPECT_FALSE(s.ok());
}

TEST(ScenarioParse, RejectsUnknownCommand) {
  auto s = ParseString("cluster nodes=1 gpus=1\nfrobnicate x=1\n");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.status().message().find("line 2"), std::string::npos);
}

TEST(ScenarioParse, RejectsBadNumbers) {
  EXPECT_FALSE(ParseString("cluster nodes=two gpus=1\n").ok());
  EXPECT_FALSE(ParseString("cluster nodes=1 gpus=1\nrun until=-1\n").ok());
  EXPECT_FALSE(ParseString("cluster nodes=0 gpus=1\n").ok());
}

TEST(ScenarioParse, RejectsInvalidJob) {
  const char* kBase = "cluster nodes=1 gpus=1\nkubeshare\n";
  EXPECT_FALSE(ParseString(std::string(kBase) + "job kind=training\n").ok());
  EXPECT_FALSE(
      ParseString(std::string(kBase) + "job name=a kind=sleeping\n").ok());
  EXPECT_FALSE(ParseString(std::string(kBase) +
                           "job name=a request=0.9 limit=0.3\n")
                   .ok());
  EXPECT_FALSE(ParseString(std::string(kBase) +
                           "job name=a\njob name=a\n")
                   .ok());
}

TEST(ScenarioParse, RejectsBadPoolPolicyAndReportTarget) {
  EXPECT_FALSE(
      ParseString("cluster nodes=1 gpus=1\nkubeshare pool=magic\n").ok());
  EXPECT_FALSE(ParseString("cluster nodes=1 gpus=1\nreport everything\n").ok());
}

TEST(ScenarioParse, ModeMustPrecedeJobs) {
  EXPECT_FALSE(ParseString("cluster nodes=1 gpus=1\nkubeshare\n"
                           "job name=a kind=training steps=10\n"
                           "mode native\n")
                   .ok());
}

TEST(ScenarioParse, CommentsAndWhitespaceIgnored) {
  auto s = ParseString(
      "# leading comment\n"
      "cluster nodes=1 gpus=1   # trailing comment\n"
      "   \n"
      "\t\n");
  EXPECT_TRUE(s.ok()) << s.status();
}

TEST(ScenarioRun, EndToEndKubeShareScenario) {
  auto s = ParseString(
      "cluster nodes=1 gpus=2\n"
      "kubeshare pool=ondemand\n"
      "job name=a kind=training at=0 steps=500 kernel_ms=10 request=0.4 "
      "limit=0.9 mem=0.3\n"
      "job name=b kind=inference at=2 demand=0.3 duration=20 request=0.3 "
      "mem=0.2\n"
      "run until=120\n"
      "report jobs\n"
      "report pool\n"
      "report gpus\n"
      "report events\n");
  ASSERT_TRUE(s.ok()) << s.status();
  std::stringstream out;
  ASSERT_TRUE(s->Run(out).ok());
  const std::string text = out.str();
  EXPECT_NE(text.find("succeeded"), std::string::npos);
  EXPECT_NE(text.find("== report pool"), std::string::npos);
  EXPECT_NE(text.find("GPU-0-0"), std::string::npos);
  EXPECT_NE(text.find("Scheduled"), std::string::npos);
  // Both jobs done, nothing failed.
  EXPECT_EQ(text.find("failed"), std::string::npos);
}

TEST(ScenarioRun, NativeModeScenario) {
  auto s = ParseString(
      "cluster nodes=1 gpus=1\n"
      "mode native\n"
      "job name=solo kind=training steps=200 kernel_ms=10\n"
      "run until=60\n"
      "report jobs\n");
  ASSERT_TRUE(s.ok()) << s.status();
  std::stringstream out;
  ASSERT_TRUE(s->Run(out).ok());
  EXPECT_NE(out.str().find("succeeded"), std::string::npos);
}

TEST(ScenarioRun, KubeShareJobWithoutKubeShareFails) {
  auto s = ParseString(
      "cluster nodes=1 gpus=1\n"
      "job name=a kind=training steps=10\n"
      "run until=10\n");
  ASSERT_TRUE(s.ok()) << s.status();
  std::stringstream out;
  EXPECT_FALSE(s->Run(out).ok());
}

TEST(ScenarioRun, ShippedScenariosParseAndRun) {
  // Keep the scenarios in examples/scenarios/ from rotting.
  for (const char* name :
       {"interference.ksim", "device_failure.ksim", "overcommit.ksim",
        "elastic_resize.ksim"}) {
    std::ifstream file(std::string(KS_SOURCE_DIR) + "/examples/scenarios/" +
                       name);
    ASSERT_TRUE(file.good()) << name;
    auto s = Scenario::Parse(file);
    ASSERT_TRUE(s.ok()) << name << ": " << s.status();
    std::stringstream out;
    ASSERT_TRUE(s->Run(out).ok()) << name;
    EXPECT_NE(out.str().find("succeeded"), std::string::npos) << name;
  }
}

TEST(ScenarioRun, ExampleScriptParsesAndRuns) {
  std::stringstream in(Scenario::ExampleScript());
  auto s = Scenario::Parse(in);
  ASSERT_TRUE(s.ok()) << s.status();
  std::stringstream out;
  ASSERT_TRUE(s->Run(out).ok());
  EXPECT_NE(out.str().find("succeeded"), std::string::npos);
}

TEST(ScenarioRun, SharePodAndMetricsReports) {
  auto s = ParseString(
      "cluster nodes=1 gpus=1\n"
      "kubeshare\n"
      "job name=a kind=training steps=100000 kernel_ms=10 request=0.4 "
      "mem=0.2\n"
      "run until=30\n"
      "report sharepods\n"
      "report metrics\n");
  ASSERT_TRUE(s.ok()) << s.status();
  std::stringstream out;
  ASSERT_TRUE(s->Run(out).ok());
  const std::string text = out.str();
  EXPECT_NE(text.find("Running"), std::string::npos);       // sharepod table
  EXPECT_NE(text.find("ks_sharepods{phase=\"Running\"} 1"),  // prometheus
            std::string::npos);
  EXPECT_NE(text.find("ks_gpu_busy_seconds_total"), std::string::npos);
}

TEST(ScenarioRun, HealthCommandDrainsDevice) {
  auto s = ParseString(
      "cluster nodes=1 gpus=2\n"
      "mode native\n"
      "job name=a kind=training steps=100000 kernel_ms=10\n"
      "run until=10\n"
      "health node=0 gpu=1 state=unhealthy\n"
      "job name=b kind=training steps=100 kernel_ms=10\n"
      "run until=40\n"
      "report jobs\n"
      "report events\n");
  ASSERT_TRUE(s.ok()) << s.status();
  std::stringstream out;
  ASSERT_TRUE(s->Run(out).ok());
  const std::string text = out.str();
  // Job a runs on GPU-0-0 forever. GPU-0-1 goes unhealthy before job b
  // arrives, so b cannot be scheduled (no allocatable device).
  EXPECT_NE(text.find("GPU-0-1 -> unhealthy"), std::string::npos);
  EXPECT_NE(text.find("pending"), std::string::npos);
  EXPECT_NE(text.find("FailedScheduling"), std::string::npos);
}

TEST(ScenarioRun, HealthErrorPaths) {
  {
    auto s = ParseString("cluster nodes=1 gpus=1\nhealth node=5 gpu=0\n");
    ASSERT_TRUE(s.ok());
    std::stringstream out;
    EXPECT_FALSE(s->Run(out).ok());
  }
  {
    auto s = ParseString("cluster nodes=1 gpus=1\nhealth node=0 gpu=9\n");
    ASSERT_TRUE(s.ok());
    std::stringstream out;
    EXPECT_FALSE(s->Run(out).ok());
  }
  EXPECT_FALSE(
      ParseString("cluster nodes=1 gpus=1\nhealth node=0 gpu=0 state=odd\n")
          .ok());
}

TEST(ScenarioRun, TraceCommandLoadsCsv) {
  const std::string path = ::testing::TempDir() + "/ksim_trace_test.csv";
  {
    workload::WorkloadConfig cfg;
    cfg.total_jobs = 4;
    cfg.mean_interarrival = Seconds(1);
    cfg.demand_mean = 0.25;
    cfg.demand_stddev = 0.0;
    cfg.job_duration = Seconds(15);
    cfg.seed = 5;
    std::ofstream file(path);
    workload::FormatTrace(workload::GenerateTrace(cfg), file);
  }
  auto s = ParseString(
      "cluster nodes=1 gpus=2\n"
      "kubeshare\n"
      "trace file=" + path + "\n"
      "run until=200\n"
      "report jobs\n");
  ASSERT_TRUE(s.ok()) << s.status();
  std::stringstream out;
  ASSERT_TRUE(s->Run(out).ok());
  const std::string text = out.str();
  EXPECT_NE(text.find("loaded 4 jobs"), std::string::npos);
  EXPECT_NE(text.find("succeeded"), std::string::npos);
  EXPECT_EQ(text.find("failed"), std::string::npos);
}

TEST(ScenarioRun, TraceMissingFileFails) {
  auto s = ParseString(
      "cluster nodes=1 gpus=1\nmode native\ntrace file=/no/such/file.csv\n");
  ASSERT_TRUE(s.ok());
  std::stringstream out;
  EXPECT_EQ(s->Run(out).code(), StatusCode::kNotFound);
}

TEST(ScenarioRun, OvercommitSwitchIsWired) {
  auto s = ParseString(
      "cluster nodes=1 gpus=1\n"
      "kubeshare overcommit=on\n"
      "job name=a kind=training steps=100 kernel_ms=10 request=0.3 mem=0.7 "
      "model_gb=10\n"
      "job name=b kind=training at=1 steps=100 kernel_ms=10 request=0.3 "
      "mem=0.7 model_gb=10\n"
      "run until=300\n"
      "report jobs\n");
  ASSERT_TRUE(s.ok()) << s.status();
  std::stringstream out;
  ASSERT_TRUE(s->Run(out).ok());
  // 2 x 10 GB on a 16 GB GPU: only possible with over-commitment.
  const std::string text = out.str();
  EXPECT_NE(text.find("succeeded"), std::string::npos);
  EXPECT_EQ(text.find("failed"), std::string::npos);
}

}  // namespace
}  // namespace ks::scenario
