#include <gtest/gtest.h>

#include <string>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"

namespace ks::chaos {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan: seeded generation.

TEST(FaultPlan, SameOptionsProduceIdenticalPlan) {
  RandomPlanOptions opt;
  opt.seed = 99;
  opt.fault_count = 20;
  opt.nodes = {"node-0", "node-1", "node-2"};
  const FaultPlan a = FaultPlan::Random(opt);
  const FaultPlan b = FaultPlan::Random(opt);
  ASSERT_EQ(a.faults.size(), 20u);
  EXPECT_EQ(a.ToString(), b.ToString());

  opt.seed = 100;
  const FaultPlan c = FaultPlan::Random(opt);
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(FaultPlan, FaultsSortedAndWithinWindow) {
  RandomPlanOptions opt;
  opt.seed = 7;
  opt.start = Seconds(2);
  opt.horizon = Seconds(30);
  opt.fault_count = 25;
  opt.nodes = {"node-0"};
  const FaultPlan plan = FaultPlan::Random(opt);
  Time prev{0};
  for (const Fault& f : plan.faults) {
    EXPECT_GE(f.at, opt.start);
    EXPECT_LT(f.at, opt.horizon);
    EXPECT_GE(f.at, prev);  // sorted by injection time
    prev = f.at;
  }
}

TEST(FaultPlan, NodeScopedKindsRequireNodes) {
  RandomPlanOptions opt;
  opt.seed = 3;
  opt.fault_count = 30;
  opt.nodes = {};  // nothing to crash
  const FaultPlan plan = FaultPlan::Random(opt);
  for (const Fault& f : plan.faults) {
    EXPECT_NE(f.kind, FaultKind::kNodeCrash) << f.ToString();
    EXPECT_NE(f.kind, FaultKind::kTokenDaemonRestart) << f.ToString();
  }
}

// ---------------------------------------------------------------------------
// FaultInjector: each fault kind against a live cluster.

k8s::Pod PlainPod(const std::string& name, const std::string& node = "") {
  k8s::Pod pod;
  pod.meta.name = name;
  pod.spec.requests.Set(k8s::kResourceCpu, 1000);
  if (!node.empty()) {
    pod.spec.node_selector["kubernetes.io/hostname"] = node;
  }
  return pod;
}

void RunUntilPodPhase(k8s::Cluster& cluster, const std::string& pod,
                      k8s::PodPhase phase, Duration limit = Seconds(30)) {
  const Time deadline = cluster.sim().Now() + limit;
  while (cluster.sim().Now() < deadline) {
    auto p = cluster.api().pods().Get(pod);
    if (p.ok() && p->status.phase == phase) return;
    cluster.sim().RunUntil(cluster.sim().Now() + Millis(100));
  }
  FAIL() << "pod " << pod << " never reached " << k8s::PodPhaseName(phase);
}

TEST(FaultInjector, NodeCrashDetectionEvictionAndRecovery) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 2;
  ccfg.gpus_per_node = 1;
  ccfg.node_detection = Seconds(1);
  ccfg.pod_eviction_timeout = Seconds(2);
  k8s::Cluster cluster(ccfg);
  ASSERT_TRUE(cluster.Start().ok());

  ASSERT_TRUE(cluster.api().pods().Create(PlainPod("victim", "node-0")).ok());
  RunUntilPodPhase(cluster, "victim", k8s::PodPhase::kRunning);

  const Time t_crash = cluster.sim().Now() + Seconds(1);
  FaultPlan plan;
  Fault crash;
  crash.at = t_crash;
  crash.kind = FaultKind::kNodeCrash;
  crash.node = "node-0";
  crash.duration = Seconds(6);  // auto-recovery
  plan.faults.push_back(crash);
  FaultInjector injector(&cluster, plan);
  ASSERT_TRUE(injector.Arm().ok());

  // Before the detection latency elapses the Node object still reads Ready.
  cluster.sim().RunUntil(t_crash + Millis(500));
  EXPECT_TRUE(cluster.NodeCrashed("node-0"));
  EXPECT_TRUE(cluster.api().nodes().Get("node-0")->ready);

  // Detection: NotReady after node_detection.
  cluster.sim().RunUntil(t_crash + Millis(1500));
  EXPECT_FALSE(cluster.api().nodes().Get("node-0")->ready);
  EXPECT_EQ(cluster.node_controller().not_ready_transitions(), 1u);

  // Eviction: a further pod_eviction_timeout later the pod is failed with
  // the NodeLost message.
  cluster.sim().RunUntil(t_crash + Millis(3500));
  auto victim = cluster.api().pods().Get("victim");
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->status.phase, k8s::PodPhase::kFailed);
  EXPECT_EQ(victim->status.message, "NodeLost");
  EXPECT_GE(cluster.node_controller().evictions(), 1u);

  // Auto-recovery at t_crash + 6 s; Ready again after detection latency.
  cluster.sim().RunUntil(t_crash + Millis(7500));
  EXPECT_FALSE(cluster.NodeCrashed("node-0"));
  EXPECT_TRUE(cluster.api().nodes().Get("node-0")->ready);
  EXPECT_EQ(injector.stats().node_crashes, 1u);
  EXPECT_EQ(injector.stats().node_recoveries, 1u);
}

class ReattachClient : public vgpu::TokenClient {
 public:
  void OnTokenGranted(Time) override {}
  void OnTokenExpired() override {}
  void OnBackendRestart() override { ++restarted; }
  int restarted = 0;
};

TEST(FaultInjector, DaemonRestartReattachesFrontends) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 1;
  ccfg.gpus_per_node = 1;
  k8s::Cluster cluster(ccfg);
  ASSERT_TRUE(cluster.Start().ok());

  vgpu::TokenBackendApi& backend = *cluster.node(0).token_backend;
  ReattachClient client;
  vgpu::ResourceSpec spec;
  spec.gpu_request = 0.5;
  ASSERT_TRUE(backend
                  .RegisterContainer(ContainerId("c1"),
                                     cluster.node(0).gpus[0]->uuid(), spec,
                                     &client)
                  .ok());

  FaultPlan plan;
  Fault restart;
  restart.at = cluster.sim().Now() + Seconds(1);
  restart.kind = FaultKind::kTokenDaemonRestart;
  restart.node = "node-0";
  plan.faults.push_back(restart);
  Fault bogus;  // unknown node: skipped, counted, not fatal
  bogus.at = restart.at;
  bogus.kind = FaultKind::kTokenDaemonRestart;
  bogus.node = "node-99";
  plan.faults.push_back(bogus);
  FaultInjector injector(&cluster, plan);
  ASSERT_TRUE(injector.Arm().ok());

  // Past the restart downtime the daemon has rebuilt its state and told
  // every surviving frontend to drop its token and re-request.
  cluster.sim().RunUntil(restart.at + Seconds(1));
  EXPECT_EQ(backend.restarts(), 1u);
  EXPECT_EQ(backend.reattached(), 1u);
  EXPECT_EQ(client.restarted, 1);
  EXPECT_EQ(injector.stats().daemon_restarts, 1u);
  EXPECT_EQ(injector.stats().faults_skipped, 1u);
}

TEST(FaultInjector, LatencySpikeSetsAndRestoresWatchLatency) {
  k8s::Cluster cluster(k8s::ClusterConfig{.nodes = 1, .gpus_per_node = 1});
  ASSERT_TRUE(cluster.Start().ok());
  const Duration before = cluster.api().pods().notify_latency();

  FaultPlan plan;
  Fault spike;
  spike.at = Seconds(1);
  spike.kind = FaultKind::kApiLatencySpike;
  spike.latency = Millis(250);
  spike.duration = Seconds(2);
  plan.faults.push_back(spike);
  FaultInjector injector(&cluster, plan);
  ASSERT_TRUE(injector.Arm().ok());

  cluster.sim().RunUntil(Millis(1500));
  EXPECT_EQ(cluster.api().pods().notify_latency(), Millis(250));
  EXPECT_EQ(cluster.api().nodes().notify_latency(), Millis(250));

  cluster.sim().RunUntil(Seconds(4));
  EXPECT_EQ(cluster.api().pods().notify_latency(), before);
  EXPECT_EQ(cluster.api().nodes().notify_latency(), before);
  EXPECT_EQ(cluster.api().events().CountReason("LatencyRestored"), 1u);
}

// A dropped pod-Added notification strands the pod: the scheduler (unbound
// pod) or the kubelet (pre-bound pod) never hears about it. The periodic
// component resync is the repair path.

TEST(FaultInjector, DroppedAddRepairedBySchedulerResync) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 1;
  ccfg.gpus_per_node = 1;
  ccfg.component_resync = Millis(500);
  k8s::Cluster cluster(ccfg);
  ASSERT_TRUE(cluster.Start().ok());

  cluster.api().pods().DropEvents(1);
  ASSERT_TRUE(cluster.api().pods().Create(PlainPod("stranded")).ok());
  EXPECT_EQ(cluster.api().pods().dropped_events(), 1u);

  RunUntilPodPhase(cluster, "stranded", k8s::PodPhase::kRunning);
  EXPECT_TRUE(cluster.api().pods().Get("stranded")->scheduled());
}

TEST(FaultInjector, DroppedAddRepairedByKubeletResync) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 1;
  ccfg.gpus_per_node = 1;
  ccfg.component_resync = Millis(500);
  k8s::Cluster cluster(ccfg);
  ASSERT_TRUE(cluster.Start().ok());

  // Pre-bound pod (the way DevMgr creates workload pods): only the kubelet
  // acts on it, and the dropped Added leaves it Pending forever without
  // the resync.
  k8s::Pod pod = PlainPod("bound");
  pod.status.node_name = "node-0";
  cluster.api().pods().DropEvents(1);
  ASSERT_TRUE(cluster.api().pods().Create(pod).ok());

  RunUntilPodPhase(cluster, "bound", k8s::PodPhase::kRunning);
}

// A dropped Modified notification makes DevMgr miss a workload pod's
// terminal transition; reconcile pass 2 reads the pod state directly and
// repairs the sharePod record.

TEST(FaultInjector, DroppedTerminalTransitionRepairedByReconcile) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 2;
  ccfg.gpus_per_node = 1;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShareConfig kcfg;
  kcfg.reconcile_period = Millis(500);
  kubeshare::KubeShare kubeshare(&cluster, kcfg);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(kubeshare.Start().ok());

  kubeshare::SharePod sp;
  sp.meta.name = "sp";
  sp.spec.gpu.gpu_request = 0.5;
  sp.spec.gpu.gpu_mem = 0.5;
  ASSERT_TRUE(kubeshare.CreateSharePod(sp).ok());

  const Time deadline = Seconds(60);
  while (cluster.sim().Now() < deadline) {
    auto cur = kubeshare.sharepods().Get("sp");
    if (cur.ok() && cur->status.phase == kubeshare::SharePodPhase::kRunning) {
      break;
    }
    cluster.sim().RunUntil(cluster.sim().Now() + Millis(100));
  }
  auto running = kubeshare.sharepods().Get("sp");
  ASSERT_TRUE(running.ok());
  ASSERT_EQ(running->status.phase, kubeshare::SharePodPhase::kRunning);

  // Lose the Succeeded transition's watch notification.
  const std::string wp = running->status.workload_pod;
  cluster.api().pods().DropEvents(1);
  ASSERT_TRUE(
      cluster.api().SetPodPhase(wp, k8s::PodPhase::kSucceeded).ok());

  cluster.sim().RunUntil(cluster.sim().Now() + Seconds(2));
  auto done = kubeshare.sharepods().Get("sp");
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->status.phase, kubeshare::SharePodPhase::kSucceeded);
  EXPECT_GE(kubeshare.devmgr().reconcile_passes(), 1u);
}

}  // namespace
}  // namespace ks::chaos
