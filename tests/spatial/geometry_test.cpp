#include "spatial/geometry.hpp"

#include <gtest/gtest.h>

namespace ks::spatial {
namespace {

TEST(SliceGeometry, ProfilesAreLinearInGroups) {
  SliceGeometry geo(7);
  EXPECT_EQ(geo.sm_groups(), 7);
  const SliceProfile one = geo.Profile(1);
  EXPECT_EQ(one.groups, 1);
  EXPECT_DOUBLE_EQ(one.compute_fraction, 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(one.memory_fraction, 1.0 / 7.0);
  const SliceProfile all = geo.Profile(7);
  EXPECT_DOUBLE_EQ(all.compute_fraction, 1.0);
  // Out-of-range requests clamp to the device geometry, as MIG profile
  // lookup does.
  EXPECT_EQ(geo.Profile(0).groups, 1);
  EXPECT_EQ(geo.Profile(99).groups, 7);
}

TEST(SliceGeometry, MemoryWallScalesWithGroups) {
  SliceGeometry geo(4);
  const std::uint64_t device = 16ull << 30;
  EXPECT_EQ(geo.MemoryWallBytes(1, device), device / 4);
  EXPECT_EQ(geo.MemoryWallBytes(2, device), device / 2);
  EXPECT_EQ(geo.MemoryWallBytes(4, device), device);
}

TEST(SliceMap, FirstFitAllocatesLowestOffset) {
  SliceMap map(7);
  EXPECT_EQ(map.FreeGroups(), 7);
  ASSERT_TRUE(map.Occupy(0, 2).ok());
  ASSERT_TRUE(map.Occupy(2, 3).ok());
  EXPECT_EQ(map.DebugString(), "#####..");
  // First fit lands right after the occupied prefix.
  EXPECT_EQ(map.FirstFit(2).value_or(-1), 5);
  EXPECT_FALSE(map.FirstFit(3).has_value());
}

TEST(SliceMap, OccupyRejectsOverlapAndOutOfRange) {
  SliceMap map(4);
  ASSERT_TRUE(map.Occupy(1, 2).ok());
  EXPECT_FALSE(map.Occupy(0, 2).ok());  // overlaps group 1
  EXPECT_FALSE(map.Occupy(3, 2).ok());  // runs past the device
  EXPECT_FALSE(map.Occupy(-1, 1).ok());
  EXPECT_FALSE(map.Occupy(0, 0).ok());
  // A failed Occupy must not leave partial marks behind.
  EXPECT_EQ(map.DebugString(), ".##.");
}

TEST(SliceMap, ReleaseRequiresFullyOccupiedRun) {
  SliceMap map(4);
  ASSERT_TRUE(map.Occupy(0, 2).ok());
  EXPECT_FALSE(map.Release(1, 2).ok());  // group 2 is free
  EXPECT_EQ(map.DebugString(), "##..");  // rejected release changes nothing
  EXPECT_TRUE(map.Release(0, 2).ok());
  EXPECT_EQ(map.FreeGroups(), 4);
}

TEST(SliceMap, FragmentationScoreMeasuresUnusableFreeSpace) {
  SliceMap map(7);
  EXPECT_DOUBLE_EQ(map.FragmentationScore(), 0.0);  // fully free
  // "#.#.#.#": 3 free groups, largest run 1 -> 1 - 1/3.
  for (const int offset : {0, 2, 4, 6}) ASSERT_TRUE(map.Occupy(offset, 1).ok());
  EXPECT_DOUBLE_EQ(map.FragmentationScore(), 1.0 - 1.0 / 3.0);
  // Fully used scores 0 (nothing free to fragment).
  for (const int offset : {1, 3, 5}) ASSERT_TRUE(map.Occupy(offset, 1).ok());
  EXPECT_DOUBLE_EQ(map.FragmentationScore(), 0.0);
}

TEST(SliceMap, EqualityComparesGeometryAndMask) {
  SliceMap a(7);
  SliceMap b(7);
  EXPECT_EQ(a, b);
  ASSERT_TRUE(a.Occupy(3, 2).ok());
  EXPECT_NE(a, b);
  ASSERT_TRUE(b.Occupy(3, 2).ok());
  EXPECT_EQ(a, b);
  EXPECT_NE(SliceMap(4), SliceMap(5));
}

TEST(PoolFragmentation, AggregatesAcrossDevices) {
  SliceMap a(7);
  SliceMap b(7);
  // Device a: "#.#.#.#" (3 free, largest 1); device b fully free (7 free,
  // largest 7). Pool: 1 - (1 + 7) / (3 + 7).
  for (const int offset : {0, 2, 4, 6}) ASSERT_TRUE(a.Occupy(offset, 1).ok());
  EXPECT_DOUBLE_EQ(PoolFragmentationRatio({&a, &b}), 1.0 - 8.0 / 10.0);
  EXPECT_DOUBLE_EQ(PoolFragmentationRatio({}), 0.0);
  EXPECT_DOUBLE_EQ(PoolFragmentationRatio({nullptr}), 0.0);
}

}  // namespace
}  // namespace ks::spatial
