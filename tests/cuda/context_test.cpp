#include "cuda/context.hpp"

#include <gtest/gtest.h>

namespace ks::cuda {
namespace {

class CudaContextTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  gpu::GpuDevice dev_{&sim_, GpuUuid("GPU-X")};
  CudaContext ctx_{&dev_, ContainerId("job-1")};
};

TEST_F(CudaContextTest, MemAllocAndFree) {
  gpu::DevicePtr p = 0;
  EXPECT_EQ(ctx_.MemAlloc(&p, 1 << 20), CudaResult::kSuccess);
  EXPECT_EQ(ctx_.AllocatedBytes(), 1u << 20);
  EXPECT_EQ(ctx_.MemFree(p), CudaResult::kSuccess);
  EXPECT_EQ(ctx_.AllocatedBytes(), 0u);
}

TEST_F(CudaContextTest, MemAllocRejectsBadArgs) {
  gpu::DevicePtr p = 0;
  EXPECT_EQ(ctx_.MemAlloc(nullptr, 1), CudaResult::kErrorInvalidValue);
  EXPECT_EQ(ctx_.MemAlloc(&p, 0), CudaResult::kErrorInvalidValue);
}

TEST_F(CudaContextTest, MemAllocOutOfMemory) {
  gpu::DevicePtr p = 0;
  EXPECT_EQ(ctx_.MemAlloc(&p, dev_.spec().memory_bytes + 1),
            CudaResult::kErrorOutOfMemory);
}

TEST_F(CudaContextTest, FreeForeignPointerFails) {
  EXPECT_EQ(ctx_.MemFree(12345), CudaResult::kErrorInvalidValue);
}

TEST_F(CudaContextTest, ArrayCreateAllocatesProduct) {
  gpu::DevicePtr p = 0;
  EXPECT_EQ(ctx_.ArrayCreate(&p, 100, 100, 4), CudaResult::kSuccess);
  EXPECT_EQ(ctx_.AllocatedBytes(), 40000u);
  EXPECT_EQ(ctx_.ArrayCreate(&p, 0, 100, 4), CudaResult::kErrorInvalidValue);
}

TEST_F(CudaContextTest, DefaultStreamKernelsRunFifo) {
  std::vector<int> order;
  ASSERT_EQ(ctx_.LaunchKernel({Millis(10), 0.0, "a"}, kDefaultStream,
                              [&] { order.push_back(1); }),
            CudaResult::kSuccess);
  ASSERT_EQ(ctx_.LaunchKernel({Millis(10), 0.0, "b"}, kDefaultStream,
                              [&] { order.push_back(2); }),
            CudaResult::kSuccess);
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // FIFO: serialized, so ~20ms total, not 20ms of 2-way sharing.
  EXPECT_NEAR(ToMillis(Duration(sim_.Now())), 20.0, 0.1);
}

TEST_F(CudaContextTest, DistinctStreamsOverlap) {
  StreamId s = 0;
  ASSERT_EQ(ctx_.StreamCreate(&s), CudaResult::kSuccess);
  Time t1{0}, t2{0};
  ctx_.LaunchKernel({Millis(10), 0.0, "a"}, kDefaultStream,
                    [&] { t1 = sim_.Now(); });
  ctx_.LaunchKernel({Millis(10), 0.0, "b"}, s, [&] { t2 = sim_.Now(); });
  sim_.Run();
  // Overlapping processor-sharing: both finish at ~20ms.
  EXPECT_NEAR(ToMillis(Duration(t1)), 20.0, 0.1);
  EXPECT_NEAR(ToMillis(Duration(t2)), 20.0, 0.1);
}

TEST_F(CudaContextTest, LaunchOnUnknownStreamFails) {
  EXPECT_EQ(ctx_.LaunchKernel({Millis(1), 0.0, "x"}, 999, nullptr),
            CudaResult::kErrorInvalidHandle);
}

TEST_F(CudaContextTest, LaunchZeroDurationFails) {
  EXPECT_EQ(ctx_.LaunchKernel({Duration{0}, 0.0, "x"}, kDefaultStream, nullptr),
            CudaResult::kErrorInvalidValue);
}

TEST_F(CudaContextTest, StreamDestroyRules) {
  StreamId s = 0;
  ASSERT_EQ(ctx_.StreamCreate(&s), CudaResult::kSuccess);
  EXPECT_EQ(ctx_.StreamDestroy(kDefaultStream), CudaResult::kErrorInvalidValue);
  EXPECT_EQ(ctx_.StreamDestroy(999), CudaResult::kErrorInvalidHandle);
  ctx_.LaunchKernel({Millis(5), 0.0, "x"}, s, nullptr);
  EXPECT_EQ(ctx_.StreamDestroy(s), CudaResult::kErrorNotReady);
  sim_.Run();
  EXPECT_EQ(ctx_.StreamDestroy(s), CudaResult::kSuccess);
}

TEST_F(CudaContextTest, SynchronizeFiresAfterAllWork) {
  bool synced = false;
  ctx_.LaunchKernel({Millis(10), 0.0, "a"}, kDefaultStream, nullptr);
  ctx_.LaunchKernel({Millis(10), 0.0, "b"}, kDefaultStream, nullptr);
  ctx_.Synchronize([&] { synced = true; });
  EXPECT_FALSE(synced);
  sim_.Run();
  EXPECT_TRUE(synced);
}

TEST_F(CudaContextTest, SynchronizeFiresImmediatelyWhenIdle) {
  bool synced = false;
  ctx_.Synchronize([&] { synced = true; });
  EXPECT_TRUE(synced);
}

TEST_F(CudaContextTest, PendingKernelsCountsQueuedWork) {
  ctx_.LaunchKernel({Millis(10), 0.0, "a"}, kDefaultStream, nullptr);
  ctx_.LaunchKernel({Millis(10), 0.0, "b"}, kDefaultStream, nullptr);
  EXPECT_EQ(ctx_.PendingKernels(), 2u);
  sim_.Run();
  EXPECT_EQ(ctx_.PendingKernels(), 0u);
}

TEST_F(CudaContextTest, DestructorFreesDeviceMemory) {
  {
    CudaContext tmp(&dev_, ContainerId("ephemeral"));
    gpu::DevicePtr p = 0;
    ASSERT_EQ(tmp.MemAlloc(&p, 1 << 20), CudaResult::kSuccess);
    EXPECT_GE(dev_.used_memory(), 1u << 20);
  }
  EXPECT_EQ(dev_.used_memory(), 0u);
}

TEST_F(CudaContextTest, EventCompletesAfterPriorKernels) {
  EventId ev = 0;
  ASSERT_EQ(ctx_.EventCreate(&ev), CudaResult::kSuccess);
  ctx_.LaunchKernel({Millis(10), 0.0, "a"}, kDefaultStream, nullptr);
  ctx_.LaunchKernel({Millis(10), 0.0, "b"}, kDefaultStream, nullptr);
  ASSERT_EQ(ctx_.EventRecord(ev, kDefaultStream), CudaResult::kSuccess);
  EXPECT_EQ(ctx_.EventQuery(ev), CudaResult::kErrorNotReady);
  bool fired = false;
  ASSERT_EQ(ctx_.EventSynchronize(ev, [&] { fired = true; }),
            CudaResult::kSuccess);
  sim_.Run();
  EXPECT_EQ(ctx_.EventQuery(ev), CudaResult::kSuccess);
  EXPECT_TRUE(fired);
}

TEST_F(CudaContextTest, EventOnIdleStreamCompletesImmediately) {
  EventId ev = 0;
  ASSERT_EQ(ctx_.EventCreate(&ev), CudaResult::kSuccess);
  ASSERT_EQ(ctx_.EventRecord(ev, kDefaultStream), CudaResult::kSuccess);
  EXPECT_EQ(ctx_.EventQuery(ev), CudaResult::kSuccess);
  bool fired = false;
  ctx_.EventSynchronize(ev, [&] { fired = true; });
  EXPECT_TRUE(fired);  // immediate for complete events
}

TEST_F(CudaContextTest, EventElapsedTimeMeasuresKernelSpan) {
  EventId start = 0, end = 0;
  ASSERT_EQ(ctx_.EventCreate(&start), CudaResult::kSuccess);
  ASSERT_EQ(ctx_.EventCreate(&end), CudaResult::kSuccess);
  ctx_.EventRecord(start, kDefaultStream);  // completes at t=0
  ctx_.LaunchKernel({Millis(30), 0.0, "k"}, kDefaultStream, nullptr);
  ctx_.EventRecord(end, kDefaultStream);
  Duration elapsed{0};
  EXPECT_EQ(ctx_.EventElapsedTime(&elapsed, start, end),
            CudaResult::kErrorNotReady);
  sim_.Run();
  ASSERT_EQ(ctx_.EventElapsedTime(&elapsed, start, end),
            CudaResult::kSuccess);
  EXPECT_NEAR(ToMillis(elapsed), 30.0, 0.1);
}

TEST_F(CudaContextTest, EventErrorPaths) {
  EventId ev = 0;
  EXPECT_EQ(ctx_.EventCreate(nullptr), CudaResult::kErrorInvalidValue);
  ASSERT_EQ(ctx_.EventCreate(&ev), CudaResult::kSuccess);
  EXPECT_EQ(ctx_.EventQuery(ev), CudaResult::kErrorInvalidValue);  // unrecorded
  EXPECT_EQ(ctx_.EventRecord(ev, 999), CudaResult::kErrorInvalidHandle);
  EXPECT_EQ(ctx_.EventRecord(999, kDefaultStream),
            CudaResult::kErrorInvalidHandle);
  EXPECT_EQ(ctx_.EventDestroy(ev), CudaResult::kSuccess);
  EXPECT_EQ(ctx_.EventDestroy(ev), CudaResult::kErrorInvalidHandle);
}

TEST_F(CudaContextTest, ReRecordResetsEvent) {
  EventId ev = 0;
  ASSERT_EQ(ctx_.EventCreate(&ev), CudaResult::kSuccess);
  ctx_.EventRecord(ev, kDefaultStream);
  EXPECT_EQ(ctx_.EventQuery(ev), CudaResult::kSuccess);
  ctx_.LaunchKernel({Millis(10), 0.0, "k"}, kDefaultStream, nullptr);
  ctx_.EventRecord(ev, kDefaultStream);
  EXPECT_EQ(ctx_.EventQuery(ev), CudaResult::kErrorNotReady);
  sim_.Run();
  EXPECT_EQ(ctx_.EventQuery(ev), CudaResult::kSuccess);
}

TEST_F(CudaContextTest, CompletionCallbackCanLaunchAgain) {
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 3) {
      ctx_.LaunchKernel({Millis(5), 0.0, "chain"}, kDefaultStream, next);
    }
  };
  ctx_.LaunchKernel({Millis(5), 0.0, "chain"}, kDefaultStream, next);
  sim_.Run();
  EXPECT_EQ(chain, 3);
}

}  // namespace
}  // namespace ks::cuda
