// Differential tests for the pull-mode PeriodicSampler: riding the shared
// sim::TickHub must produce samples byte-equal to the push-mode (one event
// per sample) reference — first in isolation, then through a full KubeShare
// workload with a DevMgr crash-and-rebuild in the middle.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/sampler.hpp"
#include "sim/simulation.hpp"
#include "sim/tick_hub.hpp"
#include "workload/generator.hpp"
#include "workload/host.hpp"

namespace ks::metrics {
namespace {

void ExpectSeriesEqual(const std::vector<PeriodicSampler::Sample>& a,
                       const std::vector<PeriodicSampler::Sample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at) << "sample " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "sample " << i;  // bit-equal
  }
}

/// Push and pull samplers watching the same mutating value in one
/// simulation. The value changes strictly between sample instants, so both
/// modes must record the same timestamps and the same bits.
TEST(SamplerPull, PullSamplesAreByteEqualToPush) {
  sim::Simulation sim;
  sim::TickHub hub(&sim, Millis(1));
  double value = 0.0;
  // Mutations at 50 ms + k*100 ms — never on the 100 ms sample grid.
  for (int k = 0; k < 40; ++k) {
    sim.ScheduleAt(Millis(50 + 100 * k),
                   [&value, k] { value = 1.0 / (1.0 + k); });
  }

  PeriodicSampler push(&sim, Millis(100), [&value] { return value; });
  PeriodicSampler pull(&hub, Millis(100), [&value] { return value; });
  push.Start();
  pull.Start();
  sim.RunUntil(Seconds(4));
  push.Stop();
  pull.Stop();

  ASSERT_EQ(push.series().size(), 40u);
  ExpectSeriesEqual(push.series(), pull.series());
  EXPECT_EQ(push.MeanValue(), pull.MeanValue());
  EXPECT_EQ(push.MaxValue(), pull.MaxValue());
}

/// The point of the hub: N same-period instruments share ONE engine event
/// per instant instead of keeping N private ones.
TEST(SamplerPull, EqualPeriodSamplersCoalesceOntoOneEngineEvent) {
  sim::Simulation sim;
  sim::TickHub hub(&sim, Millis(1));
  double value = 0.0;
  PeriodicSampler a(&hub, Millis(10), [&value] { return value; });
  PeriodicSampler b(&hub, Millis(10), [&value] { return value; });
  PeriodicSampler c(&hub, Millis(10), [&value] { return value; });
  a.Start();
  b.Start();
  c.Start();
  sim.RunUntil(Millis(105));
  a.Stop();
  b.Stop();
  c.Stop();

  ASSERT_EQ(a.series().size(), 10u);
  EXPECT_EQ(hub.fires(), 30u);   // 3 instruments x 10 instants
  EXPECT_EQ(hub.ticks(), 10u);   // but only 10 engine events
}

/// Stopping one instrument must not disturb its co-tenants on the hub.
TEST(SamplerPull, StopUnsubscribesWithoutDisturbingOthers) {
  sim::Simulation sim;
  sim::TickHub hub(&sim, Millis(1));
  double value = 0.0;
  PeriodicSampler a(&hub, Millis(10), [&value] { return value; });
  PeriodicSampler b(&hub, Millis(10), [&value] { return value; });
  a.Start();
  b.Start();
  sim.RunUntil(Millis(55));
  a.Stop();
  sim.RunUntil(Millis(105));
  b.Stop();
  EXPECT_EQ(a.series().size(), 5u);
  EXPECT_EQ(b.series().size(), 10u);
}

// ---------------------------------------------------------------------------
// Full-stack differential: two identical KubeShare runs with a DevMgr crash
// mid-flight; one watches the cluster with a push-mode sampler, the other
// with pull-mode instruments on the cluster's shared tick. Probes are
// read-only, so the runs are bit-deterministic twins and the series must be
// byte-equal — including across the crash, the rebuild, and the requeues.

struct ClusterRunResult {
  std::vector<PeriodicSampler::Sample> running_pods;
  std::size_t completed = 0;
  std::uint64_t devmgr_crashes = 0;
  std::uint64_t hub_fires = 0;
  std::uint64_t hub_ticks = 0;
};

ClusterRunResult RunClusterWatched(bool pull_mode) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 4;
  ccfg.gpus_per_node = 2;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  workload::WorkloadConfig wcfg;
  wcfg.total_jobs = 16;
  wcfg.mean_interarrival = Seconds(1.0);
  wcfg.demand_mean = 0.35;
  wcfg.demand_stddev = 0.15;
  wcfg.job_duration = Seconds(8);
  wcfg.seed = 4242;
  workload::WorkloadDriver driver(&cluster, &host,
                                  workload::WorkloadDriver::Mode::kKubeShare,
                                  &kubeshare, wcfg);

  chaos::FaultPlan plan;
  chaos::Fault crash;
  crash.at = Seconds(10);
  crash.kind = chaos::FaultKind::kDevMgrCrash;
  crash.duration = Seconds(2);
  plan.faults.push_back(crash);
  chaos::FaultInjector injector(&cluster, plan);
  injector.SetKubeShare(&kubeshare);

  EXPECT_TRUE(cluster.Start().ok());
  EXPECT_TRUE(kubeshare.Start().ok());
  EXPECT_TRUE(injector.Arm().ok());
  driver.Start();

  auto probe = [&cluster] {
    double running = 0.0;
    for (const k8s::Pod& pod : cluster.api().pods().List()) {
      if (pod.status.phase == k8s::PodPhase::kRunning) running += 1.0;
    }
    return running;
  };
  // 1003 ms: on the hub's 1 ms grid but off the second-aligned cadences of
  // the cluster components, so no cluster event shares a sample's instant
  // (first collision at ~1003 s, far past the horizon).
  const Duration period = Millis(1003);
  std::unique_ptr<PeriodicSampler> sampler;
  std::unique_ptr<PeriodicSampler> extra;  // pull-only co-tenant
  if (pull_mode) {
    sampler = std::make_unique<PeriodicSampler>(cluster.tick_hub(), period,
                                                probe);
    extra = std::make_unique<PeriodicSampler>(cluster.tick_hub(), period,
                                              probe);
    extra->Start();
  } else {
    sampler = std::make_unique<PeriodicSampler>(&cluster.sim(), period,
                                                probe);
  }
  sampler->Start();

  cluster.sim().RunUntil(Seconds(40));
  sampler->Stop();

  ClusterRunResult result;
  result.running_pods = sampler->series();
  result.completed = host.completed();
  result.devmgr_crashes = injector.stats().devmgr_crashes;
  if (pull_mode && extra != nullptr) {
    extra->Stop();
    // The co-tenant saw the same cluster through the same tick...
    ExpectSeriesEqual(sampler->series(), extra->series());
    result.hub_fires = cluster.tick_hub()->fires();
    result.hub_ticks = cluster.tick_hub()->ticks();
  }
  return result;
}

TEST(SamplerPull, ClusterSeriesByteEqualAcrossDevMgrCrash) {
  const ClusterRunResult push = RunClusterWatched(/*pull_mode=*/false);
  const ClusterRunResult pull = RunClusterWatched(/*pull_mode=*/true);

  ASSERT_EQ(push.devmgr_crashes, 1u);
  ASSERT_EQ(pull.devmgr_crashes, 1u);
  EXPECT_EQ(push.completed, pull.completed);
  ASSERT_GE(push.running_pods.size(), 30u);
  ExpectSeriesEqual(push.running_pods, pull.running_pods);
  // ...and the two pull instruments cost one engine event per instant, not
  // two: the fires/ticks ratio is exactly the instrument count.
  EXPECT_EQ(pull.hub_fires, 2 * pull.hub_ticks);
}

}  // namespace
}  // namespace ks::metrics
