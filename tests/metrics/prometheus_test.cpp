#include "metrics/prometheus.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/cluster_metrics.hpp"

namespace ks::metrics {
namespace {

TEST(PrometheusExporter, WritesExpositionFormat) {
  PrometheusExporter exporter;
  exporter.Gauge("ks_pool", "vGPU pool size", {}, 3);
  exporter.Gauge("ks_util", "busy fraction", {{"uuid", "GPU-0"}}, 0.5);
  exporter.Gauge("ks_util", "busy fraction", {{"uuid", "GPU-1"}}, 0.25);
  std::stringstream os;
  exporter.Write(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP ks_pool vGPU pool size"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ks_pool gauge"), std::string::npos);
  EXPECT_NE(text.find("ks_pool 3"), std::string::npos);
  EXPECT_NE(text.find("ks_util{uuid=\"GPU-0\"} 0.5"), std::string::npos);
  EXPECT_NE(text.find("ks_util{uuid=\"GPU-1\"} 0.25"), std::string::npos);
  // One HELP/TYPE header per family, not per sample.
  EXPECT_EQ(text.find("# HELP ks_util"), text.rfind("# HELP ks_util"));
  EXPECT_EQ(exporter.sample_count(), 3u);
}

TEST(PrometheusExporter, MultipleLabelsSorted) {
  PrometheusExporter exporter;
  exporter.Gauge("m", "h", {{"b", "2"}, {"a", "1"}}, 7);
  std::stringstream os;
  exporter.Write(os);
  EXPECT_NE(os.str().find("m{a=\"1\",b=\"2\"} 7"), std::string::npos);
}

TEST(PrometheusExporter, EscapesLabelValues) {
  EXPECT_EQ(PrometheusExporter::EscapeLabelValue("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd");
}

TEST(PrometheusExporter, ClearResets) {
  PrometheusExporter exporter;
  exporter.Gauge("m", "h", {}, 1);
  exporter.Clear();
  EXPECT_EQ(exporter.sample_count(), 0u);
}

TEST(ClusterMetrics, ExportsClusterAndKubeShareState) {
  k8s::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.gpus_per_node = 2;
  k8s::Cluster cluster(cfg);
  kubeshare::KubeShare kubeshare(&cluster);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(kubeshare.Start().ok());
  kubeshare::SharePod sp;
  sp.meta.name = "sp";
  sp.spec.gpu.gpu_request = 0.4;
  sp.spec.gpu.gpu_mem = 0.2;
  ASSERT_TRUE(kubeshare.CreateSharePod(sp).ok());
  cluster.sim().RunUntil(Seconds(10));

  PrometheusExporter exporter;
  ExportClusterMetrics(cluster, &kubeshare, exporter);
  std::stringstream os;
  exporter.Write(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("ks_gpu_busy_seconds_total{node=\"node-0\",uuid=\"GPU-0-0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ks_vgpu_pool_size{state=\"Active\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ks_sharepods{phase=\"Running\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ks_vgpus_created_total 1"), std::string::npos);
  EXPECT_NE(text.find("ks_pods{phase=\"Running\"}"), std::string::npos);
}

TEST(ClusterMetrics, WorksWithoutKubeShare) {
  k8s::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.gpus_per_node = 1;
  k8s::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.Start().ok());
  cluster.sim().RunUntil(Seconds(1));
  PrometheusExporter exporter;
  ExportClusterMetrics(cluster, nullptr, exporter);
  std::stringstream os;
  exporter.Write(os);
  EXPECT_NE(os.str().find("ks_gpu_memory_used_fraction"), std::string::npos);
  EXPECT_EQ(os.str().find("ks_vgpu_pool_size"), std::string::npos);
}

}  // namespace
}  // namespace ks::metrics
