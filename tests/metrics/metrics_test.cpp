#include <gtest/gtest.h>

#include "metrics/sampler.hpp"
#include "metrics/throughput.hpp"

namespace ks::metrics {
namespace {

TEST(PeriodicSampler, SamplesAtPeriod) {
  sim::Simulation sim;
  int value = 0;
  PeriodicSampler sampler(&sim, Seconds(1), [&] {
    return static_cast<double>(++value);
  });
  sampler.Start();
  sim.RunUntil(Seconds(5));
  sampler.Stop();
  ASSERT_EQ(sampler.series().size(), 5u);
  EXPECT_EQ(sampler.series()[0].at, Seconds(1));
  EXPECT_DOUBLE_EQ(sampler.series()[4].value, 5.0);
  EXPECT_DOUBLE_EQ(sampler.MaxValue(), 5.0);
  EXPECT_DOUBLE_EQ(sampler.MeanValue(), 3.0);
}

TEST(PeriodicSampler, StopPreventsFurtherSamples) {
  sim::Simulation sim;
  PeriodicSampler sampler(&sim, Seconds(1), [] { return 1.0; });
  sampler.Start();
  sim.RunUntil(Seconds(2));
  sampler.Stop();
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(sampler.series().size(), 2u);
}

TEST(PeriodicSampler, EmptySeriesStats) {
  sim::Simulation sim;
  PeriodicSampler sampler(&sim, Seconds(1), [] { return 1.0; });
  EXPECT_DOUBLE_EQ(sampler.MaxValue(), 0.0);
  EXPECT_DOUBLE_EQ(sampler.MeanValue(), 0.0);
}

TEST(ThroughputTimeline, OverallRate) {
  ThroughputTimeline tl;
  for (int i = 1; i <= 10; ++i) tl.NoteCompletion(Seconds(i * 6));
  // 10 jobs in 60 seconds.
  EXPECT_DOUBLE_EQ(tl.OverallJobsPerMinute(), 10.0);
  EXPECT_EQ(tl.count(), 10u);
  EXPECT_EQ(tl.last_completion(), Seconds(60));
}

TEST(ThroughputTimeline, WindowedRate) {
  ThroughputTimeline tl;
  for (int i = 0; i < 30; ++i) tl.NoteCompletion(Seconds(i));
  EXPECT_DOUBLE_EQ(tl.JobsPerMinute(Seconds(0), Seconds(30)), 60.0);
  EXPECT_DOUBLE_EQ(tl.JobsPerMinute(Seconds(100), Seconds(130)), 0.0);
  EXPECT_DOUBLE_EQ(tl.JobsPerMinute(Seconds(30), Seconds(30)), 0.0);
}

TEST(ThroughputTimeline, PeakRate) {
  ThroughputTimeline tl;
  // Burst of 10 completions at t=100s, nothing else.
  for (int i = 0; i < 10; ++i) tl.NoteCompletion(Seconds(100) + Millis(i));
  tl.NoteCompletion(Seconds(500));
  EXPECT_GE(tl.PeakJobsPerMinute(Seconds(10)), 60.0);
  EXPECT_DOUBLE_EQ(tl.PeakJobsPerMinute(Duration{0}), 0.0);
}

TEST(ThroughputTimeline, EmptyTimeline) {
  ThroughputTimeline tl;
  EXPECT_DOUBLE_EQ(tl.OverallJobsPerMinute(), 0.0);
  EXPECT_DOUBLE_EQ(tl.PeakJobsPerMinute(Seconds(10)), 0.0);
}

}  // namespace
}  // namespace ks::metrics
