#include "metrics/latency_digest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

// Global operator-new instrumentation for the zero-allocation property.
// Counting is the only side effect; the real allocator still serves every
// request, so the rest of the binary is unaffected.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace ks::metrics {
namespace {

// Exact nearest-rank quantile over raw microsecond samples — the oracle
// the digest's bounded-error claim is checked against. (common::Percentile
// interpolates linearly, which is a different statistic; the digest's
// contract is nearest-rank.)
std::uint64_t ExactNearestRank(std::vector<std::uint64_t> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const auto n = samples.size();
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
  if (static_cast<double>(rank) < q * static_cast<double>(n)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples[rank - 1];
}

TEST(LatencyDigestTest, EmptyDigestAnswersZero) {
  LatencyDigest d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.Quantile(0.5), Duration{0});
  EXPECT_EQ(d.Min(), Duration{0});
  EXPECT_EQ(d.Max(), Duration{0});
  EXPECT_DOUBLE_EQ(d.MeanSeconds(), 0.0);
}

TEST(LatencyDigestTest, SmallValuesAreExact) {
  // The first two powers of two are represented exactly (bucket width 1us).
  LatencyDigest d;
  for (std::int64_t v = 0; v < 64; ++v) d.Record(Duration{v});
  EXPECT_EQ(d.count(), 64u);
  EXPECT_EQ(d.Quantile(0.5), Duration{31});   // rank 32 -> sample 31
  EXPECT_EQ(d.Quantile(1.0), Duration{63});
  EXPECT_EQ(d.Min(), Duration{0});
  EXPECT_EQ(d.Max(), Duration{63});
}

TEST(LatencyDigestTest, NegativeDurationsClampToZero) {
  LatencyDigest d;
  d.Record(Duration{-5});
  EXPECT_EQ(d.count(), 1u);
  EXPECT_EQ(d.Quantile(1.0), Duration{0});
}

TEST(LatencyDigestTest, IndexAndLowerEdgeRoundTrip) {
  // LowerEdge(IndexFor(v)) <= v for all v, and LowerEdge is the smallest
  // value mapping to its bucket.
  const std::uint64_t probes[] = {0,  1,   31,   32,   33,   63,  64,
                                  65, 100, 1000, 4095, 4096, 1ull << 20,
                                  (1ull << 40) + 12345, ~0ull};
  for (std::uint64_t v : probes) {
    const int idx = LatencyDigest::IndexFor(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, LatencyDigest::kBuckets);
    const std::uint64_t edge = LatencyDigest::LowerEdge(idx);
    EXPECT_LE(edge, v) << "v=" << v;
    if (edge > 0) {
      EXPECT_LT(LatencyDigest::IndexFor(edge - 1), idx) << "v=" << v;
    }
    EXPECT_EQ(LatencyDigest::IndexFor(edge), idx) << "v=" << v;
  }
}

TEST(LatencyDigestTest, QuantileErrorIsBoundedVsExactSort) {
  // Property: for the rank-selected sample x and answer a = Quantile(q):
  //     a <= x <= a * (1 + 1/kSubBuckets) + 1us
  // over randomized heavy-tailed sequences.
  for (std::uint64_t seed : {7ull, 21ull, 99ull, 1234ull, 777777ull}) {
    ks::Rng rng(seed);
    LatencyDigest d;
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 20000; ++i) {
      // Mix of scales: microseconds to minutes, plus a heavy tail.
      double v = rng.Uniform(0.0, 1.0);
      std::uint64_t us;
      if (v < 0.5) {
        us = static_cast<std::uint64_t>(rng.Uniform(0.0, 5000.0));
      } else if (v < 0.9) {
        us = static_cast<std::uint64_t>(rng.Uniform(5e3, 2e6));
      } else {
        us = static_cast<std::uint64_t>(rng.Uniform(2e6, 6e7));
      }
      samples.push_back(us);
      d.Record(Duration{static_cast<std::int64_t>(us)});
    }
    for (double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
      const auto exact = ExactNearestRank(samples, q);
      const auto approx =
          static_cast<std::uint64_t>(d.Quantile(q).count());
      EXPECT_LE(approx, exact) << "seed=" << seed << " q=" << q;
      const double bound =
          static_cast<double>(approx) *
              (1.0 + 1.0 / LatencyDigest::kSubBuckets) +
          1.0;
      EXPECT_LE(static_cast<double>(exact), bound)
          << "seed=" << seed << " q=" << q;
    }
  }
}

TEST(LatencyDigestTest, MergeIsExactAssociativeAndCommutative) {
  ks::Rng rng(42);
  std::vector<LatencyDigest> parts(3);
  LatencyDigest all;  // every sample recorded directly
  for (int i = 0; i < 9000; ++i) {
    const auto us =
        static_cast<std::int64_t>(rng.Uniform(0.0, 1e7));
    parts[i % 3].Record(Duration{us});
    all.Record(Duration{us});
  }
  // (a + b) + c
  LatencyDigest abc = parts[0];
  abc.Merge(parts[1]);
  abc.Merge(parts[2]);
  // c + (b + a)
  LatencyDigest cba = parts[2];
  LatencyDigest ba = parts[1];
  ba.Merge(parts[0]);
  cba.Merge(ba);
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(abc.Quantile(q), cba.Quantile(q)) << "q=" << q;
    EXPECT_EQ(abc.Quantile(q), all.Quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(abc.count(), all.count());
  EXPECT_EQ(abc.SumLatency(), all.SumLatency());
  EXPECT_EQ(abc.Min(), all.Min());
  EXPECT_EQ(abc.Max(), all.Max());
}

TEST(LatencyDigestTest, QuantileUnionMatchesMaterializedMerge) {
  ks::Rng rng(7);
  LatencyDigest a, b;
  for (int i = 0; i < 5000; ++i) {
    a.Record(Duration{static_cast<std::int64_t>(rng.Uniform(0.0, 1e6))});
    b.Record(Duration{static_cast<std::int64_t>(rng.Uniform(0.0, 1e8))});
  }
  LatencyDigest merged = a;
  merged.Merge(b);
  for (double q : {0.01, 0.5, 0.99, 0.999}) {
    EXPECT_EQ(LatencyDigest::QuantileUnion(a, b, q), merged.Quantile(q))
        << "q=" << q;
    EXPECT_EQ(LatencyDigest::QuantileUnion(b, a, q), merged.Quantile(q))
        << "q=" << q;
  }
}

TEST(LatencyDigestTest, RecordAndQuantileAreAllocationFree) {
  LatencyDigest d;
  ks::Rng rng(3);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(static_cast<std::int64_t>(rng.Uniform(0.0, 1e9)));
  }
  const std::uint64_t before = g_allocations.load();
  for (std::int64_t v : values) d.Record(Duration{v});
  (void)d.Quantile(0.99);
  LatencyDigest other;
  other.Merge(d);
  (void)LatencyDigest::QuantileUnion(d, other, 0.999);
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before)
      << "digest update/query path allocated " << (after - before)
      << " times";
}

TEST(WindowedLatencyDigestTest, RotationKeepsOneToTwoWindowsOfHistory) {
  WindowedLatencyDigest w(Seconds(5.0));
  // Epoch [0, 5s): slow samples.
  w.Record(Seconds(1.0), Millis(400));
  w.Record(Seconds(2.0), Millis(400));
  EXPECT_EQ(w.WindowCount(Seconds(2.0)), 2u);
  // Epoch [5s, 10s): fast samples; the slow epoch still counts.
  w.Record(Seconds(6.0), Millis(10));
  EXPECT_EQ(w.WindowCount(Seconds(6.0)), 3u);
  EXPECT_GE(w.Quantile(Seconds(6.0), 0.99), Millis(300));
  // Epoch [10s, 15s): the slow epoch has aged out of the union.
  w.Record(Seconds(11.0), Millis(10));
  EXPECT_EQ(w.WindowCount(Seconds(11.0)), 2u);
  EXPECT_LT(w.Quantile(Seconds(11.0), 0.99), Millis(50));
}

TEST(WindowedLatencyDigestTest, LongIdleDropsBothEpochs) {
  WindowedLatencyDigest w(Seconds(5.0));
  w.Record(Seconds(1.0), Millis(400));
  // Quiet for many windows: everything is stale.
  EXPECT_EQ(w.WindowCount(Seconds(60.0)), 0u);
  EXPECT_EQ(w.Quantile(Seconds(60.0), 0.99), Duration{0});
  // Recording re-anchors cleanly on the current window grid.
  w.Record(Seconds(61.0), Millis(20));
  EXPECT_EQ(w.WindowCount(Seconds(61.0)), 1u);
}

TEST(WindowedLatencyDigestTest, ZeroWindowNeverRotates) {
  WindowedLatencyDigest w(Duration{0});
  w.Record(Seconds(1.0), Millis(100));
  w.Record(Seconds(1000.0), Millis(100));
  EXPECT_EQ(w.WindowCount(Seconds(2000.0)), 2u);
}

}  // namespace
}  // namespace ks::metrics
