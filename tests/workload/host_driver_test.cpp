#include <gtest/gtest.h>

#include "workload/generator.hpp"
#include "workload/host.hpp"

namespace ks::workload {
namespace {

class HostDriverTest : public ::testing::Test {
 protected:
  static k8s::ClusterConfig SmallCluster() {
    k8s::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.gpus_per_node = 2;
    return cfg;
  }

  HostDriverTest()
      : cluster_(SmallCluster()), kubeshare_(&cluster_), host_(&cluster_) {
    EXPECT_TRUE(cluster_.Start().ok());
    EXPECT_TRUE(kubeshare_.Start().ok());
  }

  k8s::Cluster cluster_;
  kubeshare::KubeShare kubeshare_;
  WorkloadHost host_;
};

TEST_F(HostDriverTest, NativePodRunsTrainingJobToCompletion) {
  TrainingSpec spec;
  spec.steps = 50;
  host_.ExpectJob("train-1", [spec] {
    return std::make_unique<TrainingJob>(spec);
  });
  k8s::Pod pod;
  pod.meta.name = "train-1";
  pod.spec.requests.Set(k8s::kResourceNvidiaGpu, 1);
  ASSERT_TRUE(cluster_.api().pods().Create(pod).ok());
  cluster_.sim().RunUntil(Seconds(60));
  EXPECT_EQ(host_.completed(), 1u);
  EXPECT_EQ(cluster_.api().pods().Get("train-1")->status.phase,
            k8s::PodPhase::kSucceeded);
  const auto* rec = host_.RecordOf("train-1");
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->success);
  EXPECT_GT(rec->finished, rec->started);
}

TEST_F(HostDriverTest, SharePodJobRunsUnderDeviceLibrary) {
  TrainingSpec spec;
  spec.steps = 100;
  spec.step_kernel = Millis(10);
  host_.ExpectJob("sp-train", [spec] {
    return std::make_unique<TrainingJob>(spec);
  });
  kubeshare::SharePod sp;
  sp.meta.name = "sp-train";
  sp.spec.gpu.gpu_request = 0.3;
  sp.spec.gpu.gpu_limit = 0.5;  // throttled to half speed
  sp.spec.gpu.gpu_mem = 0.5;
  ASSERT_TRUE(kubeshare_.CreateSharePod(sp).ok());
  cluster_.sim().RunUntil(Seconds(60));
  EXPECT_EQ(host_.completed(), 1u);
  EXPECT_EQ(kubeshare_.sharepods().Get("sp-train")->status.phase,
            kubeshare::SharePodPhase::kSucceeded);
  // 1s of kernels at <=0.5 usage must take >= ~2s of wall time.
  const auto* rec = host_.RecordOf("sp-train");
  EXPECT_GE(rec->finished - rec->started, Millis(1900));
}

TEST_F(HostDriverTest, OomSharePodFails) {
  TrainingSpec spec;
  spec.model_bytes = 8ull << 30;  // 8 GB
  host_.ExpectJob("sp-oom", [spec] {
    return std::make_unique<TrainingJob>(spec);
  });
  kubeshare::SharePod sp;
  sp.meta.name = "sp-oom";
  sp.spec.gpu.gpu_request = 0.3;
  sp.spec.gpu.gpu_mem = 0.25;  // 4 GB quota < 8 GB model
  ASSERT_TRUE(kubeshare_.CreateSharePod(sp).ok());
  cluster_.sim().RunUntil(Seconds(30));
  EXPECT_EQ(host_.failed(), 1u);
  EXPECT_EQ(kubeshare_.sharepods().Get("sp-oom")->status.phase,
            kubeshare::SharePodPhase::kFailed);
}

TEST_F(HostDriverTest, KilledContainerCountsAsFailed) {
  TrainingSpec spec;
  spec.steps = 100000;
  host_.ExpectJob("victim", [spec] {
    return std::make_unique<TrainingJob>(spec);
  });
  k8s::Pod pod;
  pod.meta.name = "victim";
  pod.spec.requests.Set(k8s::kResourceNvidiaGpu, 1);
  ASSERT_TRUE(cluster_.api().pods().Create(pod).ok());
  cluster_.sim().RunUntil(Seconds(10));
  ASSERT_TRUE(cluster_.api().pods().Delete("victim").ok());
  cluster_.sim().RunUntil(Seconds(20));
  EXPECT_EQ(host_.failed(), 1u);
  EXPECT_EQ(host_.completed(), 0u);
}

TEST_F(HostDriverTest, DriverNativeModeCompletesWorkload) {
  WorkloadConfig cfg;
  cfg.total_jobs = 8;
  cfg.mean_interarrival = Seconds(2);
  cfg.job_duration = Seconds(10);
  cfg.seed = 5;
  WorkloadDriver driver(&cluster_, &host_, WorkloadDriver::Mode::kNative,
                        nullptr, cfg);
  driver.Start();
  cluster_.sim().RunUntil(Seconds(600));
  EXPECT_TRUE(driver.AllDone());
  EXPECT_EQ(host_.completed(), 8u);
  EXPECT_GT(driver.JobsPerMinute(), 0.0);
  EXPECT_GT(driver.Makespan().count(), 0);
}

TEST_F(HostDriverTest, DriverKubeShareModeSharesGpus) {
  WorkloadConfig cfg;
  cfg.total_jobs = 8;
  cfg.mean_interarrival = Seconds(1);
  cfg.demand_mean = 0.25;
  cfg.demand_stddev = 0.0;
  cfg.job_duration = Seconds(20);
  cfg.seed = 6;
  WorkloadDriver driver(&cluster_, &host_, WorkloadDriver::Mode::kKubeShare,
                        &kubeshare_, cfg);
  driver.Start();
  cluster_.sim().RunUntil(Seconds(600));
  EXPECT_TRUE(driver.AllDone());
  EXPECT_EQ(host_.completed(), 8u);
  // 8 jobs of demand 0.25 should never need more than the 4 physical GPUs,
  // and sharing must actually have happened (fewer vGPUs than jobs).
  EXPECT_LE(kubeshare_.devmgr().vgpus_created(), 4u);
}

TEST_F(HostDriverTest, UnknownContainerIsIgnored) {
  // A pod with no registered job (e.g. someone else's container) must not
  // disturb the host.
  k8s::Pod pod;
  pod.meta.name = "foreign";
  ASSERT_TRUE(cluster_.api().pods().Create(pod).ok());
  cluster_.sim().RunUntil(Seconds(10));
  EXPECT_EQ(host_.started(), 0u);
  EXPECT_EQ(cluster_.api().pods().Get("foreign")->status.phase,
            k8s::PodPhase::kRunning);
}

}  // namespace
}  // namespace ks::workload
