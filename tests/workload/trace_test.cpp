#include "workload/trace.hpp"

#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ks::workload {
namespace {

TEST(TraceParse, RoundTrips) {
  std::vector<TraceEntry> entries(2);
  entries[0].submit_s = 1.5;
  entries[0].name = "job-a";
  entries[0].kind = "inference";
  entries[0].demand = 0.3;
  entries[0].duration_s = 60;
  entries[0].affinity = "grp";
  entries[1].submit_s = 2.0;
  entries[1].name = "job-b";
  entries[1].kind = "training";
  entries[1].steps = 500;
  entries[1].exclusion = "tenant";

  std::stringstream ss;
  FormatTrace(entries, ss);
  auto parsed = ParseTrace(ss);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_DOUBLE_EQ((*parsed)[0].submit_s, 1.5);
  EXPECT_EQ((*parsed)[0].name, "job-a");
  EXPECT_EQ((*parsed)[0].affinity, "grp");
  EXPECT_EQ((*parsed)[1].kind, "training");
  EXPECT_EQ((*parsed)[1].steps, 500);
  EXPECT_EQ((*parsed)[1].exclusion, "tenant");
}

TEST(TraceParse, SkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "# a comment\n"
      "\n"
      "submit_s,name,kind,demand,duration_s,steps,kernel_ms,gpu_request,"
      "gpu_limit,gpu_mem,model_gb,affinity,anti_affinity,exclusion\n"
      "0,j,inference,0.3,60,0,20,0.3,1.0,0.2,2,,,\n");
  auto parsed = ParseTrace(ss);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), 1u);
  EXPECT_TRUE((*parsed)[0].affinity.empty());
}

TEST(TraceParse, RejectsWrongFieldCount) {
  std::stringstream ss("0,j,inference,0.3\n");
  EXPECT_FALSE(ParseTrace(ss).ok());
}

TEST(TraceParse, RejectsBadNumber) {
  std::stringstream ss("zero,j,inference,0.3,60,0,20,0.3,1.0,0.2,2,,,\n");
  EXPECT_FALSE(ParseTrace(ss).ok());
}

TEST(TraceParse, RejectsUnknownKindAndEmptyName) {
  std::stringstream bad_kind("0,j,sleeping,0.3,60,0,20,0.3,1.0,0.2,2,,,\n");
  EXPECT_FALSE(ParseTrace(bad_kind).ok());
  std::stringstream no_name("0,,inference,0.3,60,0,20,0.3,1.0,0.2,2,,,\n");
  EXPECT_FALSE(ParseTrace(no_name).ok());
}

TEST(TraceParse, HandlesCrLf) {
  std::stringstream ss("0,j,inference,0.3,60,0,20,0.3,1.0,0.2,2,,,\r\n");
  auto parsed = ParseTrace(ss);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(MakeTraceJob, BuildsBothKinds) {
  TraceEntry train;
  train.kind = "training";
  train.steps = 7;
  auto tj = MakeTraceJob(train, 1);
  EXPECT_NE(dynamic_cast<TrainingJob*>(tj.get()), nullptr);

  TraceEntry infer;
  infer.kind = "inference";
  infer.demand = 0.5;
  infer.duration_s = 10;
  infer.kernel_ms = 20;
  auto ij = MakeTraceJob(infer, 1);
  auto* job = dynamic_cast<InferenceJob*>(ij.get());
  ASSERT_NE(job, nullptr);
}

TEST(GenerateTrace, DeterministicAndRoundTrips) {
  WorkloadConfig cfg;
  cfg.total_jobs = 20;
  cfg.seed = 99;
  cfg.demand_mean = 0.3;
  cfg.demand_stddev = 0.1;
  const auto a = GenerateTrace(cfg);
  const auto b = GenerateTrace(cfg);
  ASSERT_EQ(a.size(), 20u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].submit_s, b[i].submit_s);
    EXPECT_DOUBLE_EQ(a[i].demand, b[i].demand);
    EXPECT_GE(a[i].demand, cfg.demand_min);
    EXPECT_LE(a[i].demand, cfg.demand_max);
  }
  EXPECT_DOUBLE_EQ(a[0].submit_s, 0.0);
  // Submissions are strictly ordered in time.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i].submit_s, a[i - 1].submit_s);
  }
  // CSV round trip preserves the generated workload.
  std::stringstream ss;
  FormatTrace(a, ss);
  auto parsed = ParseTrace(ss);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR((*parsed)[i].demand, a[i].demand, 1e-6);
    EXPECT_NEAR((*parsed)[i].submit_s, a[i].submit_s, 1e-6);
  }
}

class TraceReplayTest : public ::testing::Test {
 protected:
  static k8s::ClusterConfig Config() {
    k8s::ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.gpus_per_node = 2;
    return cfg;
  }

  TraceReplayTest()
      : cluster_(Config()), kubeshare_(&cluster_), host_(&cluster_) {
    EXPECT_TRUE(cluster_.Start().ok());
    EXPECT_TRUE(kubeshare_.Start().ok());
  }

  k8s::Cluster cluster_;
  kubeshare::KubeShare kubeshare_;
  WorkloadHost host_;
};

TEST_F(TraceReplayTest, ReplaysKubeShareTraceToCompletion) {
  std::vector<TraceEntry> entries(3);
  entries[0].name = "t0";
  entries[0].kind = "training";
  entries[0].steps = 200;
  entries[0].kernel_ms = 10;
  entries[0].gpu_request = 0.4;
  entries[1].name = "t1";
  entries[1].submit_s = 2;
  entries[1].kind = "inference";
  entries[1].demand = 0.3;
  entries[1].duration_s = 20;
  entries[1].gpu_request = 0.3;
  entries[2].name = "t2";
  entries[2].submit_s = 4;
  entries[2].kind = "inference";
  entries[2].demand = 0.2;
  entries[2].duration_s = 20;
  entries[2].gpu_request = 0.2;
  entries[2].anti_affinity = "spread";

  TraceReplayer replayer(&cluster_, &host_, TraceReplayer::Mode::kKubeShare,
                         &kubeshare_);
  ASSERT_TRUE(replayer.Load(entries).ok());
  cluster_.sim().RunUntil(Minutes(5));
  EXPECT_TRUE(replayer.AllDone());
  EXPECT_EQ(host_.completed(), 3u);
}

TEST_F(TraceReplayTest, LocalityLabelsAreApplied) {
  std::vector<TraceEntry> entries(2);
  for (int i = 0; i < 2; ++i) {
    entries[i].name = "sp" + std::to_string(i);
    entries[i].kind = "inference";
    entries[i].demand = 0.2;
    entries[i].duration_s = 30;
    entries[i].gpu_request = 0.2;
    entries[i].anti_affinity = "apart";
  }
  TraceReplayer replayer(&cluster_, &host_, TraceReplayer::Mode::kKubeShare,
                         &kubeshare_);
  ASSERT_TRUE(replayer.Load(entries).ok());
  cluster_.sim().RunUntil(Seconds(20));
  EXPECT_NE(kubeshare_.sharepods().Get("sp0")->spec.gpu_id,
            kubeshare_.sharepods().Get("sp1")->spec.gpu_id);
}

TEST_F(TraceReplayTest, NativeModeUsesWholeGpus) {
  std::vector<TraceEntry> entries(1);
  entries[0].name = "n0";
  entries[0].kind = "training";
  entries[0].steps = 100;
  TraceReplayer replayer(&cluster_, &host_, TraceReplayer::Mode::kNative,
                         nullptr);
  ASSERT_TRUE(replayer.Load(entries).ok());
  cluster_.sim().RunUntil(Minutes(2));
  EXPECT_EQ(host_.completed(), 1u);
  auto pod = cluster_.api().pods().Get("n0");
  EXPECT_EQ(pod->spec.requests.Get(k8s::kResourceNvidiaGpu), 1);
}

TEST_F(TraceReplayTest, DuplicateNamesRejected) {
  std::vector<TraceEntry> entries(2);
  entries[0].name = "dup";
  entries[1].name = "dup";
  TraceReplayer replayer(&cluster_, &host_, TraceReplayer::Mode::kKubeShare,
                         &kubeshare_);
  EXPECT_FALSE(replayer.Load(entries).ok());
}

}  // namespace
}  // namespace ks::workload
