#include "workload/job.hpp"

#include <gtest/gtest.h>

#include "cuda/context.hpp"
#include "gpu/device.hpp"

namespace ks::workload {
namespace {

class JobTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  gpu::GpuDevice dev_{&sim_, GpuUuid("GPU-0")};
  cuda::CudaContext ctx_{&dev_, ContainerId("job")};
};

TEST_F(JobTest, TrainingJobRunsAllSteps) {
  TrainingSpec spec;
  spec.steps = 20;
  spec.step_kernel = Millis(10);
  TrainingJob job(spec);
  bool done = false, ok = false;
  job.Start(&ctx_, &sim_, [&](bool success) {
    done = true;
    ok = success;
  });
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_EQ(job.completed_steps(), 20);
  // 20 x 10ms back to back on an exclusive device.
  EXPECT_NEAR(ToMillis(Duration(sim_.Now())), 200.0, 1.0);
}

TEST_F(JobTest, TrainingJobFailsOnOom) {
  TrainingSpec spec;
  spec.model_bytes = dev_.spec().memory_bytes + 1;
  TrainingJob job(spec);
  bool ok = true;
  job.Start(&ctx_, &sim_, [&](bool success) { ok = success; });
  EXPECT_FALSE(ok);
}

TEST_F(JobTest, TrainingJobZeroStepsSucceedsImmediately) {
  TrainingSpec spec;
  spec.steps = 0;
  TrainingJob job(spec);
  bool done = false;
  job.Start(&ctx_, &sim_, [&](bool success) { done = success; });
  EXPECT_TRUE(done);
}

TEST_F(JobTest, StoppedTrainingJobNeverCompletes) {
  TrainingSpec spec;
  spec.steps = 100;
  TrainingJob job(spec);
  bool done = false;
  job.Start(&ctx_, &sim_, [&](bool) { done = true; });
  sim_.RunUntil(Millis(105));
  job.Stop();
  sim_.Run();
  EXPECT_FALSE(done);
  EXPECT_LT(job.completed_steps(), 100);
}

TEST_F(JobTest, PhasedTrainingAlternatesComputeAndIo) {
  PhasedTrainingSpec spec;
  spec.epochs = 3;
  spec.steps_per_epoch = 50;  // 0.5 s compute
  spec.step_kernel = Millis(10);
  spec.io_per_epoch = Millis(500);
  EXPECT_NEAR(spec.duty_cycle(), 0.5, 1e-9);
  PhasedTrainingJob job(spec);
  bool ok = false;
  job.Start(&ctx_, &sim_, [&](bool success) { ok = success; });
  sim_.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(job.completed_epochs(), 3);
  // 3 x 0.5 s compute + 2 io gaps (the last epoch ends the job).
  EXPECT_NEAR(ToSeconds(Duration(sim_.Now())), 2.5, 0.05);
  dev_.utilization().Flush(sim_.Now());
  EXPECT_NEAR(ToSeconds(dev_.utilization().TotalBusy()), 1.5, 0.05);
}

TEST_F(JobTest, PhasedTrainingStopCancelsIoTimer) {
  PhasedTrainingSpec spec;
  spec.epochs = 100;
  spec.steps_per_epoch = 10;
  spec.io_per_epoch = Seconds(5);
  PhasedTrainingJob job(spec);
  bool done = false;
  job.Start(&ctx_, &sim_, [&](bool) { done = true; });
  sim_.RunUntil(Millis(150));  // inside the first io phase
  EXPECT_EQ(job.completed_epochs(), 1);
  job.Stop();
  sim_.Run();
  EXPECT_FALSE(done);
  EXPECT_EQ(job.completed_epochs(), 1);
}

TEST_F(JobTest, PhasedTrainingFailsOnOom) {
  PhasedTrainingSpec spec;
  spec.model_bytes = dev_.spec().memory_bytes + 1;
  PhasedTrainingJob job(spec);
  bool ok = true;
  job.Start(&ctx_, &sim_, [&](bool success) { ok = success; });
  EXPECT_FALSE(ok);
}

TEST_F(JobTest, InferenceJobServesAllRequests) {
  InferenceSpec spec = InferenceSpec::ForDemand(0.5, 50, Millis(20));
  spec.seed = 7;
  InferenceJob job(spec);
  bool done = false, ok = false;
  job.Start(&ctx_, &sim_, [&](bool success) {
    done = true;
    ok = success;
  });
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_EQ(job.served_requests(), 50);
}

TEST_F(JobTest, InferenceDemandMatchesUtilization) {
  // 30% demand, long run: device busy fraction should approach 0.30.
  InferenceSpec spec = InferenceSpec::ForDemand(0.3, 600, Millis(20));
  spec.seed = 11;
  EXPECT_NEAR(spec.demand(), 0.3, 1e-9);
  InferenceJob job(spec);
  job.Start(&ctx_, &sim_, nullptr);
  sim_.Run();
  dev_.utilization().Flush(sim_.Now());
  const double util = static_cast<double>(dev_.utilization().TotalBusy().count()) /
                      static_cast<double>(sim_.Now().count());
  EXPECT_NEAR(util, 0.3, 0.05);
}

TEST_F(JobTest, InferenceForDemandRoundTrips) {
  const InferenceSpec s = InferenceSpec::ForDemand(0.42, 10, Millis(10));
  EXPECT_NEAR(s.demand(), 0.42, 1e-9);
}

TEST_F(JobTest, InferenceStopCancelsArrivals) {
  InferenceSpec spec = InferenceSpec::ForDemand(0.3, 1000, Millis(20));
  InferenceJob job(spec);
  bool done = false;
  job.Start(&ctx_, &sim_, [&](bool) { done = true; });
  sim_.RunUntil(Seconds(1));
  const int arrived = job.arrived_requests();
  EXPECT_GT(arrived, 0);
  job.Stop();
  sim_.Run();
  EXPECT_FALSE(done);
  EXPECT_EQ(job.arrived_requests(), arrived);
}

TEST_F(JobTest, InferenceLatenciesTrackService) {
  InferenceSpec spec = InferenceSpec::ForDemand(0.2, 40, Millis(20));
  spec.seed = 3;
  InferenceJob job(spec);
  job.Start(&ctx_, &sim_, nullptr);
  sim_.Run();
  ASSERT_EQ(job.request_latencies().size(), 40u);
  for (const Duration d : job.request_latencies()) {
    // Unthrottled, exclusive GPU at 20% load: latency = kernel time plus
    // occasional queueing behind a colliding request.
    EXPECT_GE(d, Millis(20));
    EXPECT_LT(d, Millis(200));
  }
}

TEST_F(JobTest, InferenceJobFailsOnOom) {
  InferenceSpec spec = InferenceSpec::ForDemand(0.3, 10, Millis(20));
  spec.model_bytes = dev_.spec().memory_bytes + 1;
  InferenceJob job(spec);
  bool ok = true;
  job.Start(&ctx_, &sim_, [&](bool success) { ok = success; });
  EXPECT_FALSE(ok);
}

}  // namespace
}  // namespace ks::workload
