#include "gpu/utilization.hpp"

#include <gtest/gtest.h>

namespace ks::gpu {
namespace {

TEST(UtilizationTracker, EmptyIsIdle) {
  UtilizationTracker u;
  EXPECT_DOUBLE_EQ(u.BucketUtilization(0), 0.0);
  EXPECT_EQ(u.TotalBusy(), Duration{0});
  EXPECT_FALSE(u.active());
}

TEST(UtilizationTracker, FullBucket) {
  UtilizationTracker u(Seconds(1));
  u.Start(kTimeZero);
  u.Stop(Seconds(1));
  EXPECT_DOUBLE_EQ(u.BucketUtilization(0), 1.0);
  EXPECT_DOUBLE_EQ(u.BucketUtilization(1), 0.0);
}

TEST(UtilizationTracker, PartialBucket) {
  UtilizationTracker u(Seconds(1));
  u.Start(Millis(250));
  u.Stop(Millis(750));
  EXPECT_NEAR(u.BucketUtilization(0), 0.5, 1e-9);
}

TEST(UtilizationTracker, IntervalSpanningBuckets) {
  UtilizationTracker u(Seconds(1));
  u.Start(Millis(500));
  u.Stop(Millis(2500));
  EXPECT_NEAR(u.BucketUtilization(0), 0.5, 1e-9);
  EXPECT_NEAR(u.BucketUtilization(1), 1.0, 1e-9);
  EXPECT_NEAR(u.BucketUtilization(2), 0.5, 1e-9);
  EXPECT_EQ(u.TotalBusy(), Seconds(2));
}

TEST(UtilizationTracker, FlushAccountsOpenInterval) {
  UtilizationTracker u(Seconds(1));
  u.Start(kTimeZero);
  u.Flush(Millis(600));
  EXPECT_NEAR(u.BucketUtilization(0), 0.6, 1e-9);
  EXPECT_TRUE(u.active());
  u.Stop(Seconds(1));
  EXPECT_NEAR(u.BucketUtilization(0), 1.0, 1e-9);
}

TEST(UtilizationTracker, StartWhileActiveIsNoop) {
  UtilizationTracker u(Seconds(1));
  u.Start(kTimeZero);
  u.Start(Millis(500));
  u.Stop(Seconds(1));
  EXPECT_DOUBLE_EQ(u.BucketUtilization(0), 1.0);
}

TEST(UtilizationTracker, RangeUtilization) {
  UtilizationTracker u(Seconds(1));
  u.Start(kTimeZero);
  u.Stop(Seconds(1));
  u.Start(Seconds(3));
  u.Stop(Seconds(4));
  EXPECT_NEAR(u.RangeUtilization(kTimeZero, Seconds(4)), 0.5, 1e-9);
  EXPECT_NEAR(u.RangeUtilization(Seconds(2), Seconds(3)), 0.0, 1e-9);
  EXPECT_NEAR(u.RangeUtilization(Seconds(3), Seconds(4)), 1.0, 1e-9);
}

TEST(UtilizationTracker, RangePastRecordedDataIsZero) {
  UtilizationTracker u(Seconds(1));
  u.Start(kTimeZero);
  u.Stop(Seconds(1));
  EXPECT_NEAR(u.RangeUtilization(Seconds(10), Seconds(20)), 0.0, 1e-9);
}

}  // namespace
}  // namespace ks::gpu
