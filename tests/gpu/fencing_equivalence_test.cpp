// Differential tests for isolation enforcement under adversarial tenants:
// seeded full-cluster KubeShare runs with the chaos injector turning a
// running tenant hostile (token overstay, revocation-ignoring kernel
// floods, memory-limit probing, metrics spoofing) are executed twice —
// fused GpuDevice vs GpuDeviceReference — and must produce byte-equal
// kernel traces, token traces, and isolation-enforcement counters. The
// fencing gate, quota clamp-down and eviction ladder are part of the
// observable surface: an attacker must not be able to change what the
// system does by racing the engine, and the enforcement response itself
// must be deterministic.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "gpu/device.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/isolation.hpp"
#include "workload/generator.hpp"
#include "workload/host.hpp"

namespace ks::gpu {
namespace {

struct FenceTraces {
  std::map<std::string, std::vector<std::string>> kernels;
  std::map<std::string, std::vector<std::string>> tokens;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::uint64_t total_events = 0;
  // Isolation-enforcement surface (summed over nodes / devices).
  metrics::IsolationMetrics isolation;
  std::uint64_t attack_ticks = 0;
  std::uint64_t tenants_turned = 0;
};

FenceTraces RunHostileCluster(GpuExecMode exec, std::uint64_t seed,
                              const std::vector<chaos::FaultKind>& attacks,
                              bool enforcement) {
  auto out = std::make_unique<FenceTraces>();
  {
    k8s::ClusterConfig ccfg;
    ccfg.nodes = 3;
    ccfg.gpus_per_node = 2;
    ccfg.exec = exec;
    ccfg.backend.enforcement.enabled = enforcement;
    k8s::Cluster cluster(ccfg);
    FenceTraces* sink = out.get();
    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      k8s::Cluster::NodeHandle& node = cluster.node(n);
      for (auto& dev : node.gpus) {
        const std::string uuid = dev->uuid().value();
        sink->kernels[uuid];
        dev->SetKernelTraceFn([sink, uuid](const KernelTraceEvent& e) {
          sink->kernels[uuid].push_back(
              std::to_string(e.id) + " " + e.owner.value() + " " + e.name +
              " " + std::to_string(e.start.count()) + " " +
              std::to_string(e.finish.count()));
        });
      }
      const std::string node_name = node.name;
      sink->tokens[node_name];
      node.token_backend->SetGrantTraceFn(
          [sink, node_name](const char* what, const ContainerId& container,
                            Time when) {
            sink->tokens[node_name].push_back(
                std::string(what) + " " + container.value() + " " +
                std::to_string(when.count()));
          });
    }

    kubeshare::KubeShare kubeshare(&cluster);
    workload::WorkloadHost host(&cluster);
    workload::WorkloadConfig wcfg;
    wcfg.total_jobs = 12;
    wcfg.mean_interarrival = Seconds(1.0);
    wcfg.demand_mean = 0.4;
    wcfg.demand_stddev = 0.15;
    wcfg.job_duration = Seconds(6);
    wcfg.seed = seed;
    wcfg.job_kind = workload::WorkloadConfig::JobKind::kInference;
    workload::WorkloadDriver driver(
        &cluster, &host, workload::WorkloadDriver::Mode::kKubeShare,
        &kubeshare, wcfg);

    chaos::FaultPlan plan;
    Time at = Seconds(6);
    for (const chaos::FaultKind kind : attacks) {
      chaos::Fault f;
      f.at = at;
      f.kind = kind;
      f.duration = Seconds(8);  // hostile window; "" pod = first running job
      plan.faults.push_back(f);
      at = at + Millis(500);  // stagger so multiple attacks compose
    }
    chaos::FaultInjector injector(&cluster, plan);
    injector.SetKubeShare(&kubeshare);
    injector.SetWorkloadHost(&host);

    EXPECT_TRUE(cluster.Start().ok());
    EXPECT_TRUE(kubeshare.Start().ok());
    EXPECT_TRUE(injector.Arm().ok());
    driver.Start();
    cluster.sim().RunUntil(Seconds(35));

    sink->completed = host.completed();
    sink->failed = host.failed();
    sink->total_events = cluster.sim().lifetime_events();
    sink->isolation = metrics::CollectIsolationMetrics(cluster, &kubeshare);
    const chaos::ChaosStats& stats = injector.stats();
    sink->tenants_turned = stats.tenant_overstays + stats.tenant_floods +
                           stats.tenant_probes + stats.tenant_spoofs;
    for (const std::string& job : host.RunningKubeShareJobs()) {
      if (const vgpu::FrontendHook* hook = host.RunningHook(job)) {
        sink->attack_ticks += hook->attack_ticks();
      }
    }
  }
  return std::move(*out);
}

void ExpectLinesEqual(const std::vector<std::string>& fused,
                      const std::vector<std::string>& reference,
                      const std::string& what) {
  const std::size_t n = std::min(fused.size(), reference.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (fused[i] == reference[i]) continue;
    std::string context;
    for (std::size_t j = i >= 3 ? i - 3 : 0; j < std::min(n, i + 3); ++j) {
      context += "\n  [" + std::to_string(j) + "] fused:     " + fused[j] +
                 "\n  [" + std::to_string(j) + "] reference: " + reference[j];
    }
    ADD_FAILURE() << what << " diverged at line " << i << " of "
                  << fused.size() << "/" << reference.size() << ":" << context;
    return;
  }
  if (fused.size() != reference.size()) {
    const auto& longer = fused.size() > reference.size() ? fused : reference;
    ADD_FAILURE() << what << " lengths differ (fused " << fused.size()
                  << ", reference " << reference.size() << "); first extra: "
                  << longer[n];
  }
}

/// Sorts runs of same-timestamp lines. Clamp-down mid-run shifts expiry
/// timing enough that one daemon can see an expiry of one container and a
/// release of another in the same microsecond; the two engines break that
/// FIFO tie differently while agreeing on every downstream grant decision
/// and kernel trace — the transitions commute. Per-container order is
/// unaffected: a container's same-time pairs sort identically both sides.
std::vector<std::string> CanonicalizeTokenTrace(
    std::vector<std::string> lines) {
  auto time_of = [](const std::string& line) {
    const std::size_t pos = line.rfind(' ');
    return line.substr(pos == std::string::npos ? 0 : pos + 1);
  };
  std::size_t start = 0;
  while (start < lines.size()) {
    std::size_t end = start + 1;
    while (end < lines.size() &&
           time_of(lines[end]) == time_of(lines[start])) {
      ++end;
    }
    std::sort(lines.begin() + start, lines.begin() + end);
    start = end;
  }
  return lines;
}

void ExpectHostileTracesEqual(const FenceTraces& fused,
                              const FenceTraces& reference,
                              const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(fused.completed, reference.completed);
  EXPECT_EQ(fused.failed, reference.failed);
  EXPECT_EQ(fused.tenants_turned, reference.tenants_turned);
  EXPECT_EQ(fused.attack_ticks, reference.attack_ticks);

  ASSERT_EQ(fused.kernels.size(), reference.kernels.size());
  for (const auto& [uuid, lines] : fused.kernels) {
    auto it = reference.kernels.find(uuid);
    ASSERT_NE(it, reference.kernels.end()) << uuid;
    ExpectLinesEqual(lines, it->second, "kernel trace on " + uuid);
  }
  ASSERT_EQ(fused.tokens.size(), reference.tokens.size());
  for (const auto& [node, lines] : fused.tokens) {
    auto it = reference.tokens.find(node);
    ASSERT_NE(it, reference.tokens.end()) << node;
    ExpectLinesEqual(CanonicalizeTokenTrace(lines),
                     CanonicalizeTokenTrace(it->second),
                     "token trace on " + node);
  }

  // The enforcement response is part of the differential surface: both
  // engines must attribute the same violations, clamp the same tenants,
  // reject the same submissions.
  const metrics::IsolationMetrics& a = fused.isolation;
  const metrics::IsolationMetrics& b = reference.isolation;
  EXPECT_EQ(a.violations_total, b.violations_total);
  EXPECT_EQ(a.clampdowns_total, b.clampdowns_total);
  EXPECT_EQ(a.evictions_total, b.evictions_total);
  EXPECT_EQ(a.overstays, b.overstays);
  EXPECT_EQ(a.fenced_submits, b.fenced_submits);
  EXPECT_EQ(a.memory_violations, b.memory_violations);
  EXPECT_EQ(a.metrics_spoofs, b.metrics_spoofs);
  EXPECT_EQ(a.fenced_kernel_rejections, b.fenced_kernel_rejections);
  EXPECT_EQ(a.memory_quota_rejections, b.memory_quota_rejections);
  EXPECT_EQ(a.tenants_evicted, b.tenants_evicted);
}

FenceTraces CompareHostileModes(std::uint64_t seed,
                                const std::vector<chaos::FaultKind>& attacks,
                                const std::string& label) {
  const FenceTraces fused =
      RunHostileCluster(GpuExecMode::kFused, seed, attacks, true);
  const FenceTraces reference =
      RunHostileCluster(GpuExecMode::kReference, seed, attacks, true);
  ExpectHostileTracesEqual(fused, reference, label);
  EXPECT_LE(fused.total_events, reference.total_events) << label;
  // The attack must actually have run — a plan that fizzled (no running
  // job to turn hostile) would make the equality above vacuous.
  EXPECT_GT(fused.tenants_turned, 0u) << label;
  return fused;
}

TEST(FencingEquivalence, OverstayTracesByteEqual) {
  for (std::uint64_t seed : {51u, 52u}) {
    const FenceTraces fused = CompareHostileModes(
        seed, {chaos::FaultKind::kTenantTokenOverstay},
        "overstay seed " + std::to_string(seed));
    // The fence deadline must have reclaimed the overstayed grant.
    EXPECT_GT(fused.isolation.overstays, 0u);
  }
}

TEST(FencingEquivalence, KernelFloodTracesByteEqual) {
  for (std::uint64_t seed : {53u, 54u}) {
    CompareHostileModes(seed, {chaos::FaultKind::kTenantKernelFlood},
                        "flood seed " + std::to_string(seed));
  }
}

TEST(FencingEquivalence, MemoryProbeAndSpoofTracesByteEqual) {
  for (std::uint64_t seed : {55u, 56u}) {
    CompareHostileModes(seed,
                        {chaos::FaultKind::kTenantMemoryProbe,
                         chaos::FaultKind::kTenantMetricsSpoof},
                        "probe+spoof seed " + std::to_string(seed));
  }
}

TEST(FencingEquivalence, ComposedAttackTracesByteEqual) {
  const FenceTraces fused = CompareHostileModes(
      57u,
      {chaos::FaultKind::kTenantTokenOverstay,
       chaos::FaultKind::kTenantKernelFlood,
       chaos::FaultKind::kTenantMemoryProbe,
       chaos::FaultKind::kTenantMetricsSpoof},
      "composed attack");
  EXPECT_GT(fused.isolation.violations_total, 0u);
}

TEST(FencingEquivalence, RepeatRunsAreByteEqual) {
  // Determinism within one engine: the same hostile run twice must be
  // byte-equal — the adversarial schedule may not depend on anything but
  // (seed, plan).
  const std::vector<chaos::FaultKind> attacks{
      chaos::FaultKind::kTenantTokenOverstay,
      chaos::FaultKind::kTenantKernelFlood};
  const FenceTraces first =
      RunHostileCluster(GpuExecMode::kFused, 58u, attacks, true);
  const FenceTraces second =
      RunHostileCluster(GpuExecMode::kFused, 58u, attacks, true);
  ExpectHostileTracesEqual(first, second, "repeat fused run");
  EXPECT_EQ(first.total_events, second.total_events);
}

}  // namespace
}  // namespace ks::gpu
