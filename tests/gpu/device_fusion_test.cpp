// Fused-kernel-stream behavior of the virtual-time device engine: event
// economy, teardown mid-fusion (FreeAll / DetachOwner with callbacks
// dropped), and the event-id exhaustion latch under a long-horizon fused
// soak. Trace-level equivalence against GpuDeviceReference lives in
// device_equivalence_test.cpp.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "gpu/device.hpp"
#include "gpu/device_reference.hpp"
#include "sim/simulation.hpp"

namespace ks::gpu {
namespace {

KernelDesc Step(Duration d) {
  KernelDesc k;
  k.nominal_duration = d;
  k.name = "step";
  return k;
}

TEST(DeviceFusion, IdleRepeatRetiresOnOneEngineEvent) {
  sim::Simulation sim;
  GpuDevice dev(&sim, GpuUuid("GPU-f0"));
  int units = 0;
  Time last{0};
  const std::uint64_t before = sim.lifetime_events();
  dev.SubmitRepeat(ContainerId("c1"), Step(Millis(10)), 50,
                   [&](Time finish) {
                     ++units;
                     last = finish;
                   });
  sim.Run();
  EXPECT_EQ(units, 50);
  EXPECT_EQ(last, Millis(500));
  EXPECT_EQ(dev.completed_kernels(), 50u);
  // The whole run rode one armed event.
  EXPECT_EQ(sim.lifetime_events() - before, 1u);
  EXPECT_EQ(dev.utilization().TotalBusy(), Millis(500));
}

TEST(DeviceFusion, ReferenceRetiresSameUnitsWithOneEventEach) {
  sim::Simulation sim;
  GpuDeviceReference dev(&sim, GpuUuid("GPU-r0"));
  int units = 0;
  Time last{0};
  const std::uint64_t before = sim.lifetime_events();
  dev.SubmitRepeat(ContainerId("c1"), Step(Millis(10)), 50,
                   [&](Time finish) {
                     ++units;
                     last = finish;
                   });
  sim.Run();
  EXPECT_EQ(units, 50);
  EXPECT_EQ(last, Millis(500));
  EXPECT_EQ(dev.completed_kernels(), 50u);
  EXPECT_EQ(sim.lifetime_events() - before, 50u);
  EXPECT_EQ(dev.utilization().TotalBusy(), Millis(500));
}

TEST(DeviceFusion, ForeignSubmitSplitsWithExactBackTraces) {
  sim::Simulation sim;
  GpuDevice dev(&sim, GpuUuid("GPU-f1"));
  std::vector<KernelTraceEvent> trace;
  dev.SetKernelTraceFn([&](const KernelTraceEvent& e) { trace.push_back(e); });
  std::vector<Time> finishes;
  dev.SubmitRepeat(ContainerId("c1"), Step(Millis(10)), 10,
                   [&](Time finish) { finishes.push_back(finish); });
  bool other_done = false;
  // Lands mid-unit-4: three units are due and must materialize with their
  // original boundary times before the newcomer shares the device.
  sim.ScheduleAt(Millis(35), [&] {
    dev.Submit(ContainerId("c2"), Step(Millis(10)),
               [&] { other_done = true; });
  });
  sim.Run();
  ASSERT_EQ(finishes.size(), 10u);
  EXPECT_TRUE(other_done);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(finishes[static_cast<std::size_t>(i)], Millis(10 * (i + 1)));
    EXPECT_EQ(trace[static_cast<std::size_t>(i)].start, Millis(10 * i));
  }
  // Units 4..10 shared the device with c2 for a while, so they finish later
  // than their unfused boundaries; the total still accounts every unit.
  EXPECT_GT(finishes[3], Millis(40));
  EXPECT_EQ(dev.completed_kernels(), 11u);
}

// Satellite regression: container teardown mid-fusion. CudaContext's
// destructor order is DetachOwner then FreeAll; due units must still be
// counted and traced, dropped callbacks must never fire, and utilization
// must not double-count the dropped tail — busy time ends when the
// non-preemptible in-flight unit retires, not at the fused group's original
// end.
TEST(DeviceFusion, TeardownMidFusionDropsTailWithoutDoubleCounting) {
  sim::Simulation sim;
  GpuDevice dev(&sim, GpuUuid("GPU-f2"));
  const ContainerId c1("c1");
  std::vector<KernelTraceEvent> trace;
  dev.SetKernelTraceFn([&](const KernelTraceEvent& e) { trace.push_back(e); });
  ASSERT_TRUE(dev.Allocate(c1, 1024).ok());
  int delivered = 0;
  dev.SubmitRepeat(c1, Step(Millis(10)), 20, [&](Time) { ++delivered; });

  sim.ScheduleAt(Millis(45), [&] {
    dev.DetachOwner(c1);
    dev.FreeAll(c1);
  });
  sim.Run();

  // Four units were due at detach; the fifth was in flight and retired at
  // its normal boundary; units 6..20 never ran.
  EXPECT_EQ(delivered, 0);  // detached before any delivery
  EXPECT_EQ(dev.completed_kernels(), 5u);
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace[4].start, Millis(40));
  EXPECT_EQ(trace[4].finish, Millis(50));
  EXPECT_EQ(dev.used_memory(), 0u);
  EXPECT_FALSE(dev.busy());
  // Utilization covers exactly the five executed units — not the 200 ms
  // the fused group originally spanned.
  EXPECT_EQ(dev.utilization().TotalBusy(), Millis(50));
}

TEST(DeviceFusion, CancelRepeatTailDeliversDueUnitsFirst) {
  sim::Simulation sim;
  GpuDevice dev(&sim, GpuUuid("GPU-f3"));
  std::vector<Time> finishes;
  const RepeatId id =
      dev.SubmitRepeat(ContainerId("c1"), Step(Millis(10)), 10,
                       [&](Time finish) { finishes.push_back(finish); });
  std::size_t cancelled = 0;
  sim.ScheduleAt(Millis(35), [&] { cancelled = dev.CancelRepeatTail(id); });
  sim.Run();
  // 3 due (delivered during the cancel), 1 in flight (retires), 6 cancelled.
  EXPECT_EQ(cancelled, 6u);
  ASSERT_EQ(finishes.size(), 4u);
  EXPECT_EQ(finishes[2], Millis(30));
  EXPECT_EQ(finishes[3], Millis(40));
  EXPECT_EQ(dev.completed_kernels(), 4u);
}

TEST(DeviceFusion, RepeatUnitsFinishedIsAnalyticMidGroup) {
  sim::Simulation sim;
  GpuDevice dev(&sim, GpuUuid("GPU-f4"));
  const RepeatId id = dev.SubmitRepeat(ContainerId("c1"), Step(Millis(10)),
                                       10, [](Time) {});
  std::size_t at_35 = 0;
  sim.ScheduleAt(Millis(35), [&] { at_35 = dev.RepeatUnitsFinished(id); });
  sim.RunUntil(Millis(35));
  EXPECT_EQ(at_35, 3u);
  EXPECT_EQ(dev.completed_kernels(), 3u);  // analytic, no event fired yet
  sim.Run();
  EXPECT_EQ(dev.completed_kernels(), 10u);
}

// Satellite soak: drive the fused path against the 2^40 lifetime-event-id
// cap. A long steady stream of fused batches consumes one id per batch;
// when the id space runs out the engine must latch (CapacityStatus turns
// kResourceExhausted, schedules return kInvalidEvent) and the device must
// stall — never abort or corrupt its state.
TEST(DeviceFusionSoak, EventIdExhaustionLatchesInsteadOfAborting) {
  sim::Simulation sim;
  GpuDevice dev(&sim, GpuUuid("GPU-soak"));
  const ContainerId c1("c1");

  // Self-resubmitting fused stream: each batch of 100 x 1 ms units rides
  // one event, then its last delivery launches the next batch.
  std::uint64_t units = 0;
  std::function<void()> launch = [&] {
    dev.SubmitRepeat(c1, Step(Millis(1)), 100, [&](Time) {
      ++units;
      if (units % 100 == 0) launch();
    });
  };
  launch();
  sim.RunUntil(Seconds(60));  // long horizon: 600 batches, 60000 units
  EXPECT_GE(units, 59900u);
  EXPECT_TRUE(sim.CapacityStatus().ok());

  // Pretend the preceding months of soak consumed nearly the whole id
  // space: a handful of ids remain, then the engine latches.
  sim.InjectLifetimeEventCountForTest((1ull << 40) - 4);
  sim.Run();

  EXPECT_TRUE(sim.exhausted());
  EXPECT_FALSE(sim.CapacityStatus().ok());
  // The device is stalled, not corrupted: its resubmit loop stopped when
  // the engine refused the next event, and introspection still works.
  EXPECT_NO_FATAL_FAILURE({
    (void)dev.completed_kernels();
    (void)dev.active_kernels();
    (void)dev.busy();
  });
  // A post-latch submit is accepted into device state but can never arm an
  // event — the documented stall — and must not crash.
  dev.Submit(c1, Step(Millis(1)), [] {});
  sim.Run();
  EXPECT_TRUE(dev.busy());
}

}  // namespace
}  // namespace ks::gpu
