// Differential tests for the virtual-time fused device engine: seeded
// full-cluster KubeShare runs executed twice — once on the fused GpuDevice,
// once on the per-kernel GpuDeviceReference oracle — must produce byte-equal
// kernel start/finish traces, NVML utilization series, and token
// grant/violation traces, including across kTokenDaemonRestart and
// kDevMgrCrash chaos faults. The fused engine is only allowed to change how
// many engine events the run costs, never what the run observably does.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "gpu/device.hpp"
#include "gpu/nvml.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "workload/generator.hpp"
#include "workload/host.hpp"

namespace ks::gpu {
namespace {

struct RunTraces {
  /// Per-device kernel lifetimes, one formatted line per retirement, in
  /// retirement order.
  std::map<std::string, std::vector<std::string>> kernels;
  /// Per-device NVML samples (timestamp + bit-exact utilization values).
  std::map<std::string, std::vector<NvmlSample>> nvml;
  /// Per-node token grant/release/expire/restart lines. Keyed by node (like
  /// kernels are keyed by device) because only the order *within* one
  /// daemon is observable: independent nodes transitioning in the same
  /// microsecond interleave in engine-FIFO order, which legitimately
  /// differs between device engines that schedule different event counts.
  std::map<std::string, std::vector<std::string>> tokens;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::uint64_t total_events = 0;
};

enum class FaultChoice { kNone, kTokenDaemonRestart, kDevMgrCrash };

RunTraces RunCluster(GpuExecMode exec, std::uint64_t seed,
                     workload::WorkloadConfig::JobKind kind,
                     FaultChoice fault) {
  // Heap-owned collector: trace callbacks installed on cluster components
  // keep firing during cluster teardown (DetachOwner materializes the due
  // units of live fused groups), so the collector must outlive the scope.
  auto out = std::make_unique<RunTraces>();
  {
    k8s::ClusterConfig ccfg;
    ccfg.nodes = 3;
    ccfg.gpus_per_node = 2;
    ccfg.exec = exec;
    k8s::Cluster cluster(ccfg);
    RunTraces* sink = out.get();
    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      k8s::Cluster::NodeHandle& node = cluster.node(n);
      for (auto& dev : node.gpus) {
        const std::string uuid = dev->uuid().value();
        sink->kernels[uuid];
        dev->SetKernelTraceFn([sink, uuid](const KernelTraceEvent& e) {
          sink->kernels[uuid].push_back(
              std::to_string(e.id) + " " + e.owner.value() + " " + e.name +
              " " + std::to_string(e.start.count()) + " " +
              std::to_string(e.finish.count()));
        });
      }
      const std::string node_name = node.name;
      sink->tokens[node_name];
      node.token_backend->SetGrantTraceFn(
          [sink, node_name](const char* what, const ContainerId& container,
                            Time when) {
            sink->tokens[node_name].push_back(
                std::string(what) + " " + container.value() + " " +
                std::to_string(when.count()));
          });
    }

    kubeshare::KubeShare kubeshare(&cluster);
    workload::WorkloadHost host(&cluster);
    workload::WorkloadConfig wcfg;
    wcfg.total_jobs = 12;
    wcfg.mean_interarrival = Seconds(1.0);
    wcfg.demand_mean = 0.4;
    wcfg.demand_stddev = 0.15;
    wcfg.job_duration = Seconds(6);
    wcfg.seed = seed;
    wcfg.job_kind = kind;
    workload::WorkloadDriver driver(
        &cluster, &host, workload::WorkloadDriver::Mode::kKubeShare,
        &kubeshare, wcfg);

    chaos::FaultPlan plan;
    if (fault != FaultChoice::kNone) {
      chaos::Fault f;
      f.at = Seconds(8);
      if (fault == FaultChoice::kTokenDaemonRestart) {
        f.kind = chaos::FaultKind::kTokenDaemonRestart;
        f.node = "node-0";
      } else {
        f.kind = chaos::FaultKind::kDevMgrCrash;
        f.duration = Seconds(2);
      }
      plan.faults.push_back(f);
    }
    chaos::FaultInjector injector(&cluster, plan);
    injector.SetKubeShare(&kubeshare);

    EXPECT_TRUE(cluster.Start().ok());
    EXPECT_TRUE(kubeshare.Start().ok());
    EXPECT_TRUE(injector.Arm().ok());
    cluster.nvml().Start();
    driver.Start();
    cluster.sim().RunUntil(Seconds(35));
    cluster.nvml().Stop();

    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      for (auto& dev : cluster.node(n).gpus) {
        sink->nvml[dev->uuid().value()] =
            cluster.nvml().SamplesFor(dev->uuid());
      }
    }
    sink->completed = host.completed();
    sink->failed = host.failed();
    sink->total_events = cluster.sim().lifetime_events();
  }
  return std::move(*out);
}

/// Line-by-line comparison that reports the first divergence with context
/// (a raw vector EXPECT_EQ truncates long traces before the mismatch).
void ExpectLinesEqual(const std::vector<std::string>& fused,
                      const std::vector<std::string>& reference,
                      const std::string& what) {
  const std::size_t n = std::min(fused.size(), reference.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (fused[i] == reference[i]) continue;
    std::string context;
    for (std::size_t j = i >= 3 ? i - 3 : 0; j < std::min(n, i + 3); ++j) {
      context += "\n  [" + std::to_string(j) + "] fused:     " + fused[j] +
                 "\n  [" + std::to_string(j) + "] reference: " + reference[j];
    }
    ADD_FAILURE() << what << " diverged at line " << i << " of "
                  << fused.size() << "/" << reference.size() << ":" << context;
    return;
  }
  if (fused.size() != reference.size()) {
    const auto& longer = fused.size() > reference.size() ? fused : reference;
    ADD_FAILURE() << what << " lengths differ (fused " << fused.size()
                  << ", reference " << reference.size() << "); first extra: "
                  << longer[n];
  }
}

void ExpectTracesEqual(const RunTraces& fused, const RunTraces& reference,
                       const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(fused.completed, reference.completed);
  EXPECT_EQ(fused.failed, reference.failed);

  ASSERT_EQ(fused.kernels.size(), reference.kernels.size());
  for (const auto& [uuid, lines] : fused.kernels) {
    auto it = reference.kernels.find(uuid);
    ASSERT_NE(it, reference.kernels.end()) << uuid;
    ExpectLinesEqual(lines, it->second, "kernel trace on " + uuid);
  }

  ASSERT_EQ(fused.nvml.size(), reference.nvml.size());
  for (const auto& [uuid, samples] : fused.nvml) {
    auto it = reference.nvml.find(uuid);
    ASSERT_NE(it, reference.nvml.end()) << uuid;
    ASSERT_EQ(samples.size(), it->second.size()) << uuid;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      EXPECT_EQ(samples[i].at, it->second[i].at) << uuid << " sample " << i;
      EXPECT_EQ(samples[i].gpu_util, it->second[i].gpu_util)  // bit-equal
          << uuid << " sample " << i;
      EXPECT_EQ(samples[i].mem_used, it->second[i].mem_used)
          << uuid << " sample " << i;
    }
  }

  ASSERT_EQ(fused.tokens.size(), reference.tokens.size());
  for (const auto& [node, lines] : fused.tokens) {
    auto it = reference.tokens.find(node);
    ASSERT_NE(it, reference.tokens.end()) << node;
    ExpectLinesEqual(lines, it->second, "token trace on " + node);
  }
}

void CompareModes(std::uint64_t seed, workload::WorkloadConfig::JobKind kind,
                  FaultChoice fault, const std::string& label) {
  const RunTraces fused = RunCluster(GpuExecMode::kFused, seed, kind, fault);
  const RunTraces reference =
      RunCluster(GpuExecMode::kReference, seed, kind, fault);
  ExpectTracesEqual(fused, reference, label);
  // Fusion may only remove engine events, never add observable work.
  EXPECT_LE(fused.total_events, reference.total_events) << label;
}

TEST(DeviceEquivalence, InferenceClusterTracesByteEqualAcrossSeeds) {
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u}) {
    CompareModes(seed, workload::WorkloadConfig::JobKind::kInference,
                 FaultChoice::kNone, "inference seed " + std::to_string(seed));
  }
}

TEST(DeviceEquivalence, TrainingClusterTracesByteEqualAcrossSeeds) {
  for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    const RunTraces fused =
        RunCluster(GpuExecMode::kFused, seed,
                   workload::WorkloadConfig::JobKind::kTraining,
                   FaultChoice::kNone);
    const RunTraces reference =
        RunCluster(GpuExecMode::kReference, seed,
                   workload::WorkloadConfig::JobKind::kTraining,
                   FaultChoice::kNone);
    const std::string label = "training seed " + std::to_string(seed);
    ExpectTracesEqual(fused, reference, label);
    // Back-to-back training steps are the kernel-heavy case: fusion must
    // show a real event reduction here, not just parity.
    EXPECT_LT(fused.total_events, reference.total_events) << label;
  }
}

TEST(DeviceEquivalence, TracesByteEqualAcrossTokenDaemonRestart) {
  for (std::uint64_t seed : {31u, 32u}) {
    CompareModes(seed, workload::WorkloadConfig::JobKind::kInference,
                 FaultChoice::kTokenDaemonRestart,
                 "daemon-restart seed " + std::to_string(seed));
  }
}

TEST(DeviceEquivalence, TracesByteEqualAcrossDevMgrCrash) {
  for (std::uint64_t seed : {41u, 42u}) {
    CompareModes(seed, workload::WorkloadConfig::JobKind::kTraining,
                 FaultChoice::kDevMgrCrash,
                 "devmgr-crash seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace ks::gpu
