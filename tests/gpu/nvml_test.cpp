#include "gpu/nvml.hpp"

#include <gtest/gtest.h>

namespace ks::gpu {
namespace {

class NvmlTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  GpuDevice dev_{&sim_, GpuUuid("GPU-A")};
  GpuDevice dev2_{&sim_, GpuUuid("GPU-B")};
  NvmlMonitor mon_{&sim_, Seconds(1)};
  ContainerId c_{"c"};
};

TEST_F(NvmlTest, SamplesIdleDeviceAsZero) {
  mon_.Register(&dev_);
  mon_.Start();
  sim_.RunUntil(Seconds(3));
  mon_.Stop();
  const auto& s = mon_.SamplesFor(dev_.uuid());
  ASSERT_GE(s.size(), 2u);
  for (const auto& x : s) EXPECT_DOUBLE_EQ(x.gpu_util, 0.0);
}

TEST_F(NvmlTest, BusyDeviceReportsUtilization) {
  mon_.Register(&dev_);
  mon_.Start();
  // Busy for the first 500ms of each second via 500ms kernels at 1s marks.
  for (int i = 0; i < 3; ++i) {
    sim_.ScheduleAt(Seconds(i), [&] {
      dev_.Submit(c_, {Millis(500), 0.0, "k"}, nullptr);
    });
  }
  sim_.RunUntil(Seconds(3));
  mon_.Stop();
  const auto& s = mon_.SamplesFor(dev_.uuid());
  ASSERT_GE(s.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(s[i].gpu_util, 0.5, 0.01);
}

TEST_F(NvmlTest, MemorySampleTracksAllocation) {
  mon_.Register(&dev_);
  mon_.Start();
  ASSERT_TRUE(dev_.Allocate(c_, dev_.spec().memory_bytes / 2).ok());
  sim_.RunUntil(Seconds(2));
  mon_.Stop();
  const auto& s = mon_.SamplesFor(dev_.uuid());
  ASSERT_FALSE(s.empty());
  EXPECT_NEAR(s.back().mem_used, 0.5, 1e-9);
}

TEST_F(NvmlTest, AverageUtilizationAcrossActiveIgnoresIdleDevices) {
  mon_.Register(&dev_);
  mon_.Register(&dev2_);
  mon_.Start();
  dev_.Submit(c_, {Seconds(2), 0.0, "k"}, nullptr);
  sim_.RunUntil(Seconds(2));
  mon_.Stop();
  // dev2 never ran anything; the "active GPU" average counts only dev_.
  EXPECT_NEAR(mon_.AverageUtilizationAcrossActive(0), 1.0, 0.01);
  EXPECT_NEAR(mon_.AverageUtilization(dev2_.uuid()), 0.0, 1e-9);
}

TEST_F(NvmlTest, UnknownDeviceHasNoSamples) {
  EXPECT_TRUE(mon_.SamplesFor(GpuUuid("GPU-missing")).empty());
}

TEST_F(NvmlTest, StopHaltsSampling) {
  mon_.Register(&dev_);
  mon_.Start();
  sim_.RunUntil(Seconds(2));
  mon_.Stop();
  const auto before = mon_.SamplesFor(dev_.uuid()).size();
  sim_.RunUntil(Seconds(10));
  EXPECT_EQ(mon_.SamplesFor(dev_.uuid()).size(), before);
}

}  // namespace
}  // namespace ks::gpu
