// Unit tests for the device-side isolation primitives: the per-owner token
// fencing gate (epoch/floor FencingGate idiom checked at Submit /
// SubmitRepeat) and the server-side memory quota checked at Allocate.
// Both engines share the gate in the GpuDevice base, so the suite is
// templated over {GpuDevice, GpuDeviceReference} — identical behavior is
// the contract the fencing differential tests then pin end to end.

#include "gpu/device.hpp"
#include "gpu/device_reference.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ks::gpu {
namespace {

template <typename Device>
class TokenGateTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  Device dev_{&sim_, GpuUuid("GPU-0000")};
  ContainerId c1_{"c1"};
  ContainerId c2_{"c2"};
  std::vector<std::pair<ContainerId, DeviceViolation>> violations_;

  void ObserveViolations() {
    dev_.SetViolationFn([this](const ContainerId& owner, DeviceViolation v) {
      violations_.emplace_back(owner, v);
    });
  }
};

using Engines = ::testing::Types<GpuDevice, GpuDeviceReference>;
TYPED_TEST_SUITE(TokenGateTest, Engines);

TYPED_TEST(TokenGateTest, NoGateAdmitsEverything) {
  // The default (and every native pod): no gate, nothing changes.
  bool done = false;
  EXPECT_NE(this->dev_.Submit(this->c1_, {Millis(10), 0.0, "k"},
                              [&] { done = true; }),
            0u);
  EXPECT_TRUE(this->dev_.TokenGateAdmits(this->c1_));
  this->sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(this->dev_.fenced_kernel_rejections(), 0u);
}

TYPED_TEST(TokenGateTest, FreshGateRejectsUntilEpochAdmitted) {
  this->ObserveViolations();
  this->dev_.EnforceTokenGate(this->c1_);
  EXPECT_FALSE(this->dev_.TokenGateAdmits(this->c1_));
  bool done = false;
  EXPECT_EQ(this->dev_.Submit(this->c1_, {Millis(10), 0.0, "k"},
                              [&] { done = true; }),
            0u);
  this->sim_.Run();
  EXPECT_FALSE(done);  // rejected submits never call back
  EXPECT_EQ(this->dev_.fenced_kernel_rejections(), 1u);
  EXPECT_EQ(this->dev_.FencedRejectionsOf(this->c1_), 1u);
  ASSERT_EQ(this->violations_.size(), 1u);
  EXPECT_EQ(this->violations_[0].first, this->c1_);
  EXPECT_EQ(this->violations_[0].second, DeviceViolation::kFencedSubmit);
  // Other owners are unaffected by c1's gate.
  EXPECT_TRUE(this->dev_.TokenGateAdmits(this->c2_));
}

TYPED_TEST(TokenGateTest, AdmittedEpochOpensTheGate) {
  this->dev_.EnforceTokenGate(this->c1_);
  this->dev_.AdmitTokenEpoch(this->c1_, 1);
  EXPECT_TRUE(this->dev_.TokenGateAdmits(this->c1_));
  bool done = false;
  EXPECT_NE(this->dev_.Submit(this->c1_, {Millis(10), 0.0, "k"},
                              [&] { done = true; }),
            0u);
  this->sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(this->dev_.fenced_kernel_rejections(), 0u);
}

TYPED_TEST(TokenGateTest, FenceRaisesFloorPastCurrentEpoch) {
  this->dev_.EnforceTokenGate(this->c1_);
  this->dev_.AdmitTokenEpoch(this->c1_, 1);
  this->dev_.FenceTokenEpoch(this->c1_);
  EXPECT_FALSE(this->dev_.TokenGateAdmits(this->c1_));
  EXPECT_EQ(this->dev_.Submit(this->c1_, {Millis(10), 0.0, "k"}, [] {}), 0u);
  // A stale epoch replayed after the fence stays rejected...
  this->dev_.AdmitTokenEpoch(this->c1_, 1);
  EXPECT_FALSE(this->dev_.TokenGateAdmits(this->c1_));
  // ...and only a newer grant re-opens the gate.
  this->dev_.AdmitTokenEpoch(this->c1_, 2);
  EXPECT_TRUE(this->dev_.TokenGateAdmits(this->c1_));
  EXPECT_NE(this->dev_.Submit(this->c1_, {Millis(10), 0.0, "k"}, [] {}), 0u);
  this->sim_.Run();
}

TYPED_TEST(TokenGateTest, SubmitRepeatIsGatedToo) {
  this->ObserveViolations();
  this->dev_.EnforceTokenGate(this->c1_);
  this->dev_.FenceTokenEpoch(this->c1_);
  int units = 0;
  EXPECT_EQ(this->dev_.SubmitRepeat(this->c1_, {Millis(5), 0.0, "r"}, 4,
                                    [&](Time) { ++units; }),
            0u);
  this->sim_.Run();
  EXPECT_EQ(units, 0);
  EXPECT_EQ(this->dev_.fenced_kernel_rejections(), 1u);
  ASSERT_EQ(this->violations_.size(), 1u);
  EXPECT_EQ(this->violations_[0].second, DeviceViolation::kFencedSubmit);
}

TYPED_TEST(TokenGateTest, LiftTokenGateRestoresAdmitAll) {
  this->dev_.EnforceTokenGate(this->c1_);
  EXPECT_FALSE(this->dev_.TokenGateAdmits(this->c1_));
  this->dev_.LiftTokenGate(this->c1_);
  EXPECT_TRUE(this->dev_.TokenGateAdmits(this->c1_));
  EXPECT_NE(this->dev_.Submit(this->c1_, {Millis(10), 0.0, "k"}, [] {}), 0u);
  this->sim_.Run();
}

TYPED_TEST(TokenGateTest, MemoryQuotaRejectsBeyondLimit) {
  this->ObserveViolations();
  this->dev_.SetMemoryQuota(this->c1_, 1000);
  auto p1 = this->dev_.Allocate(this->c1_, 800);
  ASSERT_TRUE(p1.ok());
  auto p2 = this->dev_.Allocate(this->c1_, 300);
  ASSERT_FALSE(p2.ok());
  EXPECT_EQ(p2.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(this->dev_.memory_quota_rejections(), 1u);
  ASSERT_EQ(this->violations_.size(), 1u);
  EXPECT_EQ(this->violations_[0].second, DeviceViolation::kMemoryQuota);
  // The quota is per owner: c2 allocates freely against physical capacity.
  EXPECT_TRUE(this->dev_.Allocate(this->c2_, 300).ok());
  // Freeing brings c1 back under quota.
  ASSERT_TRUE(this->dev_.Free(*p1).ok());
  EXPECT_TRUE(this->dev_.Allocate(this->c1_, 300).ok());
}

TYPED_TEST(TokenGateTest, ClearMemoryQuotaRestoresCapacityOnlyBehavior) {
  this->dev_.SetMemoryQuota(this->c1_, 100);
  EXPECT_FALSE(this->dev_.Allocate(this->c1_, 200).ok());
  this->dev_.ClearMemoryQuota(this->c1_);
  EXPECT_TRUE(this->dev_.Allocate(this->c1_, 200).ok());
  EXPECT_EQ(this->dev_.memory_quota_rejections(), 1u);
}

}  // namespace
}  // namespace ks::gpu
