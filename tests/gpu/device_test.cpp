#include "gpu/device.hpp"

#include <gtest/gtest.h>

namespace ks::gpu {
namespace {

class GpuDeviceTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  GpuDevice dev_{&sim_, GpuUuid("GPU-0000")};
  ContainerId c1_{"c1"};
  ContainerId c2_{"c2"};
};

TEST_F(GpuDeviceTest, AllocateWithinCapacity) {
  auto p = dev_.Allocate(c1_, 1024);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(dev_.used_memory(), 1024u);
  EXPECT_EQ(dev_.MemoryUsedBy(c1_), 1024u);
  EXPECT_EQ(dev_.MemoryUsedBy(c2_), 0u);
}

TEST_F(GpuDeviceTest, AllocateBeyondCapacityFails) {
  const auto cap = dev_.spec().memory_bytes;
  auto p1 = dev_.Allocate(c1_, cap);
  ASSERT_TRUE(p1.ok());
  auto p2 = dev_.Allocate(c2_, 1);
  EXPECT_FALSE(p2.ok());
  EXPECT_EQ(p2.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(GpuDeviceTest, ZeroByteAllocationRejected) {
  EXPECT_FALSE(dev_.Allocate(c1_, 0).ok());
}

TEST_F(GpuDeviceTest, FreeReturnsMemory) {
  auto p = dev_.Allocate(c1_, 4096);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(dev_.Free(*p).ok());
  EXPECT_EQ(dev_.used_memory(), 0u);
  EXPECT_FALSE(dev_.Free(*p).ok());  // double free
}

TEST_F(GpuDeviceTest, FreeAllReleasesOnlyOwner) {
  ASSERT_TRUE(dev_.Allocate(c1_, 100).ok());
  ASSERT_TRUE(dev_.Allocate(c1_, 200).ok());
  ASSERT_TRUE(dev_.Allocate(c2_, 300).ok());
  dev_.FreeAll(c1_);
  EXPECT_EQ(dev_.used_memory(), 300u);
  EXPECT_EQ(dev_.MemoryUsedBy(c2_), 300u);
}

TEST_F(GpuDeviceTest, SingleKernelRunsAtNominalDuration) {
  bool done = false;
  dev_.Submit(c1_, {Millis(50), 0.0, "k"}, [&] { done = true; });
  EXPECT_TRUE(dev_.busy());
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(dev_.busy());
  // 1 us completion tolerance in the engine.
  EXPECT_NEAR(ToMillis(Duration(sim_.Now())), 50.0, 0.01);
}

TEST_F(GpuDeviceTest, TwoConcurrentKernelsShareProcessor) {
  Time t1{0}, t2{0};
  dev_.Submit(c1_, {Millis(50), 0.0, "a"}, [&] { t1 = sim_.Now(); });
  dev_.Submit(c2_, {Millis(50), 0.0, "b"}, [&] { t2 = sim_.Now(); });
  sim_.Run();
  // Both share the SMs: each takes ~100ms wall time.
  EXPECT_NEAR(ToMillis(Duration(t1)), 100.0, 0.1);
  EXPECT_NEAR(ToMillis(Duration(t2)), 100.0, 0.1);
}

TEST_F(GpuDeviceTest, LateArrivalFinishesAfterProportionalShare) {
  Time t1{0}, t2{0};
  dev_.Submit(c1_, {Millis(100), 0.0, "a"}, [&] { t1 = sim_.Now(); });
  sim_.ScheduleAt(Millis(50), [&] {
    dev_.Submit(c2_, {Millis(100), 0.0, "b"}, [&] { t2 = sim_.Now(); });
  });
  sim_.Run();
  // a: 50ms solo (50ms work) + 100ms shared (50ms work) -> ends at 150ms.
  EXPECT_NEAR(ToMillis(Duration(t1)), 150.0, 0.2);
  // b: 100ms shared (50ms work) + 50ms solo (50ms work) -> ends at 200ms.
  EXPECT_NEAR(ToMillis(Duration(t2)), 200.0, 0.2);
}

TEST_F(GpuDeviceTest, BandwidthOversubscriptionStretchesKernels) {
  Time t1{0}, t2{0};
  // Two kernels each demanding 0.75 of bandwidth: stretch = 1.5 on top of
  // the 2-way SM split -> each 50ms kernel takes 150ms.
  dev_.Submit(c1_, {Millis(50), 0.75, "a"}, [&] { t1 = sim_.Now(); });
  dev_.Submit(c2_, {Millis(50), 0.75, "b"}, [&] { t2 = sim_.Now(); });
  sim_.Run();
  EXPECT_NEAR(ToMillis(Duration(t1)), 150.0, 0.2);
  EXPECT_NEAR(ToMillis(Duration(t2)), 150.0, 0.2);
}

TEST_F(GpuDeviceTest, BandwidthUnderCapacityDoesNotStretch) {
  Time t1{0};
  dev_.Submit(c1_, {Millis(50), 0.5, "a"}, [&] { t1 = sim_.Now(); });
  sim_.Run();
  EXPECT_NEAR(ToMillis(Duration(t1)), 50.0, 0.01);
}

TEST_F(GpuDeviceTest, UtilizationTracksBusyTime) {
  dev_.Submit(c1_, {Millis(250), 0.0, "a"}, nullptr);
  sim_.Run();
  dev_.utilization().Flush(sim_.Now());
  EXPECT_NEAR(ToMillis(dev_.utilization().TotalBusy()), 250.0, 0.01);
}

TEST_F(GpuDeviceTest, CompletionCallbackCanResubmit) {
  int completed = 0;
  std::function<void()> resubmit = [&] {
    ++completed;
    if (completed < 3) {
      dev_.Submit(c1_, {Millis(10), 0.0, "chain"}, resubmit);
    }
  };
  dev_.Submit(c1_, {Millis(10), 0.0, "chain"}, resubmit);
  sim_.Run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(dev_.completed_kernels(), 3u);
  EXPECT_NEAR(ToMillis(Duration(sim_.Now())), 30.0, 0.1);
}

TEST_F(GpuDeviceTest, DetachOwnerDropsCallbacksKernelStillRuns) {
  bool fired = false;
  dev_.Submit(c1_, {Millis(50), 0.0, "k"}, [&] { fired = true; });
  sim_.RunUntil(Millis(10));
  dev_.DetachOwner(c1_);  // container torn down mid-kernel
  sim_.Run();
  EXPECT_FALSE(fired);                       // callback dropped...
  EXPECT_EQ(dev_.completed_kernels(), 1u);   // ...but the kernel completed
  EXPECT_FALSE(dev_.busy());
}

TEST_F(GpuDeviceTest, DetachOwnerLeavesOtherOwnersIntact) {
  bool fired1 = false, fired2 = false;
  dev_.Submit(c1_, {Millis(20), 0.0, "a"}, [&] { fired1 = true; });
  dev_.Submit(c2_, {Millis(20), 0.0, "b"}, [&] { fired2 = true; });
  dev_.DetachOwner(c1_);
  sim_.Run();
  EXPECT_FALSE(fired1);
  EXPECT_TRUE(fired2);
}

TEST_F(GpuDeviceTest, FreeAllWhileKernelsRunning) {
  ASSERT_TRUE(dev_.Allocate(c1_, 1024).ok());
  dev_.Submit(c1_, {Millis(20), 0.0, "k"}, nullptr);
  dev_.FreeAll(c1_);  // memory released mid-execution
  EXPECT_EQ(dev_.used_memory(), 0u);
  sim_.Run();
  EXPECT_EQ(dev_.completed_kernels(), 1u);
}

TEST_F(GpuDeviceTest, ManyKernelsAllComplete) {
  int done = 0;
  for (int i = 0; i < 64; ++i) {
    dev_.Submit(c1_, {Millis(1 + i % 7), 0.1, "k"}, [&] { ++done; });
  }
  sim_.Run();
  EXPECT_EQ(done, 64);
  EXPECT_FALSE(dev_.busy());
}

}  // namespace
}  // namespace ks::gpu
