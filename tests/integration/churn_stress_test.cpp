#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kubeshare/kubeshare.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

namespace ks {
namespace {

/// Cluster-level churn: random sharePod submissions (mixed training and
/// inference, random locality labels) interleaved with random deletions,
/// while global invariants are checked continuously:
///  - no vGPU is ever over-committed by requests;
///  - the vGPU count never exceeds the physical supply;
///  - kubelet CPU accounting never exceeds capacity;
///  - after the storm drains, every GPU is back in Kubernetes' hands.
struct ChurnParam {
  std::uint64_t seed;
};

class ClusterChurnStress : public ::testing::TestWithParam<ChurnParam> {};

TEST_P(ClusterChurnStress, InvariantsHoldUnderRandomChurn) {
  Rng rng(GetParam().seed);
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 4;
  ccfg.gpus_per_node = 2;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(kubeshare.Start().ok());

  const int physical_gpus = ccfg.nodes * ccfg.gpus_per_node;
  std::vector<std::string> live;
  int next_id = 0;

  auto submit = [&] {
    const std::string name = "churn-" + std::to_string(next_id++);
    kubeshare::SharePod sp;
    sp.meta.name = name;
    sp.spec.gpu.gpu_request = rng.Uniform(0.1, 0.6);
    sp.spec.gpu.gpu_limit =
        std::min(1.0, sp.spec.gpu.gpu_request + rng.Uniform(0.0, 0.4));
    sp.spec.gpu.gpu_mem = rng.Uniform(0.1, 0.4);
    sp.spec.priority = static_cast<int>(rng.UniformInt(0, 3));
    if (rng.Chance(0.2)) {
      sp.spec.locality.anti_affinity =
          Label("anti-" + std::to_string(rng.UniformInt(0, 1)));
    }
    if (rng.Chance(0.1)) {
      sp.spec.locality.exclusion =
          Label("excl-" + std::to_string(rng.UniformInt(0, 1)));
    }
    if (rng.Chance(0.5)) {
      workload::InferenceSpec spec = workload::InferenceSpec::ForDemand(
          rng.Uniform(0.1, 0.5), static_cast<int>(rng.UniformInt(50, 400)),
          Millis(20));
      spec.seed = rng.UniformInt(1, 1 << 20);
      host.ExpectJob(name, [spec] {
        return std::make_unique<workload::InferenceJob>(spec);
      });
    } else {
      workload::TrainingSpec spec;
      spec.steps = static_cast<int>(rng.UniformInt(100, 2000));
      spec.step_kernel = Millis(10);
      spec.model_bytes = 1ull << 30;
      host.ExpectJob(name, [spec] {
        return std::make_unique<workload::TrainingJob>(spec);
      });
    }
    ASSERT_TRUE(kubeshare.CreateSharePod(sp).ok());
    live.push_back(name);
  };

  auto check_invariants = [&] {
    for (const kubeshare::VgpuInfo* dev : kubeshare.pool().List()) {
      ASSERT_LE(dev->used_util, 1.0 + 1e-9) << dev->id;
      ASSERT_LE(dev->used_mem, 1.0 + 1e-9) << dev->id;
    }
    ASSERT_LE(kubeshare.pool().size(),
              static_cast<std::size_t>(physical_gpus));
    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      const auto& kubelet = *cluster.node(n).kubelet;
      ASSERT_LE(kubelet.allocated().Get(k8s::kResourceCpu),
                cluster.config().cpu_millicores);
    }
  };

  for (int round = 0; round < 80; ++round) {
    if (live.size() < 12 && rng.Chance(0.7)) submit();
    if (!live.empty() && rng.Chance(0.3)) {
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      // Deleting a sharePod that may be pending, acquiring, launching,
      // running, or already finished — all paths must be safe.
      (void)kubeshare.sharepods().Delete(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    cluster.sim().RunUntil(cluster.sim().Now() +
                           Millis(rng.UniformInt(200, 3000)));
    check_invariants();
  }

  // Drain: delete the survivors and let everything settle.
  for (const std::string& name : live) {
    (void)kubeshare.sharepods().Delete(name);
  }
  cluster.sim().RunUntil(cluster.sim().Now() + Minutes(3));
  check_invariants();
  EXPECT_EQ(kubeshare.pool().size(), 0u);  // on-demand: all GPUs returned
  // Every managed pod is gone or terminal.
  for (const k8s::Pod& p : cluster.api().pods().List()) {
    EXPECT_TRUE(p.terminal()) << p.meta.name;
  }
  // A native pod can now take any whole GPU.
  k8s::Pod native;
  native.meta.name = "native-after-storm";
  native.spec.requests.Set(k8s::kResourceNvidiaGpu, 2);
  ASSERT_TRUE(cluster.api().pods().Create(native).ok());
  cluster.sim().RunUntil(cluster.sim().Now() + Minutes(1));
  EXPECT_EQ(cluster.api().pods().Get("native-after-storm")->status.phase,
            k8s::PodPhase::kRunning);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterChurnStress,
                         ::testing::Values(ChurnParam{21}, ChurnParam{42},
                                           ChurnParam{63}, ChurnParam{84}),
                         [](const ::testing::TestParamInfo<ChurnParam>& i) {
                           return "seed" + std::to_string(i.param.seed);
                         });

}  // namespace
}  // namespace ks
