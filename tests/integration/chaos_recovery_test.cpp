#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/recovery.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

namespace ks {
namespace {

/// Fig-8-style churn with a node crash in the middle: inference sharePods
/// arriving while node-1 dies (taking its containers, kubelet and token
/// daemon) and later comes back. The recovery paths under test:
/// eviction -> DevMgr reclaim/requeue -> re-schedule -> relaunch.
struct ScenarioResult {
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t restarts = 0;
  std::size_t vgpus_left = 0;
  std::size_t nonterminal_pods = 0;
  metrics::RecoveryMetrics recovery;
  chaos::ChaosStats chaos;
  std::string timeline;  // full event log, for byte-identical comparison
};

constexpr int kJobs = 16;

ScenarioResult RunCrashScenario(std::uint64_t seed) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 4;
  ccfg.gpus_per_node = 2;
  ccfg.node_detection = Seconds(1);
  ccfg.pod_eviction_timeout = Seconds(2);
  ccfg.component_resync = Seconds(1);
  k8s::Cluster cluster(ccfg);

  kubeshare::KubeShareConfig kcfg;
  kcfg.reconcile_period = Seconds(1);
  kcfg.requeue_lost_workloads = true;
  kubeshare::KubeShare kubeshare(&cluster, kcfg);
  workload::WorkloadHost host(&cluster);
  EXPECT_TRUE(cluster.Start().ok());
  EXPECT_TRUE(kubeshare.Start().ok());

  // Staggered arrivals: 16 jobs, one every 300 ms, ~2.5 s of work each at
  // demand 0.4. gpu_request 0.45 packs two per GPU across 8 GPUs.
  for (int i = 0; i < kJobs; ++i) {
    const std::string name = "job-" + std::to_string(i);
    cluster.sim().ScheduleAfter(Millis(300) * i, [&, name, i] {
      workload::InferenceSpec spec =
          workload::InferenceSpec::ForDemand(0.4, 100, Millis(10));
      spec.seed = seed + static_cast<std::uint64_t>(i);
      host.ExpectJob(name, [spec] {
        return std::make_unique<workload::InferenceJob>(spec);
      });
      kubeshare::SharePod sp;
      sp.meta.name = name;
      sp.spec.gpu.gpu_request = 0.45;
      sp.spec.gpu.gpu_limit = 1.0;
      sp.spec.gpu.gpu_mem = 0.3;
      EXPECT_TRUE(kubeshare.CreateSharePod(sp).ok());
    });
  }

  // Scripted plan: node-1 dies at 6 s — after image pulls and vGPU
  // acquisition, while its first wave of containers (started ~5 s, ~2.5 s
  // of work) is mid-run — and comes back at 14 s.
  chaos::FaultPlan plan;
  chaos::Fault crash;
  crash.at = Seconds(6);
  crash.kind = chaos::FaultKind::kNodeCrash;
  crash.node = "node-1";
  crash.duration = Seconds(8);  // auto-recovery at 14 s
  plan.faults.push_back(crash);
  chaos::FaultInjector injector(&cluster, plan);
  EXPECT_TRUE(injector.Arm().ok());

  // Drive until every job record is closed (or a generous deadline).
  const Time deadline = Minutes(5);
  while (cluster.sim().Now() < deadline) {
    cluster.sim().RunUntil(cluster.sim().Now() + Seconds(1));
    if (host.completed() + host.failed() ==
        static_cast<std::size_t>(kJobs)) {
      break;
    }
  }
  // Let teardown (vGPU releases, pod deletes) settle.
  cluster.sim().RunUntil(cluster.sim().Now() + Seconds(5));

  ScenarioResult out;
  out.completed = host.completed();
  out.failed = host.failed();
  out.restarts = host.restarts();
  out.vgpus_left = kubeshare.pool().size();
  for (const k8s::Pod& p : cluster.api().pods().List()) {
    if (!p.terminal()) ++out.nonterminal_pods;
  }
  out.recovery = metrics::CollectRecoveryMetrics(cluster, &kubeshare);
  out.chaos = injector.stats();
  std::ostringstream timeline;
  cluster.api().events().Print(timeline);
  out.timeline = timeline.str();
  return out;
}

TEST(ChaosRecovery, NodeCrashMidChurnEveryJobCompletes) {
  const ScenarioResult r = RunCrashScenario(2026);
  SCOPED_TRACE(r.timeline);
  // Every job eventually completes: the ones on node-1 are requeued and
  // relaunched elsewhere (or after recovery), not lost.
  EXPECT_EQ(r.completed, static_cast<std::size_t>(kJobs));
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GT(r.restarts, 0u);  // the crash really did interrupt containers
  // No leaked vGPUs or bindings: on-demand policy returns every GPU.
  EXPECT_EQ(r.vgpus_left, 0u);
  EXPECT_EQ(r.nonterminal_pods, 0u);
  // The recovery paths actually fired.
  EXPECT_GE(r.chaos.node_crashes, 1u);
  EXPECT_GE(r.recovery.node_not_ready_transitions, 1u);
  EXPECT_GE(r.recovery.sharepods_requeued, 1u);
  EXPECT_GE(r.recovery.vgpus_reclaimed, 1u);
  EXPECT_GE(r.recovery.backend_restarts, 1u);
  EXPECT_EQ(r.chaos.recoveries_timed_out, 0u);
}

TEST(ChaosRecovery, SameSeedSameTimelineAndMetrics) {
  const ScenarioResult a = RunCrashScenario(2026);
  const ScenarioResult b = RunCrashScenario(2026);
  // Byte-identical event timeline: fault injection and every recovery
  // step land at the same simulated instants in the same order.
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.recovery.pods_evicted, b.recovery.pods_evicted);
  EXPECT_EQ(a.recovery.sharepods_requeued, b.recovery.sharepods_requeued);
  EXPECT_EQ(a.recovery.vgpus_reclaimed, b.recovery.vgpus_reclaimed);
  EXPECT_EQ(a.chaos.total_recovery_time, b.chaos.total_recovery_time);
}

}  // namespace
}  // namespace ks
