#include <gtest/gtest.h>

#include "workload/generator.hpp"
#include "workload/host.hpp"

namespace ks {
namespace {

/// Runs a full mixed KubeShare workload and returns a fingerprint of the
/// outcome (completion count, makespan, completion-time sequence).
struct Fingerprint {
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::vector<Time> completions;
  std::uint64_t vgpus_created = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint RunOnce(std::uint64_t seed) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 4;
  ccfg.gpus_per_node = 2;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  workload::WorkloadConfig wcfg;
  wcfg.total_jobs = 40;
  wcfg.mean_interarrival = Seconds(1.5);
  wcfg.demand_mean = 0.35;
  wcfg.demand_stddev = 0.15;
  wcfg.job_duration = Seconds(20);
  wcfg.seed = seed;
  workload::WorkloadDriver driver(&cluster, &host,
                                  workload::WorkloadDriver::Mode::kKubeShare,
                                  &kubeshare, wcfg);
  EXPECT_TRUE(cluster.Start().ok());
  EXPECT_TRUE(kubeshare.Start().ok());
  driver.Start();
  cluster.sim().RunUntil(Minutes(30));

  Fingerprint fp;
  fp.completed = host.completed();
  fp.failed = host.failed();
  fp.completions = host.completion_times();
  fp.vgpus_created = kubeshare.devmgr().vgpus_created();
  return fp;
}

/// The whole stack — event queue, watches, both schedulers, the token
/// protocol, workload arrivals — must be bit-deterministic given a seed.
/// This is the property that makes every figure in EXPERIMENTS.md
/// reproducible.
TEST(Determinism, IdenticalSeedsProduceIdenticalRuns) {
  const Fingerprint a = RunOnce(1234);
  const Fingerprint b = RunOnce(1234);
  EXPECT_EQ(a.completed, 40u);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const Fingerprint a = RunOnce(1);
  const Fingerprint b = RunOnce(2);
  EXPECT_EQ(a.completed, b.completed);  // same job count completes...
  EXPECT_NE(a.completions, b.completions);  // ...on different schedules
}

}  // namespace
}  // namespace ks
