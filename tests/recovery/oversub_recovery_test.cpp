// Oversubscription under randomized sequences and chaos (ROADMAP item 2).
//
//  - SwapManager property test: randomized allocate/free/run sequences,
//    re-drawn per KS_CHAOS_SEED in CI's fixed seed matrix, must preserve
//    the residency invariants (resident <= capacity, per-owner byte
//    conservation, the oversubscription bound) and charge exactly
//    queue-wait + bytes/rate for every swap-in.
//  - Thrash regression: a 2.5x-oversubscribed bursty mix stays bounded
//    with the nvshare-TQ rotation on and collapses with it off.
//  - Crash-restart: a token-daemon restart mid-thrash must not fork the
//    timeline — two identical runs rebuild byte-equal residency and TQ
//    state and still complete.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "common/rng.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/swap.hpp"
#include "vgpu/swap.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

namespace ks {
namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

/// CI runs the recovery label once per seed in its fixed matrix via
/// KS_CHAOS_SEED; locally, unset, it exercises the first of them.
std::uint64_t ChaosSeed() {
  if (const char* env = std::getenv("KS_CHAOS_SEED")) {
    const unsigned long long v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 11;
}

TEST(OversubProperty, RandomizedSequencesPreserveSwapInvariants) {
  const std::uint64_t seed = ChaosSeed();
  SCOPED_TRACE("KS_CHAOS_SEED=" + std::to_string(seed));

  vgpu::SwapConfig cfg;
  cfg.page_bytes = 2ull << 20;
  cfg.link_bandwidth_bytes_per_s = 10e9;
  cfg.oversubscription_factor = 2.0;
  const std::uint64_t capacity = 16 * kGiB;
  vgpu::SwapManager swap(capacity, cfg);

  constexpr int kOwners = 5;
  std::vector<ContainerId> owners;
  for (int i = 0; i < kOwners; ++i) {
    owners.emplace_back("c" + std::to_string(i));
  }

  Rng rng(seed);
  Time now{0};
  Time link_free{0};  // mirror of the manager's serial-link model
  for (int step = 0; step < 400; ++step) {
    now += Duration{static_cast<std::int64_t>(rng.UniformInt(1, 500000))};
    const ContainerId& owner =
        owners[static_cast<std::size_t>(rng.UniformInt(0, kOwners - 1))];
    const int op = static_cast<int>(rng.UniformInt(0, 99));
    if (op < 40) {
      // Allocate a whole-page size, keeping each owner within physical
      // capacity (a single working set larger than the device is the
      // frontend quota's job to reject).
      const std::uint64_t pages = rng.UniformInt(1, 1024);
      const std::uint64_t bytes = pages * cfg.page_bytes;
      if (swap.AllocatedBy(owner) + bytes <= capacity) {
        const Status s = swap.Allocate(owner, bytes);
        if (!s.ok()) {
          // Only the aggregate oversubscription bound may refuse.
          EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
          EXPECT_GT(swap.total_allocated() + bytes,
                    static_cast<std::uint64_t>(
                        static_cast<double>(capacity) *
                        cfg.oversubscription_factor));
        }
      }
    } else if (op < 55) {
      const std::uint64_t have = swap.AllocatedBy(owner) / cfg.page_bytes;
      if (have > 0) {
        const std::uint64_t pages = rng.UniformInt(1, have);
        EXPECT_TRUE(swap.Free(owner, pages * cfg.page_bytes).ok());
      }
    } else if (op < 60) {
      swap.FreeAll(owner);
      EXPECT_EQ(swap.AllocatedBy(owner), 0u);
    } else {
      const std::uint64_t before_swapped = swap.SwappedOf(owner);
      const Duration charged = swap.MakeResident(owner, now);
      const std::uint64_t moved = swap.last_migration_bytes();
      // The run-time contract: the whole working set is resident...
      EXPECT_EQ(swap.ResidentOf(owner), swap.AllocatedBy(owner));
      // ...at least the previously-swapped bytes crossed the link...
      EXPECT_GE(moved, before_swapped);
      // ...and the charge is exactly queue wait + bytes / link rate.
      if (moved > 0) {
        const Duration transfer{static_cast<std::int64_t>(
            static_cast<double>(moved) / cfg.link_bandwidth_bytes_per_s *
            1e6)};
        const Time start = std::max(now, link_free);
        link_free = start + transfer;
        EXPECT_EQ(charged, link_free - now)
            << "charged time must be queue wait + transfer at step " << step;
      } else {
        EXPECT_EQ(charged, Duration{0});
      }
    }

    // Global invariants, after every operation.
    EXPECT_LE(swap.total_resident(), capacity);
    EXPECT_LE(swap.total_allocated(),
              static_cast<std::uint64_t>(static_cast<double>(capacity) *
                                         cfg.oversubscription_factor));
    std::uint64_t sum_alloc = 0, sum_res = 0;
    for (const ContainerId& c : owners) {
      EXPECT_LE(swap.ResidentOf(c), swap.AllocatedBy(c));
      EXPECT_EQ(swap.ResidentOf(c) + swap.SwappedOf(c), swap.AllocatedBy(c))
          << "per-owner byte conservation for " << c.value();
      sum_alloc += swap.AllocatedBy(c);
      sum_res += swap.ResidentOf(c);
    }
    ASSERT_EQ(sum_alloc, swap.total_allocated());
    ASSERT_EQ(sum_res, swap.total_resident());
    ASSERT_EQ(swap.total_swapped(), sum_alloc - sum_res);
  }
  EXPECT_GT(swap.swap_ins(), 0u) << "sequence never exercised the link";
}

// ---- full-cluster thrash + crash fixtures -------------------------------

struct OversubRun {
  double completion_s = 0.0;
  std::size_t completed = 0;
  std::uint64_t migrations = 0;
  std::uint64_t tq_engagements = 0;
  std::string swap_dump;  // per-device SwapManager::DebugString()
};

struct OversubRunOptions {
  double factor = 2.5;
  bool tq = true;
  bool daemon_restart = false;
  int tenants = 4;
  Time horizon = Seconds(240);
};

OversubRun RunOversubCluster(const OversubRunOptions& opt) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 1;
  ccfg.gpus_per_node = 1;
  ccfg.oversub.enabled = true;
  ccfg.oversub.swap.oversubscription_factor = opt.factor;
  ccfg.oversub.swap.link_bandwidth_bytes_per_s = 24e9;
  ccfg.backend.tq.enabled = opt.tq;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShareConfig kcfg;
  kcfg.allow_memory_overcommit = true;
  kcfg.memory_overcommit_factor = opt.factor;
  kubeshare::KubeShare kubeshare(&cluster, kcfg);
  workload::WorkloadHost host(&cluster);
  EXPECT_TRUE(cluster.Start().ok());
  EXPECT_TRUE(kubeshare.Start().ok());

  const auto capacity =
      static_cast<double>(cluster.config().gpu_spec.memory_bytes);
  for (int i = 0; i < opt.tenants; ++i) {
    const std::string name = "burst-" + std::to_string(i);
    workload::PhasedTrainingSpec spec;
    spec.epochs = 2;
    spec.steps_per_epoch = 50;
    spec.step_kernel = Millis(10);
    spec.io_per_epoch = Millis(300);
    spec.model_bytes = static_cast<std::uint64_t>(
        opt.factor * 0.9 / opt.tenants * capacity);
    host.ExpectJob(name, [spec] {
      return std::make_unique<workload::PhasedTrainingJob>(spec);
    });
    kubeshare::SharePod sp;
    sp.meta.name = name;
    sp.spec.gpu.gpu_request = 1.0 / opt.tenants;
    sp.spec.gpu.gpu_limit = 1.0;
    sp.spec.gpu.gpu_mem = opt.factor * 0.95 / opt.tenants;
    EXPECT_TRUE(kubeshare.CreateSharePod(sp).ok());
  }

  chaos::FaultPlan plan;
  if (opt.daemon_restart) {
    chaos::Fault daemon;
    daemon.at = Seconds(12);  // mid-thrash: pods are up and swapping
    daemon.kind = chaos::FaultKind::kTokenDaemonRestart;
    daemon.node = "node-0";
    daemon.duration = Seconds(2);
    plan.faults.push_back(daemon);
  }
  chaos::FaultInjector injector(&cluster, plan);
  injector.SetKubeShare(&kubeshare);
  if (opt.daemon_restart) {
    EXPECT_TRUE(injector.Arm().ok());
  }

  const Duration slice = Seconds(5);
  while (host.completed() + host.failed() <
             static_cast<std::size_t>(opt.tenants) &&
         cluster.sim().Now() < opt.horizon) {
    cluster.sim().RunUntil(cluster.sim().Now() + slice);
  }

  OversubRun r;
  r.completed = host.completed();
  r.completion_s =
      r.completed == static_cast<std::size_t>(opt.tenants)
          ? ToSeconds(host.completion_times().back())
          : ToSeconds(opt.horizon);
  const metrics::SwapMetrics swap = metrics::CollectSwapMetrics(
      cluster, [&host](const GpuUuid& uuid) { return host.SwapFor(uuid); });
  r.migrations = swap.migrations_total;
  r.tq_engagements = swap.tq_engagements_total;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    for (auto& dev : cluster.node(n).gpus) {
      if (const vgpu::SwapManager* s = host.SwapFor(dev->uuid())) {
        r.swap_dump += dev->uuid().value() + "\n" + s->DebugString();
      }
    }
  }
  return r;
}

/// The bench gate's shape, pinned as a regression: at 2.5x the TQ
/// rotation keeps the bursty mix bounded while plain quota rotation
/// migrates the working set every 100 ms and collapses.
TEST(OversubThrashing, TqBoundsWhatQuotaRotationCollapses) {
  OversubRunOptions tq_on;
  const OversubRun with_tq = RunOversubCluster(tq_on);
  EXPECT_EQ(with_tq.completed, 4u) << "TQ run must finish within horizon";
  EXPECT_GT(with_tq.tq_engagements, 0u)
      << "2.5x bursty mix must trip the thrash detector";

  OversubRunOptions tq_off = tq_on;
  tq_off.tq = false;
  const OversubRun without = RunOversubCluster(tq_off);
  EXPECT_EQ(without.tq_engagements, 0u);
  const bool collapsed =
      without.completed < 4u ||
      without.completion_s >= 2.0 * with_tq.completion_s;
  EXPECT_TRUE(collapsed)
      << "quota rotation at 2.5x should thrash: tq=" << with_tq.completion_s
      << "s share=" << without.completion_s << "s (" << without.completed
      << "/4 done)";
  EXPECT_GT(without.migrations, with_tq.migrations);
}

/// A token-daemon restart mid-thrash must neither wedge the rotation nor
/// fork the timeline: the rebuilt residency + TQ state is byte-equal
/// across identical runs, and the mix still completes.
TEST(OversubCrashRestart, DaemonRestartRebuildsResidencyByteEqual) {
  OversubRunOptions opt;
  opt.daemon_restart = true;
  const OversubRun a = RunOversubCluster(opt);
  const OversubRun b = RunOversubCluster(opt);
  EXPECT_EQ(a.completed, 4u) << "restart must not wedge the TQ rotation";
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.completion_s, b.completion_s);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.tq_engagements, b.tq_engagements);
  EXPECT_EQ(a.swap_dump, b.swap_dump) << "residency state diverged";
  EXPECT_GT(a.tq_engagements, 0u)
      << "engagement count must survive the daemon restart";
}

}  // namespace
}  // namespace ks
