// Property: the per-tenant violation ledger survives controller loss. A
// DevMgr crash + RebuildFromApiServer must neither forgive a violation
// (attacker crashes the controller to get amnesty) nor double-count one
// (rebuild replays attribution). Pinned by a twin-run comparison — the
// same seeded hostile run with and without a kDevMgrCrash — plus a
// monotonicity check across the crash inside one run.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "vgpu/token_backend.hpp"
#include "workload/generator.hpp"
#include "workload/host.hpp"

namespace ks {
namespace {

/// Canonical text form of every node's violation ledger, ContainerId-sorted
/// by construction. Two runs with the same hostile history must serialize
/// identically regardless of what the controllers went through.
std::string SerializeLedgers(k8s::Cluster& cluster) {
  std::string out;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    auto& node = cluster.node(n);
    out += node.name + ": total=" +
           std::to_string(node.token_backend->violations_total()) +
           " clamps=" + std::to_string(node.token_backend->clampdowns_total()) +
           " evicts=" + std::to_string(node.token_backend->evictions_total()) +
           "\n";
    for (const auto& [container, s] : node.token_backend->IsolationLedger()) {
      out += "  " + container.value() + " o=" + std::to_string(s.overstays) +
             " f=" + std::to_string(s.fenced_submits) +
             " m=" + std::to_string(s.memory_violations) +
             " s=" + std::to_string(s.spoofs) +
             " clamped=" + std::to_string(s.clamped) +
             " evicted=" + std::to_string(s.evicted) + "\n";
    }
  }
  return out;
}

std::map<std::string, std::uint64_t> LedgerTotals(k8s::Cluster& cluster) {
  std::map<std::string, std::uint64_t> totals;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    for (const auto& [container, s] :
         cluster.node(n).token_backend->IsolationLedger()) {
      totals[container.value()] = s.total();
    }
  }
  return totals;
}

struct LedgerRun {
  std::string ledger;
  std::map<std::string, std::uint64_t> totals_before_crash;
  std::map<std::string, std::uint64_t> totals_after;
  std::uint64_t violations_total = 0;
};

LedgerRun RunHostileWithOptionalCrash(std::uint64_t seed, bool crash_devmgr) {
  LedgerRun out;
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 3;
  ccfg.gpus_per_node = 2;
  ccfg.backend.enforcement.enabled = true;
  k8s::Cluster cluster(ccfg);

  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  workload::WorkloadConfig wcfg;
  wcfg.total_jobs = 8;
  wcfg.mean_interarrival = Seconds(0.5);
  wcfg.demand_mean = 0.4;
  wcfg.demand_stddev = 0.15;
  wcfg.job_duration = Seconds(6);
  wcfg.seed = seed;
  wcfg.job_kind = workload::WorkloadConfig::JobKind::kInference;
  workload::WorkloadDriver driver(
      &cluster, &host, workload::WorkloadDriver::Mode::kKubeShare,
      &kubeshare, wcfg);

  chaos::FaultPlan plan;
  {
    // Hostile window [6s, 10s): overstay + flood against the first running
    // job (the workload pipeline needs ~5s before the first container is
    // up). Every violation is attributed well before the controller goes
    // down at 12s, so the crash can only corrupt the ledger, not race it.
    chaos::Fault overstay;
    overstay.at = Seconds(6);
    overstay.kind = chaos::FaultKind::kTenantTokenOverstay;
    overstay.duration = Seconds(4);
    plan.faults.push_back(overstay);
    chaos::Fault flood;
    flood.at = Seconds(6) + Millis(100);
    flood.kind = chaos::FaultKind::kTenantKernelFlood;
    flood.duration = Seconds(4);
    plan.faults.push_back(flood);
    if (crash_devmgr) {
      chaos::Fault crash;
      crash.at = Seconds(12);
      crash.kind = chaos::FaultKind::kDevMgrCrash;
      crash.duration = Seconds(2);
      plan.faults.push_back(crash);
    }
  }
  chaos::FaultInjector injector(&cluster, plan);
  injector.SetKubeShare(&kubeshare);
  injector.SetWorkloadHost(&host);

  EXPECT_TRUE(cluster.Start().ok());
  EXPECT_TRUE(kubeshare.Start().ok());
  EXPECT_TRUE(injector.Arm().ok());
  driver.Start();

  cluster.sim().RunUntil(Seconds(11) + Millis(500));
  out.totals_before_crash = LedgerTotals(cluster);
  cluster.sim().RunUntil(Seconds(22));

  out.ledger = SerializeLedgers(cluster);
  out.totals_after = LedgerTotals(cluster);
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    out.violations_total += cluster.node(n).token_backend->violations_total();
  }
  EXPECT_EQ(injector.stats().recoveries_timed_out, 0u);
  return out;
}

class ViolationLedgerRecovery
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ViolationLedgerRecovery, DevMgrCrashForgivesAndDoublesNothing) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed " + std::to_string(seed));
  const LedgerRun crashed = RunHostileWithOptionalCrash(seed, true);
  const LedgerRun uncrashed = RunHostileWithOptionalCrash(seed, false);

  // The attack actually attributed something.
  ASSERT_GT(crashed.violations_total, 0u);
  // Rebuilt-vs-uncrashed: byte-equal ledgers. A forgiven violation shows
  // as a smaller entry, a double-counted one as a larger entry — both
  // diverge here.
  EXPECT_EQ(crashed.ledger, uncrashed.ledger);
  EXPECT_EQ(crashed.violations_total, uncrashed.violations_total);
}

TEST_P(ViolationLedgerRecovery, LedgerIsMonotoneAcrossTheCrash) {
  const LedgerRun crashed = RunHostileWithOptionalCrash(GetParam(), true);
  ASSERT_FALSE(crashed.totals_before_crash.empty());
  for (const auto& [tenant, before] : crashed.totals_before_crash) {
    const auto it = crashed.totals_after.find(tenant);
    ASSERT_NE(it, crashed.totals_after.end())
        << tenant << " vanished from the ledger across the crash";
    EXPECT_GE(it->second, before) << tenant;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViolationLedgerRecovery,
                         ::testing::Values(71u, 72u, 73u));

}  // namespace
}  // namespace ks
