#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/recovery.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

namespace ks {
namespace {

/// Controller crash/restart scenario: two waves of inference sharePods on
/// a 4-node / 8-GPU cluster under the reservation pool policy (so the
/// pool still has content to compare at quiescence). The crashed variant
/// kills BOTH KubeShare controllers at 7 s — DevMgr mid-lifecycle with
/// every wave-1 workload running, Sched with whatever its queue held —
/// and restarts them at 9 s; wave 2 arrives only after the rebuild, so
/// its placements exercise the reconstructed pool.
struct RestartResult {
  std::size_t completed = 0;
  std::size_t failed = 0;
  bool invariants_ok = false;
  std::string pool_dump;
  std::uint64_t rebuilds = 0;
  std::uint64_t rebuilt_vgpus = 0;
  std::uint64_t sched_crashes = 0;
  metrics::RecoveryMetrics recovery;
  std::string timeline;
};

constexpr int kWaveJobs = 6;

RestartResult RunRestartScenario(bool crash, std::uint64_t seed = 2026,
                                 bool spatial = false) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 4;
  ccfg.gpus_per_node = 2;
  ccfg.component_resync = Seconds(1);
  if (spatial) {
    ccfg.spatial.enabled = true;
    ccfg.spatial.sm_groups = 7;
  }
  k8s::Cluster cluster(ccfg);

  kubeshare::KubeShareConfig kcfg;
  kcfg.pool_policy = kubeshare::PoolPolicy::kReservation;
  kcfg.reconcile_period = Seconds(1);
  kcfg.requeue_lost_workloads = true;
  kubeshare::KubeShare kubeshare(&cluster, kcfg);
  workload::WorkloadHost host(&cluster);
  EXPECT_TRUE(cluster.Start().ok());
  EXPECT_TRUE(kubeshare.Start().ok());

  auto submit_wave = [&](int wave, Duration start) {
    for (int i = 0; i < kWaveJobs; ++i) {
      const std::string name =
          "job-" + std::to_string(wave) + "-" + std::to_string(i);
      cluster.sim().ScheduleAfter(start + Millis(200) * i, [&, name, wave,
                                                           i] {
        // ~10 s of wall-clock work at demand 0.4 for wave 1, so every
        // wave-1 container is still mid-run across the crash window.
        workload::InferenceSpec spec =
            workload::InferenceSpec::ForDemand(0.4, 400, Millis(10));
        spec.seed = seed + static_cast<std::uint64_t>(wave * 100 + i);
        host.ExpectJob(name, [spec] {
          return std::make_unique<workload::InferenceJob>(spec);
        });
        kubeshare::SharePod sp;
        sp.meta.name = name;
        sp.spec.gpu.gpu_request = 0.45;
        sp.spec.gpu.gpu_limit = 1.0;
        sp.spec.gpu.gpu_mem = 0.3;
        if (spatial) {
          // Mixed 2/3-group claims: two per device, at distinct offsets,
          // so the rebuilt pool has real slice placements to reproduce.
          sp.spec.gpu.slice_groups = (i % 2 == 0) ? 3 : 2;
        }
        EXPECT_TRUE(kubeshare.CreateSharePod(sp).ok());
      });
    }
  };
  submit_wave(1, Seconds(0));
  submit_wave(2, Seconds(25));

  if (crash) {
    cluster.sim().ScheduleAfter(Seconds(7), [&] {
      kubeshare.devmgr().Crash();
      kubeshare.sched().Crash();
    });
    cluster.sim().ScheduleAfter(Seconds(9), [&] {
      EXPECT_TRUE(kubeshare.devmgr().Restart().ok());
      EXPECT_TRUE(kubeshare.sched().Restart().ok());
    });
  }

  const Time deadline = Minutes(5);
  const auto total = static_cast<std::size_t>(2 * kWaveJobs);
  while (cluster.sim().Now() < deadline) {
    cluster.sim().RunUntil(cluster.sim().Now() + Seconds(1));
    if (host.completed() + host.failed() == total) break;
  }
  cluster.sim().RunUntil(cluster.sim().Now() + Seconds(5));

  RestartResult out;
  out.completed = host.completed();
  out.failed = host.failed();
  out.invariants_ok = kubeshare.pool().CheckIndexInvariants().ok();
  out.pool_dump = kubeshare.pool().DebugString();
  out.rebuilds = kubeshare.devmgr().rebuilds();
  out.rebuilt_vgpus = kubeshare.devmgr().rebuilt_vgpus();
  out.sched_crashes = kubeshare.sched().crashes();
  out.recovery = metrics::CollectRecoveryMetrics(cluster, &kubeshare);
  std::ostringstream timeline;
  cluster.api().events().Print(timeline);
  out.timeline = timeline.str();
  return out;
}

TEST(CrashRestart, BothControllersCrashEveryJobStillCompletes) {
  const RestartResult r = RunRestartScenario(/*crash=*/true);
  SCOPED_TRACE(r.timeline);
  EXPECT_EQ(r.completed, static_cast<std::size_t>(2 * kWaveJobs));
  EXPECT_EQ(r.failed, 0u);
  // The crash really tore the controllers down and DevMgr really rebuilt.
  EXPECT_EQ(r.rebuilds, 1u);
  EXPECT_EQ(r.sched_crashes, 1u);
  EXPECT_GT(r.rebuilt_vgpus, 0u);
  EXPECT_TRUE(r.invariants_ok);
  EXPECT_GE(r.recovery.controller_crashes, 2u);
  EXPECT_GE(r.recovery.controller_rebuilds, 1u);
}

TEST(CrashRestart, RebuiltPoolByteEqualToUncrashedRun) {
  const RestartResult crashed = RunRestartScenario(/*crash=*/true);
  const RestartResult clean = RunRestartScenario(/*crash=*/false);
  SCOPED_TRACE(crashed.timeline);
  // Same seed, same workload: once both runs quiesce, the pool rebuilt
  // from apiserver state is byte-identical to the pool that never died —
  // same GPUIDs, nodes, UUID bindings, lifecycle states and reservations.
  EXPECT_TRUE(crashed.invariants_ok);
  EXPECT_TRUE(clean.invariants_ok);
  EXPECT_FALSE(clean.pool_dump.empty());  // reservation policy keeps vGPUs
  EXPECT_EQ(crashed.pool_dump, clean.pool_dump);
  EXPECT_EQ(crashed.completed, clean.completed);
  EXPECT_EQ(crashed.failed, clean.failed);
}

TEST(CrashRestart, SpatialRebuiltPoolRestoresSlicePlacementsByteEqual) {
  // Spatial variant of the byte-equality oracle: the crashed DevMgr must
  // re-attach every recovered sharePod at the exact slice offset the
  // scheduler persisted in its spec — DebugString includes each device's
  // slice picture, so a relocated or leaked slice cannot pass.
  const RestartResult crashed =
      RunRestartScenario(/*crash=*/true, 2026, /*spatial=*/true);
  const RestartResult clean =
      RunRestartScenario(/*crash=*/false, 2026, /*spatial=*/true);
  SCOPED_TRACE(crashed.timeline);
  EXPECT_TRUE(crashed.invariants_ok);
  EXPECT_TRUE(clean.invariants_ok);
  EXPECT_FALSE(clean.pool_dump.empty());
  EXPECT_NE(clean.pool_dump.find("slices="), std::string::npos)
      << clean.pool_dump;
  EXPECT_EQ(crashed.pool_dump, clean.pool_dump);
  EXPECT_EQ(crashed.completed, clean.completed);
  EXPECT_EQ(crashed.failed, clean.failed);
  EXPECT_EQ(crashed.rebuilds, 1u);
  EXPECT_GT(crashed.rebuilt_vgpus, 0u);
}

TEST(CrashRestart, CrashScenarioIsDeterministic) {
  const RestartResult a = RunRestartScenario(/*crash=*/true);
  const RestartResult b = RunRestartScenario(/*crash=*/true);
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.pool_dump, b.pool_dump);
  EXPECT_EQ(a.recovery.update_conflicts, b.recovery.update_conflicts);
}

/// kDropWatchEvent coverage: the apiserver silently loses pod watch
/// notifications; the component_resync relist plus DevMgr's reconcile
/// pass must repair whatever was stranded, and running extra reconcile
/// passes at quiescence must change nothing (idempotency).
TEST(WatchDropRecovery, DroppedEventsConvergeViaResync) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 4;
  ccfg.gpus_per_node = 2;
  ccfg.component_resync = Seconds(1);
  k8s::Cluster cluster(ccfg);

  kubeshare::KubeShareConfig kcfg;
  kcfg.reconcile_period = Seconds(1);
  kcfg.requeue_lost_workloads = true;
  kubeshare::KubeShare kubeshare(&cluster, kcfg);
  workload::WorkloadHost host(&cluster);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(kubeshare.Start().ok());

  constexpr int kJobs = 12;
  for (int i = 0; i < kJobs; ++i) {
    const std::string name = "job-" + std::to_string(i);
    cluster.sim().ScheduleAfter(Millis(300) * i, [&, name, i] {
      workload::InferenceSpec spec =
          workload::InferenceSpec::ForDemand(0.4, 100, Millis(10));
      spec.seed = 99 + static_cast<std::uint64_t>(i);
      host.ExpectJob(name, [spec] {
        return std::make_unique<workload::InferenceJob>(spec);
      });
      kubeshare::SharePod sp;
      sp.meta.name = name;
      sp.spec.gpu.gpu_request = 0.45;
      sp.spec.gpu.gpu_limit = 1.0;
      sp.spec.gpu.gpu_mem = 0.3;
      EXPECT_TRUE(kubeshare.CreateSharePod(sp).ok());
    });
  }

  // Lose bursts of pod watch notifications across the whole lifecycle:
  // during launch, mid-run, and around the first completions.
  chaos::FaultPlan plan;
  for (const double at : {1.0, 2.5, 4.0}) {
    chaos::Fault f;
    f.at = Seconds(at);
    f.kind = chaos::FaultKind::kDropWatchEvent;
    f.drop_count = 4;
    plan.faults.push_back(f);
  }
  chaos::FaultInjector injector(&cluster, plan);
  injector.SetKubeShare(&kubeshare);
  ASSERT_TRUE(injector.Arm().ok());

  const Time deadline = Minutes(5);
  while (cluster.sim().Now() < deadline) {
    cluster.sim().RunUntil(cluster.sim().Now() + Seconds(1));
    if (host.completed() + host.failed() ==
        static_cast<std::size_t>(kJobs)) {
      break;
    }
  }
  cluster.sim().RunUntil(cluster.sim().Now() + Seconds(5));

  std::ostringstream timeline;
  cluster.api().events().Print(timeline);
  SCOPED_TRACE(timeline.str());
  EXPECT_EQ(host.completed(), static_cast<std::size_t>(kJobs));
  EXPECT_EQ(host.failed(), 0u);
  const auto recovery = metrics::CollectRecoveryMetrics(cluster, &kubeshare);
  // Bursts injected while the store was quiet stay pending, so assert on
  // the notifications verifiably lost, not the full 12 requested.
  EXPECT_GE(recovery.watch_events_dropped, 8u);
  EXPECT_GT(recovery.reconcile_passes, 0u);
  // Idempotency: once converged, further resync passes are pure no-ops.
  const std::string pool_before = kubeshare.pool().DebugString();
  const std::uint64_t requeued_before =
      kubeshare.devmgr().sharepods_requeued();
  kubeshare.devmgr().ReconcileOnce();
  kubeshare.devmgr().ReconcileOnce();
  cluster.sim().RunUntil(cluster.sim().Now() + Seconds(2));
  EXPECT_EQ(kubeshare.pool().DebugString(), pool_before);
  EXPECT_EQ(kubeshare.devmgr().sharepods_requeued(), requeued_before);
  EXPECT_TRUE(kubeshare.pool().CheckIndexInvariants().ok());
}

}  // namespace
}  // namespace ks
