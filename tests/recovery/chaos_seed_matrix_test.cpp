#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/recovery.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

namespace ks {
namespace {

/// CI runs this suite once per seed in its fixed matrix (11 23 37 41 53)
/// via KS_CHAOS_SEED; locally, unset, it exercises the first of them.
std::uint64_t ChaosSeed() {
  if (const char* env = std::getenv("KS_CHAOS_SEED")) {
    const unsigned long long v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 11;
}

/// Randomized fault soup over the full vocabulary — node crashes, daemon
/// restarts, OOM kills, dropped watch events, latency spikes, plus this
/// PR's controller crashes — against the churn workload. Whatever the
/// seed draws, the cluster must converge: every job completes, nothing
/// leaks, the rebuilt pool passes its invariants.
TEST(ChaosSeedMatrix, RandomPlanConvergesForSeed) {
  const std::uint64_t seed = ChaosSeed();
  SCOPED_TRACE("KS_CHAOS_SEED=" + std::to_string(seed));

  k8s::ClusterConfig ccfg;
  ccfg.nodes = 4;
  ccfg.gpus_per_node = 2;
  ccfg.node_detection = Seconds(1);
  ccfg.pod_eviction_timeout = Seconds(2);
  ccfg.component_resync = Seconds(1);
  k8s::Cluster cluster(ccfg);

  kubeshare::KubeShareConfig kcfg;
  kcfg.reconcile_period = Seconds(1);
  kcfg.requeue_lost_workloads = true;
  kubeshare::KubeShare kubeshare(&cluster, kcfg);
  workload::WorkloadHost host(&cluster);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(kubeshare.Start().ok());

  constexpr int kJobs = 16;
  for (int i = 0; i < kJobs; ++i) {
    const std::string name = "job-" + std::to_string(i);
    cluster.sim().ScheduleAfter(Millis(400) * i, [&, name, i] {
      workload::InferenceSpec spec =
          workload::InferenceSpec::ForDemand(0.4, 100, Millis(10));
      spec.seed = seed + static_cast<std::uint64_t>(i);
      host.ExpectJob(name, [spec] {
        return std::make_unique<workload::InferenceJob>(spec);
      });
      kubeshare::SharePod sp;
      sp.meta.name = name;
      sp.spec.gpu.gpu_request = 0.45;
      sp.spec.gpu.gpu_limit = 1.0;
      sp.spec.gpu.gpu_mem = 0.3;
      EXPECT_TRUE(kubeshare.CreateSharePod(sp).ok());
    });
  }

  chaos::RandomPlanOptions opts;
  opts.seed = seed;
  opts.start = Seconds(2);
  opts.horizon = Seconds(30);
  opts.fault_count = 10;
  for (int n = 0; n < ccfg.nodes; ++n) {
    opts.nodes.push_back("node-" + std::to_string(n));
  }
  opts.outage_min = Seconds(4);
  opts.outage_max = Seconds(10);
  opts.devmgr_crash_weight = 1.0;
  opts.sched_crash_weight = 1.0;
  const chaos::FaultPlan plan = chaos::FaultPlan::Random(opts);
  SCOPED_TRACE(plan.ToString());
  chaos::FaultInjector injector(&cluster, plan);
  injector.SetKubeShare(&kubeshare);
  ASSERT_TRUE(injector.Arm().ok());

  const Time deadline = Minutes(5);
  while (cluster.sim().Now() < deadline) {
    cluster.sim().RunUntil(cluster.sim().Now() + Seconds(1));
    if (host.completed() + host.failed() ==
        static_cast<std::size_t>(kJobs)) {
      break;
    }
  }
  cluster.sim().RunUntil(cluster.sim().Now() + Seconds(10));

  std::ostringstream timeline;
  cluster.api().events().Print(timeline);
  SCOPED_TRACE(timeline.str());

  EXPECT_EQ(host.completed(), static_cast<std::size_t>(kJobs));
  EXPECT_EQ(host.failed(), 0u);
  EXPECT_TRUE(kubeshare.pool().CheckIndexInvariants().ok());
  const auto& stats = injector.stats();
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_EQ(stats.recoveries_timed_out, 0u);
  // Nothing non-terminal left behind.
  std::size_t nonterminal = 0;
  for (const k8s::Pod& p : cluster.api().pods().List()) {
    if (!p.terminal()) ++nonterminal;
  }
  EXPECT_EQ(nonterminal, 0u);
}

/// Adversarial variant of the matrix: the random soup now includes the
/// kTenant* attacks (plus two scripted ones so every seed provably turns
/// at least one tenant hostile), against a cluster with isolation
/// enforcement dialed to zero tolerance (first violation clamps AND
/// evicts). Hostile tenants wedge by design — an overstayed hook's
/// submissions are dropped at the fence and its job never finishes on its
/// own — so convergence here means: every polite job completes, every
/// attacked tenant is promptly evicted to a terminal failed sharePod, and
/// nothing is left non-terminal.
TEST(ChaosSeedMatrix, AdversarialPlanConvergesForSeed) {
  const std::uint64_t seed = ChaosSeed();
  SCOPED_TRACE("KS_CHAOS_SEED=" + std::to_string(seed));

  k8s::ClusterConfig ccfg;
  ccfg.nodes = 4;
  ccfg.gpus_per_node = 2;
  ccfg.node_detection = Seconds(1);
  ccfg.pod_eviction_timeout = Seconds(2);
  ccfg.component_resync = Seconds(1);
  ccfg.backend.enforcement.enabled = true;
  ccfg.backend.enforcement.clamp_threshold = 1;
  ccfg.backend.enforcement.evict_threshold = 1;
  k8s::Cluster cluster(ccfg);

  kubeshare::KubeShareConfig kcfg;
  kcfg.reconcile_period = Seconds(1);
  kcfg.requeue_lost_workloads = true;
  kubeshare::KubeShare kubeshare(&cluster, kcfg);
  workload::WorkloadHost host(&cluster);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(kubeshare.Start().ok());

  constexpr int kJobs = 16;
  for (int i = 0; i < kJobs; ++i) {
    const std::string name = "job-" + std::to_string(i);
    cluster.sim().ScheduleAfter(Millis(400) * i, [&, name, i] {
      // Long jobs (~4 s of device time) keep tenants running across the
      // whole attack window, so hostile faults always find a victim.
      workload::InferenceSpec spec =
          workload::InferenceSpec::ForDemand(0.45, 400, Millis(10));
      spec.seed = seed + static_cast<std::uint64_t>(i);
      host.ExpectJob(name, [spec] {
        return std::make_unique<workload::InferenceJob>(spec);
      });
      kubeshare::SharePod sp;
      sp.meta.name = name;
      sp.spec.gpu.gpu_request = 0.45;
      sp.spec.gpu.gpu_limit = 1.0;
      sp.spec.gpu.gpu_mem = 0.3;
      EXPECT_TRUE(kubeshare.CreateSharePod(sp).ok());
    });
  }

  chaos::RandomPlanOptions opts;
  opts.seed = seed;
  opts.start = Seconds(6);  // past the ~5 s pod-start pipeline
  opts.horizon = Seconds(20);
  opts.fault_count = 8;
  for (int n = 0; n < ccfg.nodes; ++n) {
    opts.nodes.push_back("node-" + std::to_string(n));
  }
  opts.outage_min = Seconds(4);
  opts.outage_max = Seconds(8);
  opts.tenant_overstay_weight = 1.0;
  opts.tenant_flood_weight = 1.0;
  opts.tenant_probe_weight = 0.5;
  opts.tenant_spoof_weight = 0.5;
  chaos::FaultPlan plan = chaos::FaultPlan::Random(opts);
  {
    // Two scripted attacks on top of the soup: whatever the seed draws,
    // this seed's run turns at least one tenant hostile while jobs are
    // provably running.
    chaos::Fault overstay;
    overstay.at = Seconds(8);
    overstay.kind = chaos::FaultKind::kTenantTokenOverstay;
    overstay.duration = Seconds(5);
    plan.faults.push_back(overstay);
    chaos::Fault flood;
    flood.at = Seconds(8) + Millis(500);
    flood.kind = chaos::FaultKind::kTenantKernelFlood;
    flood.duration = Seconds(5);
    plan.faults.push_back(flood);
  }
  SCOPED_TRACE(plan.ToString());
  chaos::FaultInjector injector(&cluster, plan);
  injector.SetKubeShare(&kubeshare);
  injector.SetWorkloadHost(&host);
  ASSERT_TRUE(injector.Arm().ok());

  // A provisional failure (node crash, OOM kill) requeues and restarts, so
  // completed+failed can touch kJobs and then drop back while the retry
  // runs — quiescence additionally needs every pod terminal.
  const auto all_terminal = [&] {
    for (const k8s::Pod& p : cluster.api().pods().List()) {
      if (!p.terminal()) return false;
    }
    return true;
  };
  const Time deadline = Minutes(5);
  while (cluster.sim().Now() < deadline) {
    cluster.sim().RunUntil(cluster.sim().Now() + Seconds(1));
    if (host.completed() + host.failed() ==
            static_cast<std::size_t>(kJobs) &&
        all_terminal()) {
      break;
    }
  }
  cluster.sim().RunUntil(cluster.sim().Now() + Seconds(10));

  std::ostringstream timeline;
  cluster.api().events().Print(timeline);
  SCOPED_TRACE(timeline.str());

  // Convergence under attack: every job reaches a terminal state — polite
  // ones complete, attacked ones are evicted (failed) by the enforcer.
  EXPECT_EQ(host.completed() + host.failed(),
            static_cast<std::size_t>(kJobs));
  EXPECT_TRUE(kubeshare.pool().CheckIndexInvariants().ok());
  const auto& stats = injector.stats();
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_EQ(stats.recoveries_timed_out, 0u);
  EXPECT_GT(stats.tenant_overstays + stats.tenant_floods +
                stats.tenant_probes + stats.tenant_spoofs,
            0u)
      << "no tenant ever turned hostile — the adversarial matrix is vacuous";
  // The scripted overstay guarantees at least one violation is attributed
  // and, at evict_threshold=1, at least one eviction.
  std::uint64_t violations = 0;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    violations += cluster.node(n).token_backend->violations_total();
  }
  EXPECT_GT(violations, 0u);
  EXPECT_GT(kubeshare.devmgr().tenants_evicted(), 0u);
  // Nothing non-terminal left behind.
  std::size_t nonterminal = 0;
  for (const k8s::Pod& p : cluster.api().pods().List()) {
    if (!p.terminal()) ++nonterminal;
  }
  EXPECT_EQ(nonterminal, 0u);
}

/// The matrix is deterministic per seed: the same seed replays the same
/// plan to the same timeline, so a CI failure reproduces locally with
/// KS_CHAOS_SEED=<seed>.
TEST(ChaosSeedMatrix, SameSeedSamePlan) {
  chaos::RandomPlanOptions opts;
  opts.seed = ChaosSeed();
  opts.fault_count = 12;
  opts.nodes = {"node-0", "node-1"};
  opts.devmgr_crash_weight = 1.0;
  opts.sched_crash_weight = 1.0;
  opts.leader_partition_weight = 0.5;
  const chaos::FaultPlan a = chaos::FaultPlan::Random(opts);
  const chaos::FaultPlan b = chaos::FaultPlan::Random(opts);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.faults.size(), 12u);
}

}  // namespace
}  // namespace ks
