// Crash-restart tests for the SLO autoscaler (ROADMAP item 4 satellite).
//
// The controller's crash-safety contract: the scale decision lives in the
// replicaset's desired count (the store), not in the controller. A crashed
// and restarted autoscaler must resume from the surviving desired count —
// the fleet keeps serving at the scaled size through the outage, and a
// restarted controller converges to the same final size as a twin whose
// controller never crashed. CI replays this across the KS_CHAOS_SEED
// matrix; the seed drives the crash schedule.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/autoscaler.hpp"
#include "kubeshare/kubeshare.hpp"
#include "kubeshare/replicaset.hpp"
#include "serving/service.hpp"
#include "workload/host.hpp"

namespace ks::kubeshare {
namespace {

std::uint64_t ChaosSeed() {
  if (const char* env = std::getenv("KS_CHAOS_SEED")) {
    const unsigned long long v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 11;
}

struct ServingStack {
  k8s::Cluster cluster;
  KubeShare kubeshare;
  workload::WorkloadHost host;
  std::unique_ptr<serving::ServiceFrontend> frontend;
  std::unique_ptr<SharePodReplicaSet> rs;
  std::unique_ptr<SloAutoscaler> scaler;

  explicit ServingStack(std::uint64_t seed)
      : cluster(MakeClusterConfig()), kubeshare(&cluster), host(&cluster) {
    EXPECT_TRUE(cluster.Start().ok());
    EXPECT_TRUE(kubeshare.Start().ok());

    serving::ServiceConfig cfg;
    cfg.name = "svc";
    // Flash crowd against a 10ms/request replica: 1-2 replicas melt, the
    // autoscaler has real work to do.
    cfg.envelope = serving::RateEnvelope::FlashCrowd(
        30.0, 260.0, Seconds(10.0), Seconds(2.0), Seconds(25.0));
    cfg.slo_p99 = Millis(250);
    cfg.until = Seconds(55.0);
    cfg.seed = seed;
    cfg.replica.kernel_per_request = Millis(10);
    cfg.replica.model_bytes = 256ull << 20;
    frontend = std::make_unique<serving::ServiceFrontend>(&cluster, &host, cfg);

    SharePodReplicaSet::Spec spec;
    spec.name = "svc";
    spec.replicas = 2;
    spec.template_spec.gpu.gpu_request = 0.45;
    spec.template_spec.gpu.gpu_limit = 1.0;
    spec.template_spec.gpu.gpu_mem = 0.15;
    rs = std::make_unique<SharePodReplicaSet>(&kubeshare, spec);
    rs->SetReplicaHook(frontend->MakeReplicaHook());
    EXPECT_TRUE(rs->Start().ok());

    AutoscalerConfig acfg;
    acfg.slo_p99 = cfg.slo_p99;
    acfg.min_replicas = 1;
    acfg.max_replicas = 8;
    acfg.period = Seconds(1.0);
    acfg.up_cooldown = Seconds(2.0);
    acfg.down_cooldown = Seconds(10.0);
    scaler = std::make_unique<SloAutoscaler>(
        &cluster.sim(), cluster.tick_hub(), rs.get(), acfg,
        frontend->MakeAutoscalerProbe());
    EXPECT_TRUE(scaler->Start().ok());
    frontend->Start();
  }

  static k8s::ClusterConfig MakeClusterConfig() {
    k8s::ClusterConfig ccfg;
    ccfg.nodes = 2;
    ccfg.gpus_per_node = 2;
    return ccfg;
  }
};

TEST(AutoscalerRecovery, ScaleDecisionSurvivesControllerCrash) {
  const std::uint64_t seed = ChaosSeed();
  SCOPED_TRACE("KS_CHAOS_SEED=" + std::to_string(seed));

  ServingStack stack(seed);
  // Let the flash crowd hit and the controller scale up.
  stack.cluster.sim().RunUntil(Seconds(20.0));
  const int scaled = stack.rs->desired();
  EXPECT_GT(scaled, 2) << "flash crowd did not trigger a scale-up";

  // Controller dies mid-crowd. The fleet must hold its size: the store is
  // the replicaset, and nothing else is allowed to reset it.
  stack.scaler->Crash();
  stack.cluster.sim().RunUntil(Seconds(28.0));
  EXPECT_EQ(stack.rs->desired(), scaled);
  EXPECT_GE(stack.rs->live(), static_cast<std::size_t>(scaled) - 1);

  // Restarted controller resumes from the surviving count and eventually
  // scales back down once the crowd passes.
  stack.scaler->Restart();
  stack.cluster.sim().RunUntil(Seconds(140.0));
  EXPECT_EQ(stack.rs->desired(), 1);
  EXPECT_GT(stack.scaler->scale_downs(), 0u);
  EXPECT_EQ(stack.scaler->crashes(), 1u);

  // The service itself rode through the controller outage.
  EXPECT_GT(stack.frontend->served(), 0u);
  EXPECT_EQ(stack.frontend->arrived(),
            stack.frontend->served() + stack.frontend->shed() +
                stack.frontend->lost());
}

TEST(AutoscalerRecovery, CrashedControllerConvergesLikeUncrashedTwin) {
  const std::uint64_t seed = ChaosSeed();
  SCOPED_TRACE("KS_CHAOS_SEED=" + std::to_string(seed));

  // Twin A: controller crashes at a seed-drawn point inside the crowd and
  // restarts a few seconds later. Twin B: never crashes.
  Rng rng(seed);
  const double crash_at = rng.Uniform(12.0, 30.0);
  const double restart_after = rng.Uniform(2.0, 6.0);

  ServingStack a(seed);
  a.cluster.sim().RunUntil(Seconds(crash_at));
  a.scaler->Crash();
  a.cluster.sim().RunUntil(Seconds(crash_at + restart_after));
  a.scaler->Restart();
  a.cluster.sim().RunUntil(Seconds(140.0));

  ServingStack b(seed);
  b.cluster.sim().RunUntil(Seconds(140.0));

  // Same steady state: crowd over, both controllers shrank to min.
  EXPECT_EQ(a.rs->desired(), b.rs->desired());
  EXPECT_EQ(a.rs->desired(), 1);
  // Both twins terminally accounted every request.
  EXPECT_EQ(a.frontend->arrived(),
            a.frontend->served() + a.frontend->shed() + a.frontend->lost());
  EXPECT_EQ(b.frontend->arrived(),
            b.frontend->served() + b.frontend->shed() + b.frontend->lost());
  // The crash window can delay scale-ups (decisions missed while down),
  // so request totals may differ between twins; the arrival stream cannot.
  EXPECT_EQ(a.frontend->arrived(), b.frontend->arrived());
}

}  // namespace
}  // namespace ks::kubeshare
