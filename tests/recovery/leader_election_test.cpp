#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "k8s/apiserver.hpp"
#include "k8s/leader_election.hpp"
#include "k8s/store.hpp"
#include "kubeshare/kubeshare.hpp"
#include "sim/simulation.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

namespace ks {
namespace {

k8s::LeaderElectorConfig Candidate(const std::string& identity) {
  k8s::LeaderElectorConfig cfg;
  cfg.lease_name = "test-lease";
  cfg.identity = identity;
  cfg.lease_duration = Seconds(10);
  cfg.renew_period = Seconds(3);
  cfg.retry_period = Seconds(2);
  return cfg;
}

TEST(LeaderElection, FirstCandidateWinsAndRenews) {
  sim::Simulation sim;
  k8s::ApiServer api(&sim);
  k8s::LeaderElector a(&api, Candidate("a"));
  a.Start();
  sim.RunUntil(Seconds(1));
  EXPECT_TRUE(a.IsLeader());
  EXPECT_EQ(a.fencing_token(), 1u);
  EXPECT_EQ(a.elections_won(), 1u);
  // Renewals keep the lease fresh well past lease_duration without a new
  // election (the token stays 1).
  sim.RunUntil(Seconds(60));
  EXPECT_TRUE(a.IsLeader());
  EXPECT_EQ(a.fencing_token(), 1u);
  EXPECT_EQ(a.elections_won(), 1u);
}

TEST(LeaderElection, StandbyTakesOverAfterPartitionWithHigherToken) {
  sim::Simulation sim;
  k8s::ApiServer api(&sim);
  k8s::LeaderElector a(&api, Candidate("a"));
  k8s::LeaderElector b(&api, Candidate("b"));
  a.Start();
  sim.RunUntil(Seconds(1));
  b.Start();
  sim.RunUntil(Seconds(5));
  ASSERT_TRUE(a.IsLeader());
  ASSERT_FALSE(b.IsLeader());

  // Blackhole a's lease traffic: it stops renewing but does not learn it
  // was deposed.
  a.SetPartitioned(true);
  sim.RunUntil(Seconds(30));
  EXPECT_TRUE(b.IsLeader());
  EXPECT_EQ(b.fencing_token(), 2u);
  EXPECT_TRUE(a.IsLeader());  // still believes — partition, not stop

  // Heal: a's next renewal observes the new holder and steps down.
  a.SetPartitioned(false);
  sim.RunUntil(Seconds(40));
  EXPECT_FALSE(a.IsLeader());
  EXPECT_TRUE(b.IsLeader());
  EXPECT_GE(a.stepdowns(), 1u);
}

TEST(LeaderElection, FencingRejectsEveryStaleWriteZeroApplied) {
  sim::Simulation sim;
  k8s::ApiServer api(&sim);
  k8s::LeaderElector a(&api, Candidate("a"));
  k8s::LeaderElector b(&api, Candidate("b"));
  a.RegisterGate(&api.pods().fencing());
  b.RegisterGate(&api.pods().fencing());
  a.Start();
  sim.RunUntil(Seconds(1));
  b.Start();

  k8s::Pod pod;
  pod.meta.name = "victim";
  ASSERT_TRUE(api.pods().Create(pod).ok());

  a.SetPartitioned(true);
  sim.RunUntil(Seconds(30));
  ASSERT_TRUE(b.IsLeader());
  ASSERT_EQ(api.pods().fencing().floor(), b.fencing_token());

  // The deposed leader keeps writing with its stale token. Every single
  // attempt must bounce off the gate and leave the object untouched.
  const std::uint64_t version_before =
      api.pods().Get("victim")->meta.resource_version;
  const std::uint64_t rejected_before = api.pods().fencing().rejected();
  constexpr int kStaleWrites = 5;
  for (int i = 0; i < kStaleWrites; ++i) {
    const Status s = k8s::RetryOnConflict(
        api.pods(), "victim",
        [&](k8s::Pod& p) {
          p.meta.labels["stale"] = "true";
          return Status::Ok();
        },
        a.fencing_token());
    EXPECT_FALSE(s.ok());
  }
  EXPECT_EQ(api.pods().fencing().rejected(),
            rejected_before + kStaleWrites);
  const auto after = api.pods().Get("victim");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->meta.resource_version, version_before);  // 0 applied
  EXPECT_EQ(after->meta.labels.count("stale"), 0u);

  // The new leader's token passes.
  EXPECT_TRUE(k8s::RetryOnConflict(
                  api.pods(), "victim",
                  [](k8s::Pod& p) {
                    p.meta.labels["owner"] = "b";
                    return Status::Ok();
                  },
                  b.fencing_token())
                  .ok());
}

/// End-to-end: the KubeShare facade campaigning for its lease, a standby
/// taking over when the leader is partitioned mid-workload, and the
/// deposed controllers' writes all landing as fenced rejections.
TEST(LeaderElection, KubeShareFacadeSurvivesLeaderPartition) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 4;
  ccfg.gpus_per_node = 2;
  ccfg.component_resync = Seconds(1);
  k8s::Cluster cluster(ccfg);

  kubeshare::KubeShareConfig kcfg;
  kcfg.reconcile_period = Seconds(1);
  kcfg.requeue_lost_workloads = true;
  kcfg.enable_leader_election = true;
  kubeshare::KubeShare kubeshare(&cluster, kcfg);
  workload::WorkloadHost host(&cluster);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(kubeshare.Start().ok());
  ASSERT_NE(kubeshare.elector(), nullptr);

  constexpr int kJobs = 8;
  for (int i = 0; i < kJobs; ++i) {
    const std::string name = "job-" + std::to_string(i);
    cluster.sim().ScheduleAfter(Millis(400) * i, [&, name, i] {
      workload::InferenceSpec spec =
          workload::InferenceSpec::ForDemand(0.4, 600, Millis(10));
      spec.seed = 7 + static_cast<std::uint64_t>(i);
      host.ExpectJob(name, [spec] {
        return std::make_unique<workload::InferenceJob>(spec);
      });
      kubeshare::SharePod sp;
      sp.meta.name = name;
      sp.spec.gpu.gpu_request = 0.45;
      sp.spec.gpu.gpu_limit = 1.0;
      sp.spec.gpu.gpu_mem = 0.3;
      EXPECT_TRUE(kubeshare.CreateSharePod(sp).ok());
    });
  }
  cluster.sim().RunUntil(Seconds(2));
  ASSERT_TRUE(kubeshare.elector()->IsLeader());

  // A standby replica campaigning for the same lease, guarding the same
  // stores.
  k8s::LeaderElector standby(
      &cluster.api(),
      [&] {
        k8s::LeaderElectorConfig cfg = kubeshare.elector()->config();
        cfg.identity = "kubeshare-1";
        return cfg;
      }());
  standby.RegisterGate(&kubeshare.sharepods().fencing());
  standby.RegisterGate(&cluster.api().pods().fencing());
  standby.Start();

  // Partition the active leader mid-workload (jobs are ~15 s of work, so
  // plenty of controller write traffic happens while it is deposed).
  cluster.sim().ScheduleAfter(Seconds(6), [&] {
    kubeshare.elector()->SetPartitioned(true);
  });

  const Time deadline = Minutes(5);
  while (cluster.sim().Now() < deadline) {
    cluster.sim().RunUntil(cluster.sim().Now() + Seconds(1));
    if (host.completed() + host.failed() ==
        static_cast<std::size_t>(kJobs)) {
      break;
    }
  }
  cluster.sim().RunUntil(cluster.sim().Now() + Seconds(5));

  EXPECT_TRUE(standby.IsLeader());
  EXPECT_EQ(standby.fencing_token(), 2u);
  // The deposed controllers kept emitting writes with token 1; the gate
  // floor is 2, so every one of them was rejected — none applied.
  const std::uint64_t fenced = kubeshare.sharepods().fencing().rejected() +
                               cluster.api().pods().fencing().rejected();
  EXPECT_GT(fenced, 0u);
  EXPECT_GE(kubeshare.sharepods().fencing().floor(), 2u);
  EXPECT_GE(cluster.api().pods().fencing().floor(), 2u);
}

}  // namespace
}  // namespace ks
