// Batched watch fan-out (WatchFanout::kBatched + WatchHub): the delivery
// economy must be invisible to watchers. These tests pin the three claims
// the scale path rests on: (1) watcher-visible streams are byte-identical
// to the unbatched path, (2) resource versions inside a batch arrive in
// store order, and (3) an informer that loses its watch and resyncs ends
// byte-equal to the store without losing or double-applying an event.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "k8s/objects.hpp"
#include "k8s/store.hpp"
#include "sim/simulation.hpp"

namespace ks::k8s {
namespace {

Pod MakePod(const std::string& name) {
  Pod p;
  p.meta.name = name;
  return p;
}

const char* TypeName(WatchEventType type) {
  switch (type) {
    case WatchEventType::kAdded:
      return "A";
    case WatchEventType::kModified:
      return "M";
    case WatchEventType::kDeleted:
      return "D";
  }
  return "?";
}

/// Runs a fixed mutation script against a store in the given fan-out mode
/// and returns the full watcher-visible trace: every (watcher, event) with
/// its delivery time and resource version, in execution order.
struct ScriptResult {
  std::string trace;
  std::uint64_t engine_events = 0;  // fan-out events actually armed
  std::uint64_t deliveries = 0;
};

ScriptResult RunScript(WatchFanout fanout) {
  sim::Simulation sim;
  ObjectStore<Pod> store(&sim, Millis(1), fanout);
  ScriptResult out;

  auto watcher = [&](const char* tag) {
    return [&, tag](const WatchEvent<Pod>& ev) {
      out.trace += tag;
      out.trace += TypeName(ev.type);
      out.trace += " " + ev.object.meta.name + " v" +
                   std::to_string(ev.object.meta.resource_version) + " @" +
                   std::to_string(sim.Now().count()) + "\n";
    };
  };
  store.Watch(watcher("w1:"));
  store.Watch(watcher("w2:"));

  // Burst of same-time mutations (the fan-out hot case), then spread-out
  // ones, then deletes — all three event types, two watchers.
  sim.ScheduleAt(Millis(5), [&] {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(store.Create(MakePod("pod-" + std::to_string(i))).ok());
    }
  });
  sim.ScheduleAt(Millis(9), [&] {
    auto pod = store.Get("pod-3");
    pod->status.phase = PodPhase::kRunning;
    ASSERT_TRUE(store.Update(*pod).ok());
    ASSERT_TRUE(store.Delete("pod-5").ok());
  });
  sim.ScheduleAt(Millis(20), [&] {
    auto pod = store.Get("pod-0");
    pod->status.phase = PodPhase::kSucceeded;
    ASSERT_TRUE(store.Update(*pod).ok());
  });
  sim.RunUntil(Millis(50));

  out.deliveries = store.watch_deliveries();
  out.engine_events = fanout == WatchFanout::kBatched
                          ? store.watch_hub()->batches()
                          : store.unbatched_fanout_events();
  return out;
}

TEST(StoreBatch, WatcherStreamByteEqualToUnbatched) {
  const ScriptResult unbatched = RunScript(WatchFanout::kUnbatched);
  const ScriptResult batched = RunScript(WatchFanout::kBatched);
  ASSERT_FALSE(unbatched.trace.empty());
  EXPECT_EQ(batched.trace, unbatched.trace);
  EXPECT_EQ(batched.deliveries, unbatched.deliveries);
  // The economy is real: one engine event per distinct delivery time
  // instead of one per (event, watcher) pair.
  EXPECT_EQ(unbatched.engine_events, unbatched.deliveries);
  EXPECT_LT(batched.engine_events, batched.deliveries);
}

TEST(StoreBatch, ResourceVersionsOrderedWithinBatch) {
  sim::Simulation sim;
  ObjectStore<Pod> store(&sim, Millis(1), WatchFanout::kBatched);
  std::vector<std::uint64_t> versions;
  Time batch_time = kTimeZero;
  store.Watch([&](const WatchEvent<Pod>& ev) {
    versions.push_back(ev.object.meta.resource_version);
    batch_time = sim.Now();
  });
  // 16 mutations in one instant -> one delivery batch.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(store.Create(MakePod("p" + std::to_string(i))).ok());
  }
  sim.RunUntil(Millis(5));
  ASSERT_EQ(versions.size(), 16u);
  EXPECT_EQ(batch_time, Millis(1));
  EXPECT_EQ(store.watch_hub()->batches(), 1u);
  for (std::size_t i = 1; i < versions.size(); ++i) {
    EXPECT_LT(versions[i - 1], versions[i])
        << "resource versions out of order within a batch at " << i;
  }
}

TEST(StoreBatch, SharedHubPreservesCrossStoreOrder) {
  // Two stores interleaving same-time mutations: with a shared hub the
  // combined stream must match the unbatched interleaving exactly.
  auto run = [](WatchFanout fanout) {
    sim::Simulation sim;
    WatchHub hub(&sim);
    WatchHub* hub_ptr = fanout == WatchFanout::kBatched ? &hub : nullptr;
    ObjectStore<Pod> pods(&sim, Millis(1), fanout, hub_ptr);
    ObjectStore<Node> nodes(&sim, Millis(1), fanout, hub_ptr);
    std::string trace;
    pods.Watch([&](const WatchEvent<Pod>& ev) {
      trace += "pod:" + ev.object.meta.name + "\n";
    });
    nodes.Watch([&](const WatchEvent<Node>& ev) {
      trace += "node:" + ev.object.meta.name + "\n";
    });
    sim.ScheduleAt(Millis(2), [&] {
      for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(pods.Create(MakePod("p" + std::to_string(i))).ok());
        Node n;
        n.meta.name = "n" + std::to_string(i);
        ASSERT_TRUE(nodes.Create(std::move(n)).ok());
      }
    });
    sim.RunUntil(Millis(10));
    return trace;
  };
  const std::string unbatched = run(WatchFanout::kUnbatched);
  ASSERT_FALSE(unbatched.empty());
  EXPECT_EQ(run(WatchFanout::kBatched), unbatched);
}

TEST(StoreBatch, WatcherRegisteredDuringBatchSeesNoDuplicate) {
  sim::Simulation sim;
  ObjectStore<Pod> store(&sim, Millis(1), WatchFanout::kBatched);
  std::map<std::string, int> late_seen;
  int first_events = 0;
  store.Watch([&](const WatchEvent<Pod>&) {
    if (++first_events == 1) {
      // Mid-batch registration: the replay (kAdded of current state) must
      // be the only thing the late watcher sees for existing objects.
      store.Watch([&](const WatchEvent<Pod>& ev) {
        ++late_seen[ev.object.meta.name];
      });
    }
  });
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.Create(MakePod("p" + std::to_string(i))).ok());
  }
  sim.RunUntil(Millis(10));
  ASSERT_EQ(late_seen.size(), 4u);
  for (const auto& [name, count] : late_seen) {
    EXPECT_EQ(count, 1) << name << " delivered " << count << " times";
  }
}

// The informer crash/resync invariant the DevMgr path relies on: a watcher
// that loses its watch (crash), misses mutations, and resyncs by
// re-watching (the list+watch replay) converges to the store byte-for-byte
// — nothing lost, nothing applied twice — under batched fan-out.
TEST(StoreBatch, CrashResyncLosesNothingDuplicatesNothing) {
  sim::Simulation sim;
  ObjectStore<Pod> store(&sim, Millis(1), WatchFanout::kBatched);

  // The mirror is version-guarded exactly like DevMgr's: replayed events
  // older than what it already holds are skipped, so a resync replay can
  // never double-apply.
  std::map<std::string, std::uint64_t> mirror;  // name -> resource_version
  std::map<std::string, int> applied;           // name:version -> times
  WatchId watch = 0;
  auto on_event = [&](const WatchEvent<Pod>& ev) {
    const std::string& name = ev.object.meta.name;
    const std::uint64_t version = ev.object.meta.resource_version;
    if (ev.type == WatchEventType::kDeleted) {
      mirror.erase(name);
      return;
    }
    auto it = mirror.find(name);
    if (it != mirror.end() && it->second >= version) return;  // stale replay
    mirror[name] = version;
    ++applied[name + ":" + std::to_string(version)];
  };

  watch = store.Watch(on_event);
  sim.ScheduleAt(Millis(2), [&] {
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(store.Create(MakePod("p" + std::to_string(i))).ok());
    }
  });
  // Crash: the watch drops mid-run...
  sim.ScheduleAt(Millis(4), [&] { store.Unwatch(watch); });
  // ...mutations land while nobody is watching...
  sim.ScheduleAt(Millis(6), [&] {
    auto pod = store.Get("p1");
    pod->status.phase = PodPhase::kRunning;
    ASSERT_TRUE(store.Update(*pod).ok());
    ASSERT_TRUE(store.Delete("p2").ok());
    ASSERT_TRUE(store.Create(MakePod("p6")).ok());
  });
  // ...and the resync re-watches: existing objects replay as kAdded, and
  // the relist prunes mirror entries whose kDeleted events are gone for
  // good (the informer's delete-detection half of list+watch).
  sim.ScheduleAt(Millis(8), [&] {
    for (auto it = mirror.begin(); it != mirror.end();) {
      it = store.Contains(it->first) ? std::next(it) : mirror.erase(it);
    }
    watch = store.Watch(on_event);
  });
  // Post-resync traffic must flow normally again.
  sim.ScheduleAt(Millis(12), [&] {
    auto pod = store.Get("p3");
    pod->status.phase = PodPhase::kRunning;
    ASSERT_TRUE(store.Update(*pod).ok());
  });
  sim.RunUntil(Millis(20));

  // Mirror == store, exactly.
  std::map<std::string, std::uint64_t> want;
  store.ForEach([&](const Pod& pod) {
    want[pod.meta.name] = pod.meta.resource_version;
  });
  EXPECT_EQ(mirror, want);
  // No (name, version) applied more than once.
  for (const auto& [key, count] : applied) {
    EXPECT_EQ(count, 1) << key << " applied " << count << " times";
  }
}

TEST(StoreBatch, DroppedEventsRepairedByResync) {
  // The apiserver-side loss mode (DropEvents) composed with batching: the
  // mutation is silently unnotified, and only a relist repairs the mirror.
  sim::Simulation sim;
  ObjectStore<Pod> store(&sim, Millis(1), WatchFanout::kBatched);
  std::map<std::string, std::uint64_t> mirror;
  auto on_event = [&](const WatchEvent<Pod>& ev) {
    if (ev.type == WatchEventType::kDeleted) {
      mirror.erase(ev.object.meta.name);
      return;
    }
    auto it = mirror.find(ev.object.meta.name);
    if (it != mirror.end() && it->second >= ev.object.meta.resource_version) {
      return;
    }
    mirror[ev.object.meta.name] = ev.object.meta.resource_version;
  };
  const WatchId watch = store.Watch(on_event);
  sim.ScheduleAt(Millis(2), [&] {
    ASSERT_TRUE(store.Create(MakePod("a")).ok());
    store.DropEvents(1);
    ASSERT_TRUE(store.Create(MakePod("b")).ok());  // lost at the apiserver
  });
  sim.RunUntil(Millis(5));
  EXPECT_EQ(mirror.count("b"), 0u);  // genuinely lost, not reordered
  // Resync: unwatch + rewatch replays the full state.
  store.Unwatch(watch);
  store.Watch(on_event);
  sim.RunUntil(Millis(10));
  EXPECT_EQ(mirror.count("b"), 1u);
  EXPECT_EQ(mirror.size(), store.size());
}

}  // namespace
}  // namespace ks::k8s
