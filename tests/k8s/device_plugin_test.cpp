#include "k8s/device_plugin.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace ks::k8s {
namespace {

class DevicePluginTest : public ::testing::Test {
 protected:
  DevicePluginTest() {
    for (int i = 0; i < 2; ++i) {
      gpus_.push_back(std::make_unique<gpu::GpuDevice>(
          &sim_, GpuUuid("GPU-" + std::to_string(i))));
      raw_.push_back(gpus_.back().get());
    }
  }

  sim::Simulation sim_;
  std::vector<std::unique_ptr<gpu::GpuDevice>> gpus_;
  std::vector<gpu::GpuDevice*> raw_;
};

TEST_F(DevicePluginTest, NvidiaListsOneUnitPerGpu) {
  NvidiaDevicePlugin plugin(raw_);
  EXPECT_EQ(plugin.resource_name(), kResourceNvidiaGpu);
  auto devices = plugin.ListDevices();
  ASSERT_EQ(devices.size(), 2u);
  EXPECT_EQ(devices[0].id, "GPU-0");
  EXPECT_EQ(devices[1].id, "GPU-1");
}

TEST_F(DevicePluginTest, NvidiaAllocateSetsVisibleDevices) {
  NvidiaDevicePlugin plugin(raw_);
  auto resp = plugin.Allocate({"GPU-1"});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->env.at(kNvidiaVisibleDevices), "GPU-1");
  auto multi = plugin.Allocate({"GPU-0", "GPU-1"});
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->env.at(kNvidiaVisibleDevices), "GPU-0,GPU-1");
}

TEST_F(DevicePluginTest, NvidiaAllocateRejectsUnknownOrEmpty) {
  NvidiaDevicePlugin plugin(raw_);
  EXPECT_FALSE(plugin.Allocate({}).ok());
  EXPECT_FALSE(plugin.Allocate({"GPU-9"}).ok());
}

TEST_F(DevicePluginTest, ScaledAdvertisesScaleUnitsPerGpu) {
  ScaledNvidiaDevicePlugin plugin(raw_, 100);
  auto devices = plugin.ListDevices();
  EXPECT_EQ(devices.size(), 200u);
  EXPECT_EQ(devices.front().id, "GPU-0#0");
  EXPECT_EQ(devices.back().id, "GPU-1#99");
}

TEST_F(DevicePluginTest, ScaledAllocateBindsToFirstUnitsGpu) {
  ScaledNvidiaDevicePlugin plugin(raw_, 100);
  auto resp = plugin.Allocate({"GPU-0#3", "GPU-0#4"});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->env.at(kNvidiaVisibleDevices), "GPU-0");
}

TEST_F(DevicePluginTest, ScaledAllocateStraddlingGpusSilentlyOvercommits) {
  ScaledNvidiaDevicePlugin plugin(raw_, 100);
  // 50 units from GPU-0 + 10 from GPU-1: the container is still attached
  // only to GPU-0 — the §3.1 fragmentation failure mode.
  std::vector<std::string> units;
  for (int i = 50; i < 100; ++i) units.push_back("GPU-0#" + std::to_string(i));
  for (int i = 0; i < 10; ++i) units.push_back("GPU-1#" + std::to_string(i));
  auto resp = plugin.Allocate(units);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->env.at(kNvidiaVisibleDevices), "GPU-0");
}

TEST_F(DevicePluginTest, ScaledGpuOfUnit) {
  ScaledNvidiaDevicePlugin plugin(raw_, 10);
  auto owner = plugin.GpuOfUnit("GPU-1#7");
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, "GPU-1");
  EXPECT_FALSE(plugin.GpuOfUnit("GPU-1").ok());
  EXPECT_FALSE(plugin.GpuOfUnit("GPU-9#0").ok());
}

TEST_F(DevicePluginTest, ScaledRejectsNonPositiveScale) {
  ScaledNvidiaDevicePlugin plugin(raw_, 0);
  EXPECT_EQ(plugin.scale(), 1);
}

}  // namespace
}  // namespace ks::k8s
