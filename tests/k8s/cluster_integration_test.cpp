#include "k8s/cluster.hpp"

#include <gtest/gtest.h>

namespace ks::k8s {
namespace {

Pod GpuPod(const std::string& name, int gpus = 1) {
  Pod p;
  p.meta.name = name;
  p.spec.requests.Set(kResourceCpu, 4000);
  p.spec.requests.Set(kResourceMemory, 8ll << 30);
  if (gpus > 0) p.spec.requests.Set(kResourceNvidiaGpu, gpus);
  return p;
}

class ClusterTest : public ::testing::Test {
 protected:
  static ClusterConfig SmallCluster() {
    ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.gpus_per_node = 2;
    return cfg;
  }

  ClusterTest() : cluster_(SmallCluster()) {}

  Cluster cluster_;
};

TEST_F(ClusterTest, StartRegistersNodes) {
  ASSERT_TRUE(cluster_.Start().ok());
  cluster_.sim().Run();
  EXPECT_EQ(cluster_.api().nodes().size(), 2u);
  auto node = cluster_.api().nodes().Get("node-0");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->capacity.Get(kResourceNvidiaGpu), 2);
  EXPECT_EQ(node->capacity.Get(kResourceCpu), 36000);
}

TEST_F(ClusterTest, PodIsScheduledAndRuns) {
  ASSERT_TRUE(cluster_.Start().ok());
  ASSERT_TRUE(cluster_.api().pods().Create(GpuPod("job-1")).ok());
  cluster_.sim().RunUntil(Seconds(10));
  auto pod = cluster_.api().pods().Get("job-1");
  ASSERT_TRUE(pod.ok());
  EXPECT_EQ(pod->status.phase, PodPhase::kRunning);
  EXPECT_FALSE(pod->status.node_name.empty());
  // Device plugin env is visible on the pod status.
  EXPECT_EQ(pod->status.effective_env.count(kNvidiaVisibleDevices), 1u);
}

TEST_F(ClusterTest, StartHookReceivesResolvedGpus) {
  ASSERT_TRUE(cluster_.Start().ok());
  std::vector<ContainerInstance> started;
  cluster_.SetContainerStartHook(
      [&](const ContainerInstance& inst) { started.push_back(inst); });
  ASSERT_TRUE(cluster_.api().pods().Create(GpuPod("job-1")).ok());
  cluster_.sim().RunUntil(Seconds(10));
  ASSERT_EQ(started.size(), 1u);
  ASSERT_EQ(started[0].visible_gpus.size(), 1u);
  EXPECT_EQ(started[0].pod_name, "job-1");
}

TEST_F(ClusterTest, ExitPodContainerCompletesPod) {
  ASSERT_TRUE(cluster_.Start().ok());
  ASSERT_TRUE(cluster_.api().pods().Create(GpuPod("job-1")).ok());
  cluster_.sim().RunUntil(Seconds(10));
  ASSERT_TRUE(cluster_.ExitPodContainer("job-1", true).ok());
  cluster_.sim().RunUntil(Seconds(11));
  auto pod = cluster_.api().pods().Get("job-1");
  EXPECT_EQ(pod->status.phase, PodPhase::kSucceeded);
}

TEST_F(ClusterTest, WholeGpuAllocationIsExclusive) {
  ASSERT_TRUE(cluster_.Start().ok());
  // 4 GPUs in the cluster; the 5th pod must wait.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        cluster_.api().pods().Create(GpuPod("job-" + std::to_string(i))).ok());
  }
  cluster_.sim().RunUntil(Seconds(20));
  int running = 0, pending = 0;
  for (const Pod& p : cluster_.api().pods().List()) {
    if (p.status.phase == PodPhase::kRunning) ++running;
    if (p.status.phase == PodPhase::kPending) ++pending;
  }
  EXPECT_EQ(running, 4);
  EXPECT_EQ(pending, 1);

  // Finish one job; the waiting pod gets its GPU via scheduler retry.
  ASSERT_TRUE(cluster_.ExitPodContainer("job-0", true).ok());
  cluster_.sim().RunUntil(Seconds(40));
  running = 0;
  for (const Pod& p : cluster_.api().pods().List()) {
    if (p.status.phase == PodPhase::kRunning) ++running;
  }
  EXPECT_EQ(running, 4);
  EXPECT_GE(cluster_.scheduler().retry_count(), 1u);
}

TEST_F(ClusterTest, SchedulerSpreadsAcrossNodes) {
  ASSERT_TRUE(cluster_.Start().ok());
  ASSERT_TRUE(cluster_.api().pods().Create(GpuPod("a")).ok());
  ASSERT_TRUE(cluster_.api().pods().Create(GpuPod("b")).ok());
  cluster_.sim().RunUntil(Seconds(10));
  auto a = cluster_.api().pods().Get("a");
  auto b = cluster_.api().pods().Get("b");
  EXPECT_NE(a->status.node_name, b->status.node_name);
}

TEST_F(ClusterTest, PreBoundPodBypassesScheduler) {
  ASSERT_TRUE(cluster_.Start().ok());
  Pod p = GpuPod("direct", 0);
  p.status.node_name = "node-1";  // bound at creation, KubeShare-style
  p.spec.env[kNvidiaVisibleDevices] = "GPU-1-0";
  ASSERT_TRUE(cluster_.api().pods().Create(p).ok());
  cluster_.sim().RunUntil(Seconds(10));
  auto pod = cluster_.api().pods().Get("direct");
  EXPECT_EQ(pod->status.phase, PodPhase::kRunning);
  EXPECT_EQ(pod->status.node_name, "node-1");
  EXPECT_EQ(cluster_.scheduler().scheduled_count(), 0u);
}

TEST_F(ClusterTest, PodDeletionKillsContainer) {
  ASSERT_TRUE(cluster_.Start().ok());
  std::vector<std::string> stopped;
  cluster_.SetContainerStopHook(
      [&](const ContainerInstance& inst) { stopped.push_back(inst.pod_name); });
  ASSERT_TRUE(cluster_.api().pods().Create(GpuPod("victim")).ok());
  cluster_.sim().RunUntil(Seconds(10));
  ASSERT_TRUE(cluster_.api().pods().Delete("victim").ok());
  cluster_.sim().RunUntil(Seconds(15));
  ASSERT_EQ(stopped.size(), 1u);
  EXPECT_EQ(stopped[0], "victim");
  // The GPU unit is free again: a new pod can use it.
  ASSERT_TRUE(cluster_.api().pods().Create(GpuPod("next")).ok());
  cluster_.sim().RunUntil(Seconds(30));
  EXPECT_EQ(cluster_.api().pods().Get("next")->status.phase,
            PodPhase::kRunning);
}

TEST_F(ClusterTest, NodeSelectorRestrictsPlacement) {
  ClusterConfig cfg = SmallCluster();
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.Start().ok());
  cluster.sim().Run();
  // Label node-1 after registration.
  auto node = cluster.api().nodes().Get("node-1");
  node->meta.labels["zone"] = "a";
  ASSERT_TRUE(cluster.api().nodes().Update(*node).ok());
  Pod p = GpuPod("picky");
  p.spec.node_selector["zone"] = "a";
  ASSERT_TRUE(cluster.api().pods().Create(p).ok());
  cluster.sim().RunUntil(Seconds(10));
  EXPECT_EQ(cluster.api().pods().Get("picky")->status.node_name, "node-1");
}

TEST_F(ClusterTest, OversizedPodStaysPendingForever) {
  ASSERT_TRUE(cluster_.Start().ok());
  ASSERT_TRUE(cluster_.api().pods().Create(GpuPod("huge", 3)).ok());
  cluster_.sim().RunUntil(Seconds(10));
  EXPECT_EQ(cluster_.api().pods().Get("huge")->status.phase,
            PodPhase::kPending);
  EXPECT_GE(cluster_.scheduler().retry_count(), 1u);
}

TEST_F(ClusterTest, FindGpuAndBackend) {
  ASSERT_TRUE(cluster_.Start().ok());
  gpu::GpuDevice* dev = cluster_.FindGpu(GpuUuid("GPU-1-1"));
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(dev->uuid().value(), "GPU-1-1");
  EXPECT_NE(cluster_.BackendForGpu(GpuUuid("GPU-1-1")), nullptr);
  EXPECT_EQ(cluster_.FindGpu(GpuUuid("GPU-9-9")), nullptr);
  EXPECT_EQ(cluster_.BackendForGpu(GpuUuid("GPU-9-9")), nullptr);
}

TEST_F(ClusterTest, ScaledPluginAdvertisesScaledCapacity) {
  ClusterConfig cfg = SmallCluster();
  cfg.scaled_plugin = true;
  cfg.plugin_scale = 100;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.Start().ok());
  cluster.sim().Run();
  auto node = cluster.api().nodes().Get("node-0");
  EXPECT_EQ(node->capacity.Get(kResourceNvidiaGpu), 200);
}

}  // namespace
}  // namespace ks::k8s
