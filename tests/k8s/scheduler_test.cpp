#include "k8s/scheduler.hpp"

#include <gtest/gtest.h>

#include "k8s/apiserver.hpp"

namespace ks::k8s {
namespace {

/// Direct unit tests of the kube-scheduler against a bare apiserver (no
/// kubelets): nodes are registered by hand so filters and scoring can be
/// exercised precisely; pods are "scheduled" when BindPod lands.
class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : api_(&sim_), sched_(&api_) {
    EXPECT_TRUE(sched_.Start().ok());
  }

  void AddNode(const std::string& name, std::int64_t cpu, std::int64_t gpus,
               std::map<std::string, std::string> labels = {}) {
    Node node;
    node.meta.name = name;
    node.meta.labels = std::move(labels);
    node.capacity.Set(kResourceCpu, cpu);
    if (gpus > 0) node.capacity.Set(kResourceNvidiaGpu, gpus);
    ASSERT_TRUE(api_.nodes().Create(node).ok());
  }

  void AddPod(const std::string& name, std::int64_t cpu, std::int64_t gpus,
              std::map<std::string, std::string> selector = {}) {
    Pod pod;
    pod.meta.name = name;
    pod.spec.requests.Set(kResourceCpu, cpu);
    if (gpus > 0) pod.spec.requests.Set(kResourceNvidiaGpu, gpus);
    pod.spec.node_selector = std::move(selector);
    ASSERT_TRUE(api_.pods().Create(pod).ok());
  }

  std::string NodeOf(const std::string& pod) {
    return api_.pods().Get(pod)->status.node_name;
  }

  sim::Simulation sim_;
  ApiServer api_;
  KubeScheduler sched_;
};

TEST_F(SchedulerTest, BindsToOnlyFittingNode) {
  AddNode("small", 1000, 0);
  AddNode("big", 8000, 0);
  AddPod("p", 4000, 0);
  sim_.RunUntil(Seconds(2));
  EXPECT_EQ(NodeOf("p"), "big");
  EXPECT_EQ(sched_.scheduled_count(), 1u);
}

TEST_F(SchedulerTest, LeastAllocatedSpreads) {
  AddNode("n1", 8000, 0);
  AddNode("n2", 8000, 0);
  AddPod("p1", 2000, 0);
  AddPod("p2", 2000, 0);
  sim_.RunUntil(Seconds(2));
  EXPECT_NE(NodeOf("p1"), NodeOf("p2"));
}

TEST_F(SchedulerTest, GpuCountsAreAggregatePerNode) {
  AddNode("n1", 8000, 2);
  AddPod("p1", 100, 2);
  AddPod("p2", 100, 1);
  sim_.RunUntil(Seconds(2));
  EXPECT_EQ(NodeOf("p1"), "n1");
  EXPECT_TRUE(NodeOf("p2").empty());  // no GPUs left
  EXPECT_GE(sched_.retry_count(), 1u);
}

TEST_F(SchedulerTest, NodeSelectorFiltersHard) {
  AddNode("n1", 8000, 0, {{"disk", "hdd"}});
  AddNode("n2", 8000, 0, {{"disk", "ssd"}});
  AddPod("p", 100, 0, {{"disk", "ssd"}});
  sim_.RunUntil(Seconds(2));
  EXPECT_EQ(NodeOf("p"), "n2");
}

TEST_F(SchedulerTest, UnreadyNodeIsSkipped) {
  AddNode("n1", 8000, 0);
  auto node = api_.nodes().Get("n1");
  node->ready = false;
  ASSERT_TRUE(api_.nodes().Update(*node).ok());
  sim_.RunUntil(Seconds(1));
  AddPod("p", 100, 0);
  sim_.RunUntil(Seconds(3));
  EXPECT_TRUE(NodeOf("p").empty());
}

TEST_F(SchedulerTest, RetryEventuallyBindsWhenCapacityFrees) {
  AddNode("n1", 1000, 0);
  AddPod("p1", 1000, 0);
  AddPod("p2", 1000, 0);
  sim_.RunUntil(Seconds(3));
  EXPECT_TRUE(NodeOf("p2").empty());
  // p1 finishes; its reservation is released on the terminal update.
  ASSERT_TRUE(api_.SetPodPhase("p1", PodPhase::kSucceeded).ok());
  sim_.RunUntil(Seconds(6));
  EXPECT_EQ(NodeOf("p2"), "n1");
}

TEST_F(SchedulerTest, DeletedPendingPodIsNotBound) {
  AddNode("n1", 1000, 0);
  AddPod("p1", 1000, 0);
  AddPod("p2", 1000, 0);
  sim_.RunUntil(Seconds(2));
  ASSERT_TRUE(api_.pods().Delete("p2").ok());
  ASSERT_TRUE(api_.SetPodPhase("p1", PodPhase::kSucceeded).ok());
  sim_.RunUntil(Seconds(6));
  EXPECT_EQ(sched_.scheduled_count(), 1u);
}

TEST_F(SchedulerTest, PreBoundPodsAreAccounted) {
  AddNode("n1", 2000, 0);
  // A pod bound by an external controller (the KubeShare path).
  Pod direct;
  direct.meta.name = "direct";
  direct.spec.requests.Set(kResourceCpu, 1500);
  direct.status.node_name = "n1";
  ASSERT_TRUE(api_.pods().Create(direct).ok());
  sim_.RunUntil(Seconds(1));
  // The scheduler must see n1 as nearly full.
  AddPod("p", 1000, 0);
  sim_.RunUntil(Seconds(3));
  EXPECT_TRUE(NodeOf("p").empty());
  EXPECT_EQ(sched_.AllocatedOn("n1").Get(kResourceCpu), 1500);
}

TEST_F(SchedulerTest, TerminalPodReleasesReservation) {
  AddNode("n1", 1000, 0);
  AddPod("p1", 800, 0);
  sim_.RunUntil(Seconds(2));
  EXPECT_EQ(sched_.AllocatedOn("n1").Get(kResourceCpu), 800);
  ASSERT_TRUE(api_.SetPodPhase("p1", PodPhase::kFailed).ok());
  sim_.RunUntil(Seconds(3));
  EXPECT_EQ(sched_.AllocatedOn("n1").Get(kResourceCpu), 0);
}

TEST_F(SchedulerTest, DoubleStartRejected) {
  EXPECT_FALSE(sched_.Start().ok());
}

TEST_F(SchedulerTest, SchedulingCycleTakesModeledTime) {
  AddNode("n1", 8000, 0);
  AddPod("p", 100, 0);
  // sched_fixed (10 ms) + 1 node * sched_per_node (1 ms) + watch latency.
  sim_.RunUntil(Millis(5));
  EXPECT_TRUE(NodeOf("p").empty());
  sim_.RunUntil(Millis(50));
  EXPECT_EQ(NodeOf("p"), "n1");
}

}  // namespace
}  // namespace ks::k8s
