#include "k8s/kubelet.hpp"

#include <gtest/gtest.h>

#include "k8s/apiserver.hpp"
#include "k8s/device_plugin.hpp"
#include "k8s/runtime.hpp"

namespace ks::k8s {
namespace {

/// Direct kubelet tests against a bare apiserver: pods are bound by hand
/// (no scheduler), exercising admission, device-unit bookkeeping and the
/// failure paths precisely.
class KubeletTest : public ::testing::Test {
 protected:
  KubeletTest() {
    for (int i = 0; i < 2; ++i) {
      gpus_.push_back(std::make_unique<gpu::GpuDevice>(
          &sim_, GpuUuid("GPU-" + std::to_string(i))));
      raw_.push_back(gpus_.back().get());
    }
    plugin_ = std::make_unique<NvidiaDevicePlugin>(raw_);
    runtime_ = std::make_unique<ContainerRuntime>(&sim_, "node-0", raw_,
                                                  LatencyModel{});
    ResourceList machine;
    machine.Set(kResourceCpu, 4000);
    machine.Set(kResourceMemory, 16ll << 30);
    kubelet_ = std::make_unique<Kubelet>(api_.get(), "node-0", machine,
                                         runtime_.get(), plugin_.get());
    EXPECT_TRUE(kubelet_->Start().ok());
  }

  /// Creates a pod already bound to node-0.
  void BoundPod(const std::string& name, std::int64_t cpu, std::int64_t gpus) {
    Pod pod;
    pod.meta.name = name;
    pod.spec.requests.Set(kResourceCpu, cpu);
    if (gpus > 0) pod.spec.requests.Set(kResourceNvidiaGpu, gpus);
    pod.status.node_name = "node-0";
    ASSERT_TRUE(api_->pods().Create(pod).ok());
  }

  PodPhase PhaseOf(const std::string& name) {
    return api_->pods().Get(name)->status.phase;
  }

  sim::Simulation sim_;
  std::unique_ptr<ApiServer> api_ = std::make_unique<ApiServer>(&sim_);
  std::vector<std::unique_ptr<gpu::GpuDevice>> gpus_;
  std::vector<gpu::GpuDevice*> raw_;
  std::unique_ptr<NvidiaDevicePlugin> plugin_;
  std::unique_ptr<ContainerRuntime> runtime_;
  std::unique_ptr<Kubelet> kubelet_;
};

TEST_F(KubeletTest, RegistersNodeWithPluginCapacity) {
  sim_.Run();
  auto node = api_->nodes().Get("node-0");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->capacity.Get(kResourceNvidiaGpu), 2);
  EXPECT_EQ(node->capacity.Get(kResourceCpu), 4000);
  EXPECT_EQ(node->meta.labels.at("kubernetes.io/hostname"), "node-0");
}

TEST_F(KubeletTest, RunsBoundPodAndInjectsDeviceEnv) {
  BoundPod("p", 1000, 1);
  sim_.RunUntil(Seconds(5));
  EXPECT_EQ(PhaseOf("p"), PodPhase::kRunning);
  const auto& env = api_->pods().Get("p")->status.effective_env;
  EXPECT_EQ(env.at(kNvidiaVisibleDevices), "GPU-0");
  EXPECT_EQ(kubelet_->FreeDeviceUnits(), 1u);
  EXPECT_EQ(kubelet_->UnitsOf("p").size(), 1u);
}

TEST_F(KubeletTest, AdmissionRejectsOverCpu) {
  BoundPod("big", 5000, 0);
  sim_.RunUntil(Seconds(5));
  EXPECT_EQ(PhaseOf("big"), PodPhase::kFailed);
  EXPECT_EQ(api_->pods().Get("big")->status.message, "OutOfResources");
  EXPECT_EQ(kubelet_->allocated().Get(kResourceCpu), 0);
}

TEST_F(KubeletTest, AdmissionRejectsWhenDevicesExhausted) {
  BoundPod("a", 100, 2);
  sim_.RunUntil(Seconds(5));
  ASSERT_EQ(PhaseOf("a"), PodPhase::kRunning);
  // The kube-scheduler would normally prevent this; a direct binding that
  // over-commits devices must fail kubelet admission (the aggregate
  // capacity check fires before unit picking, so the message is the
  // generic OutOfResources).
  BoundPod("b", 100, 1);
  sim_.RunUntil(Seconds(10));
  EXPECT_EQ(PhaseOf("b"), PodPhase::kFailed);
  EXPECT_EQ(api_->pods().Get("b")->status.message, "OutOfResources");
}

TEST_F(KubeletTest, UnitsPickedFirstFit) {
  BoundPod("a", 100, 1);
  sim_.RunUntil(Seconds(5));
  EXPECT_EQ(kubelet_->UnitsOf("a")[0], "GPU-0");
  BoundPod("b", 100, 1);
  sim_.RunUntil(Seconds(10));
  EXPECT_EQ(kubelet_->UnitsOf("b")[0], "GPU-1");
}

TEST_F(KubeletTest, ExitReleasesResourcesAndUnits) {
  BoundPod("p", 1000, 1);
  sim_.RunUntil(Seconds(5));
  ASSERT_TRUE(runtime_->ExitContainerByPod("p", true).ok());
  sim_.RunUntil(Seconds(6));
  EXPECT_EQ(PhaseOf("p"), PodPhase::kSucceeded);
  EXPECT_EQ(kubelet_->allocated().Get(kResourceCpu), 0);
  EXPECT_EQ(kubelet_->FreeDeviceUnits(), 2u);
  EXPECT_TRUE(kubelet_->UnitsOf("p").empty());
}

TEST_F(KubeletTest, FailedExitMarksPodFailed) {
  BoundPod("p", 1000, 0);
  sim_.RunUntil(Seconds(5));
  ASSERT_TRUE(runtime_->ExitContainerByPod("p", false).ok());
  sim_.RunUntil(Seconds(6));
  EXPECT_EQ(PhaseOf("p"), PodPhase::kFailed);
}

TEST_F(KubeletTest, DeletionDuringSyncIsSafe) {
  BoundPod("p", 1000, 1);
  // Delete before the kubelet_sync delay elapses.
  sim_.RunUntil(Millis(50));
  ASSERT_TRUE(api_->pods().Delete("p").ok());
  sim_.RunUntil(Seconds(5));
  EXPECT_EQ(kubelet_->allocated().Get(kResourceCpu), 0);
  EXPECT_EQ(kubelet_->FreeDeviceUnits(), 2u);
  EXPECT_EQ(runtime_->running_containers(), 0u);
}

TEST_F(KubeletTest, IgnoresPodsBoundElsewhere) {
  Pod pod;
  pod.meta.name = "foreign";
  pod.status.node_name = "node-9";
  ASSERT_TRUE(api_->pods().Create(pod).ok());
  sim_.RunUntil(Seconds(5));
  EXPECT_EQ(PhaseOf("foreign"), PodPhase::kPending);
  EXPECT_EQ(runtime_->running_containers(), 0u);
}

TEST_F(KubeletTest, DoubleStartRejected) {
  EXPECT_FALSE(kubelet_->Start().ok());
}

TEST_F(KubeletTest, UnhealthyDeviceLeavesAllocatablePool) {
  sim_.Run();
  ASSERT_TRUE(plugin_->SetDeviceHealth("GPU-0", false).ok());
  ASSERT_TRUE(kubelet_->RefreshDevices().ok());
  sim_.Run();
  EXPECT_EQ(kubelet_->FreeDeviceUnits(), 1u);
  EXPECT_EQ(api_->nodes().Get("node-0")->capacity.Get(kResourceNvidiaGpu), 1);
  // The next pod gets the healthy device, not the sick one.
  BoundPod("p", 100, 1);
  sim_.RunUntil(Seconds(5));
  EXPECT_EQ(PhaseOf("p"), PodPhase::kRunning);
  EXPECT_EQ(kubelet_->UnitsOf("p")[0], "GPU-1");
}

TEST_F(KubeletTest, InUseDeviceTurningUnhealthyStaysAttached) {
  BoundPod("p", 100, 1);
  sim_.RunUntil(Seconds(5));
  ASSERT_EQ(kubelet_->UnitsOf("p")[0], "GPU-0");
  ASSERT_TRUE(plugin_->SetDeviceHealth("GPU-0", false).ok());
  ASSERT_TRUE(kubelet_->RefreshDevices().ok());
  sim_.RunUntil(Seconds(6));
  // The running pod is untouched; the unit just stops being allocatable.
  EXPECT_EQ(PhaseOf("p"), PodPhase::kRunning);
  EXPECT_EQ(kubelet_->FreeDeviceUnits(), 1u);
}

TEST_F(KubeletTest, DeviceRecoveryRestoresCapacity) {
  ASSERT_TRUE(plugin_->SetDeviceHealth("GPU-0", false).ok());
  ASSERT_TRUE(kubelet_->RefreshDevices().ok());
  ASSERT_TRUE(plugin_->SetDeviceHealth("GPU-0", true).ok());
  ASSERT_TRUE(kubelet_->RefreshDevices().ok());
  sim_.Run();
  EXPECT_EQ(kubelet_->FreeDeviceUnits(), 2u);
  EXPECT_EQ(api_->nodes().Get("node-0")->capacity.Get(kResourceNvidiaGpu), 2);
}

TEST_F(KubeletTest, HealthOnUnknownDeviceFails) {
  EXPECT_FALSE(plugin_->SetDeviceHealth("GPU-9", false).ok());
}

}  // namespace
}  // namespace ks::k8s
