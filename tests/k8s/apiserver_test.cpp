#include "k8s/apiserver.hpp"

#include <gtest/gtest.h>

namespace ks::k8s {
namespace {

class ApiServerTest : public ::testing::Test {
 protected:
  ApiServerTest() {
    Node node;
    node.meta.name = "node-0";
    EXPECT_TRUE(api_.nodes().Create(node).ok());
    Pod pod;
    pod.meta.name = "p";
    EXPECT_TRUE(api_.pods().Create(pod).ok());
  }

  sim::Simulation sim_;
  ApiServer api_{&sim_};
};

TEST_F(ApiServerTest, BindPodSetsNodeAndTimestamp) {
  sim_.RunUntil(Seconds(5));
  ASSERT_TRUE(api_.BindPod("p", "node-0").ok());
  auto pod = api_.pods().Get("p");
  EXPECT_EQ(pod->status.node_name, "node-0");
  ASSERT_TRUE(pod->status.scheduled_time.has_value());
  EXPECT_EQ(*pod->status.scheduled_time, Seconds(5));
}

TEST_F(ApiServerTest, BindPodErrorPaths) {
  EXPECT_EQ(api_.BindPod("ghost", "node-0").code(), StatusCode::kNotFound);
  EXPECT_EQ(api_.BindPod("p", "no-node").code(), StatusCode::kNotFound);
  ASSERT_TRUE(api_.BindPod("p", "node-0").ok());
  EXPECT_EQ(api_.BindPod("p", "node-0").code(),
            StatusCode::kFailedPrecondition);  // double bind
}

TEST_F(ApiServerTest, PhaseTransitionsStampTimes) {
  sim_.RunUntil(Seconds(1));
  ASSERT_TRUE(api_.SetPodPhase("p", PodPhase::kRunning).ok());
  sim_.RunUntil(Seconds(9));
  ASSERT_TRUE(api_.SetPodPhase("p", PodPhase::kSucceeded, "done").ok());
  auto pod = api_.pods().Get("p");
  EXPECT_EQ(*pod->status.running_time, Seconds(1));
  EXPECT_EQ(*pod->status.finished_time, Seconds(9));
  EXPECT_EQ(pod->status.message, "done");
  EXPECT_TRUE(pod->terminal());
}

TEST_F(ApiServerTest, SetPodEnvReplacesEffectiveEnv) {
  ASSERT_TRUE(api_.SetPodEnv("p", {{"K", "v"}}).ok());
  EXPECT_EQ(api_.pods().Get("p")->status.effective_env.at("K"), "v");
  EXPECT_EQ(api_.SetPodEnv("ghost", {}).code(), StatusCode::kNotFound);
}

TEST_F(ApiServerTest, PhaseOnMissingPodFails) {
  EXPECT_EQ(api_.SetPodPhase("ghost", PodPhase::kRunning).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace ks::k8s
