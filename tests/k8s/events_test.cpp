#include "k8s/events.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "k8s/cluster.hpp"
#include "k8s/resources.hpp"

namespace ks::k8s {
namespace {

TEST(EventRecorder, RecordsWithTimestamps) {
  sim::Simulation sim;
  EventRecorder recorder(&sim);
  recorder.Record("c1", "pod/a", "Created");
  sim.RunUntil(Seconds(5));
  recorder.Record("c2", "pod/a", "Started", "detail");
  ASSERT_EQ(recorder.events().size(), 2u);
  EXPECT_EQ(recorder.events()[0].at, kTimeZero);
  EXPECT_EQ(recorder.events()[1].at, Seconds(5));
  EXPECT_EQ(recorder.events()[1].message, "detail");
}

TEST(EventRecorder, FilterByObjectAndReason) {
  sim::Simulation sim;
  EventRecorder recorder(&sim);
  recorder.Record("c", "pod/a", "Started");
  recorder.Record("c", "pod/b", "Started");
  recorder.Record("c", "pod/a", "Killed");
  EXPECT_EQ(recorder.For("pod/a").size(), 2u);
  EXPECT_EQ(recorder.For("pod/z").size(), 0u);
  EXPECT_EQ(recorder.CountReason("Started"), 2u);
  EXPECT_EQ(recorder.CountReason("Nope"), 0u);
}

TEST(EventRecorder, PrintTailLimitsOutput) {
  sim::Simulation sim;
  EventRecorder recorder(&sim);
  for (int i = 0; i < 5; ++i) {
    recorder.Record("c", "pod/" + std::to_string(i), "E");
  }
  std::stringstream all_stream, tail_stream;
  recorder.Print(all_stream);
  recorder.Print(tail_stream, 2);
  const std::string all = all_stream.str();
  const std::string tail = tail_stream.str();
  EXPECT_EQ(std::count(all.begin(), all.end(), '\n'), 5);
  EXPECT_EQ(std::count(tail.begin(), tail.end(), '\n'), 2);
  EXPECT_NE(tail.find("pod/4"), std::string::npos);
  EXPECT_EQ(tail.find("pod/0"), std::string::npos);
}

TEST(EventRecorder, ClusterComponentsEmitEvents) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.gpus_per_node = 1;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.Start().ok());
  Pod pod;
  pod.meta.name = "p";
  pod.spec.requests.Set(kResourceNvidiaGpu, 1);
  ASSERT_TRUE(cluster.api().pods().Create(pod).ok());
  cluster.sim().RunUntil(Seconds(10));
  const EventRecorder& events = cluster.api().events();
  EXPECT_EQ(events.CountReason("Scheduled"), 1u);
  EXPECT_EQ(events.CountReason("Started"), 1u);
  // Unschedulable pod leaves FailedScheduling events.
  Pod big;
  big.meta.name = "big";
  big.spec.requests.Set(kResourceNvidiaGpu, 5);
  ASSERT_TRUE(cluster.api().pods().Create(big).ok());
  cluster.sim().RunUntil(Seconds(13));
  EXPECT_GE(events.CountReason("FailedScheduling"), 1u);
}

}  // namespace
}  // namespace ks::k8s
