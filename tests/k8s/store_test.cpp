#include "k8s/store.hpp"

#include <gtest/gtest.h>

#include "k8s/objects.hpp"

namespace ks::k8s {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  Pod MakePod(const std::string& name) {
    Pod p;
    p.meta.name = name;
    return p;
  }

  sim::Simulation sim_;
  ObjectStore<Pod> store_{&sim_};
};

TEST_F(StoreTest, CreateAssignsMetadata) {
  ASSERT_TRUE(store_.Create(MakePod("a")).ok());
  auto got = store_.Get("a");
  ASSERT_TRUE(got.ok());
  EXPECT_GT(got->meta.uid, 0u);
  EXPECT_EQ(got->meta.resource_version, 1u);
}

TEST_F(StoreTest, CreateRejectsDuplicatesAndUnnamed) {
  ASSERT_TRUE(store_.Create(MakePod("a")).ok());
  EXPECT_EQ(store_.Create(MakePod("a")).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(store_.Create(MakePod("")).code(), StatusCode::kInvalidArgument);
}

TEST_F(StoreTest, GetMissingFails) {
  EXPECT_EQ(store_.Get("nope").status().code(), StatusCode::kNotFound);
}

TEST_F(StoreTest, UpdateBumpsVersionPreservesUid) {
  ASSERT_TRUE(store_.Create(MakePod("a")).ok());
  auto pod = store_.Get("a");
  const auto uid = pod->meta.uid;
  pod->status.phase = PodPhase::kRunning;
  ASSERT_TRUE(store_.Update(*pod).ok());
  auto got = store_.Get("a");
  EXPECT_EQ(got->meta.uid, uid);
  EXPECT_EQ(got->meta.resource_version, 2u);
  EXPECT_EQ(got->status.phase, PodPhase::kRunning);
}

TEST_F(StoreTest, UpdateMissingFails) {
  EXPECT_EQ(store_.Update(MakePod("ghost")).code(), StatusCode::kNotFound);
}

TEST_F(StoreTest, DeleteRemoves) {
  ASSERT_TRUE(store_.Create(MakePod("a")).ok());
  ASSERT_TRUE(store_.Delete("a").ok());
  EXPECT_FALSE(store_.Contains("a"));
  EXPECT_EQ(store_.Delete("a").code(), StatusCode::kNotFound);
}

TEST_F(StoreTest, ListReturnsAll) {
  store_.Create(MakePod("a"));
  store_.Create(MakePod("b"));
  EXPECT_EQ(store_.List().size(), 2u);
  EXPECT_EQ(store_.size(), 2u);
}

TEST_F(StoreTest, WatchDeliversEventsAsynchronously) {
  std::vector<WatchEventType> events;
  store_.Watch([&](const WatchEvent<Pod>& ev) { events.push_back(ev.type); });
  store_.Create(MakePod("a"));
  // Nothing is delivered synchronously.
  EXPECT_TRUE(events.empty());
  sim_.Run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], WatchEventType::kAdded);

  auto pod = store_.Get("a");
  store_.Update(*pod);
  store_.Delete("a");
  sim_.Run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1], WatchEventType::kModified);
  EXPECT_EQ(events[2], WatchEventType::kDeleted);
}

TEST_F(StoreTest, LateWatcherReplaysExistingObjects) {
  store_.Create(MakePod("a"));
  store_.Create(MakePod("b"));
  sim_.Run();
  std::vector<std::string> seen;
  store_.Watch(
      [&](const WatchEvent<Pod>& ev) { seen.push_back(ev.object.meta.name); });
  sim_.Run();
  EXPECT_EQ(seen.size(), 2u);
}

TEST_F(StoreTest, UnwatchStopsDelivery) {
  int events = 0;
  const WatchId id = store_.Watch([&](const WatchEvent<Pod>&) { ++events; });
  store_.Create(MakePod("a"));
  store_.Unwatch(id);
  sim_.Run();
  EXPECT_EQ(events, 0);
}

TEST_F(StoreTest, DeletedEventCarriesFinalState) {
  Pod p = MakePod("a");
  p.status.phase = PodPhase::kRunning;
  store_.Create(p);
  std::optional<Pod> deleted;
  store_.Watch([&](const WatchEvent<Pod>& ev) {
    if (ev.type == WatchEventType::kDeleted) deleted = ev.object;
  });
  sim_.Run();
  store_.Delete("a");
  sim_.Run();
  ASSERT_TRUE(deleted.has_value());
  EXPECT_EQ(deleted->status.phase, PodPhase::kRunning);
}

TEST_F(StoreTest, DeletedEventCarriesDeletionVersionNotLastUpdate) {
  store_.Create(MakePod("a"));
  auto pod = store_.Get("a");
  pod->status.phase = PodPhase::kRunning;
  ASSERT_TRUE(store_.Update(*pod).ok());  // object now at version 2
  std::optional<Pod> deleted;
  store_.Watch([&](const WatchEvent<Pod>& ev) {
    if (ev.type == WatchEventType::kDeleted) deleted = ev.object;
  });
  sim_.Run();
  store_.Delete("a");
  sim_.Run();
  ASSERT_TRUE(deleted.has_value());
  // The deletion is its own versioned mutation: an informer replaying the
  // stream against a relist snapshot must see it ordered after the last
  // update, so the event carries version 3, not the object's final 2.
  EXPECT_EQ(deleted->meta.resource_version, 3u);
  EXPECT_EQ(store_.version(), 3u);
}

TEST_F(StoreTest, StaleUpdateRejectedAsConflict) {
  store_.Create(MakePod("a"));
  auto stale = store_.Get("a");  // version 1
  auto fresh = store_.Get("a");
  fresh->status.phase = PodPhase::kRunning;
  ASSERT_TRUE(store_.Update(*fresh).ok());  // store moves to version 2
  stale->status.phase = PodPhase::kFailed;
  const Status s = store_.Update(*stale);
  EXPECT_EQ(s.code(), StatusCode::kConflict);
  EXPECT_EQ(store_.update_conflicts(), 1u);
  // The losing write was not applied.
  EXPECT_EQ(store_.Get("a")->status.phase, PodPhase::kRunning);
  // Version 0 is an unconditional write and bypasses the check.
  stale->meta.resource_version = 0;
  EXPECT_TRUE(store_.Update(*stale).ok());
}

TEST_F(StoreTest, StaleDeleteRejectedAsConflict) {
  store_.Create(MakePod("a"));
  auto read = store_.Get("a");  // version 1
  auto fresh = store_.Get("a");
  fresh->status.phase = PodPhase::kRunning;
  ASSERT_TRUE(store_.Update(*fresh).ok());
  EXPECT_EQ(store_.Delete("a", read->meta.resource_version).code(),
            StatusCode::kConflict);
  EXPECT_TRUE(store_.Contains("a"));
  EXPECT_TRUE(store_.Delete("a", store_.Get("a")->meta.resource_version).ok());
}

TEST_F(StoreTest, RetryOnConflictConvergesAgainstConcurrentWriter) {
  store_.Create(MakePod("a"));
  // The mutator's first application doubles as the concurrent writer: it
  // lands an interfering update between the helper's read and its write,
  // so the helper's first submit conflicts, re-reads, and converges on
  // the second attempt with both writes preserved.
  int applications = 0;
  const Status s = RetryOnConflict(store_, "a", [&](Pod& p) {
    if (++applications == 1) {
      auto other = store_.Get("a");
      other->meta.labels["other"] = "writer";
      EXPECT_TRUE(store_.Update(*other).ok());
    }
    p.status.phase = PodPhase::kRunning;
    return Status::Ok();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(applications, 2);  // first attempt lost the race, second won
  EXPECT_EQ(store_.update_conflicts(), 1u);
  auto got = store_.Get("a");
  EXPECT_EQ(got->status.phase, PodPhase::kRunning);
  EXPECT_EQ(got->meta.labels.at("other"), "writer");  // both writes kept
}

TEST_F(StoreTest, RetryOnConflictMutatorAbortPropagates) {
  store_.Create(MakePod("a"));
  const Status s = RetryOnConflict(store_, "a", [](Pod&) {
    return FailedPreconditionError("object became terminal");
  });
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store_.Get("a")->meta.resource_version, 1u);  // untouched
}

TEST_F(StoreTest, FencingGateRejectsBelowFloorAdmitsUnfenced) {
  store_.Create(MakePod("a"));
  store_.fencing().Raise(5);
  auto pod = store_.Get("a");
  pod->status.phase = PodPhase::kRunning;
  // Stale leader (token 3): rejected, counted, not retried by the helper.
  Pod stale = *pod;
  EXPECT_EQ(store_.Update(stale, /*fencing_token=*/3).code(),
            StatusCode::kConflict);
  EXPECT_EQ(store_.fencing().rejected(), 1u);
  const Status via_retry = RetryOnConflict(
      store_, "a",
      [](Pod& p) {
        p.status.phase = PodPhase::kFailed;
        return Status::Ok();
      },
      /*fencing_token=*/3);
  EXPECT_EQ(via_retry.code(), StatusCode::kConflict);
  EXPECT_EQ(store_.fencing().rejected(), 2u);  // exactly one more: no retry
  // Current leader (token 5) and unfenced infrastructure (token 0) pass.
  EXPECT_TRUE(store_.Update(*store_.Get("a"), /*fencing_token=*/5).ok());
  EXPECT_TRUE(store_.Update(*store_.Get("a"), /*fencing_token=*/0).ok());
  // Deletes go through the same gate.
  EXPECT_EQ(store_.Delete("a", 0, /*fencing_token=*/2).code(),
            StatusCode::kConflict);
  EXPECT_TRUE(store_.Contains("a"));
  EXPECT_EQ(store_.fencing().rejected(), 3u);
}

}  // namespace
}  // namespace ks::k8s
