#include "k8s/store.hpp"

#include <gtest/gtest.h>

#include "k8s/objects.hpp"

namespace ks::k8s {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  Pod MakePod(const std::string& name) {
    Pod p;
    p.meta.name = name;
    return p;
  }

  sim::Simulation sim_;
  ObjectStore<Pod> store_{&sim_};
};

TEST_F(StoreTest, CreateAssignsMetadata) {
  ASSERT_TRUE(store_.Create(MakePod("a")).ok());
  auto got = store_.Get("a");
  ASSERT_TRUE(got.ok());
  EXPECT_GT(got->meta.uid, 0u);
  EXPECT_EQ(got->meta.resource_version, 1u);
}

TEST_F(StoreTest, CreateRejectsDuplicatesAndUnnamed) {
  ASSERT_TRUE(store_.Create(MakePod("a")).ok());
  EXPECT_EQ(store_.Create(MakePod("a")).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(store_.Create(MakePod("")).code(), StatusCode::kInvalidArgument);
}

TEST_F(StoreTest, GetMissingFails) {
  EXPECT_EQ(store_.Get("nope").status().code(), StatusCode::kNotFound);
}

TEST_F(StoreTest, UpdateBumpsVersionPreservesUid) {
  ASSERT_TRUE(store_.Create(MakePod("a")).ok());
  auto pod = store_.Get("a");
  const auto uid = pod->meta.uid;
  pod->status.phase = PodPhase::kRunning;
  ASSERT_TRUE(store_.Update(*pod).ok());
  auto got = store_.Get("a");
  EXPECT_EQ(got->meta.uid, uid);
  EXPECT_EQ(got->meta.resource_version, 2u);
  EXPECT_EQ(got->status.phase, PodPhase::kRunning);
}

TEST_F(StoreTest, UpdateMissingFails) {
  EXPECT_EQ(store_.Update(MakePod("ghost")).code(), StatusCode::kNotFound);
}

TEST_F(StoreTest, DeleteRemoves) {
  ASSERT_TRUE(store_.Create(MakePod("a")).ok());
  ASSERT_TRUE(store_.Delete("a").ok());
  EXPECT_FALSE(store_.Contains("a"));
  EXPECT_EQ(store_.Delete("a").code(), StatusCode::kNotFound);
}

TEST_F(StoreTest, ListReturnsAll) {
  store_.Create(MakePod("a"));
  store_.Create(MakePod("b"));
  EXPECT_EQ(store_.List().size(), 2u);
  EXPECT_EQ(store_.size(), 2u);
}

TEST_F(StoreTest, WatchDeliversEventsAsynchronously) {
  std::vector<WatchEventType> events;
  store_.Watch([&](const WatchEvent<Pod>& ev) { events.push_back(ev.type); });
  store_.Create(MakePod("a"));
  // Nothing is delivered synchronously.
  EXPECT_TRUE(events.empty());
  sim_.Run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], WatchEventType::kAdded);

  auto pod = store_.Get("a");
  store_.Update(*pod);
  store_.Delete("a");
  sim_.Run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1], WatchEventType::kModified);
  EXPECT_EQ(events[2], WatchEventType::kDeleted);
}

TEST_F(StoreTest, LateWatcherReplaysExistingObjects) {
  store_.Create(MakePod("a"));
  store_.Create(MakePod("b"));
  sim_.Run();
  std::vector<std::string> seen;
  store_.Watch(
      [&](const WatchEvent<Pod>& ev) { seen.push_back(ev.object.meta.name); });
  sim_.Run();
  EXPECT_EQ(seen.size(), 2u);
}

TEST_F(StoreTest, UnwatchStopsDelivery) {
  int events = 0;
  const WatchId id = store_.Watch([&](const WatchEvent<Pod>&) { ++events; });
  store_.Create(MakePod("a"));
  store_.Unwatch(id);
  sim_.Run();
  EXPECT_EQ(events, 0);
}

TEST_F(StoreTest, DeletedEventCarriesFinalState) {
  Pod p = MakePod("a");
  p.status.phase = PodPhase::kRunning;
  store_.Create(p);
  std::optional<Pod> deleted;
  store_.Watch([&](const WatchEvent<Pod>& ev) {
    if (ev.type == WatchEventType::kDeleted) deleted = ev.object;
  });
  sim_.Run();
  store_.Delete("a");
  sim_.Run();
  ASSERT_TRUE(deleted.has_value());
  EXPECT_EQ(deleted->status.phase, PodPhase::kRunning);
}

}  // namespace
}  // namespace ks::k8s
