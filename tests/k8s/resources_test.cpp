#include "k8s/resources.hpp"

#include <gtest/gtest.h>

namespace ks::k8s {
namespace {

TEST(ResourceList, GetDefaultsToZero) {
  ResourceList r;
  EXPECT_EQ(r.Get(kResourceCpu), 0);
  EXPECT_TRUE(r.empty());
}

TEST(ResourceList, SetAndGet) {
  ResourceList r;
  r.Set(kResourceCpu, 4000);
  r.Set(kResourceNvidiaGpu, 2);
  EXPECT_EQ(r.Get(kResourceCpu), 4000);
  EXPECT_EQ(r.Get(kResourceNvidiaGpu), 2);
}

TEST(ResourceList, SetZeroErases) {
  ResourceList r;
  r.Set(kResourceCpu, 100);
  r.Set(kResourceCpu, 0);
  EXPECT_TRUE(r.empty());
}

TEST(ResourceList, AddAccumulates) {
  ResourceList a{{kResourceCpu, 1000}};
  ResourceList b{{kResourceCpu, 500}, {kResourceNvidiaGpu, 1}};
  a.Add(b);
  EXPECT_EQ(a.Get(kResourceCpu), 1500);
  EXPECT_EQ(a.Get(kResourceNvidiaGpu), 1);
}

TEST(ResourceList, SubtractClampsAtZero) {
  ResourceList a{{kResourceCpu, 100}};
  a.Subtract(ResourceList{{kResourceCpu, 500}});
  EXPECT_EQ(a.Get(kResourceCpu), 0);
}

TEST(ResourceList, FitsChecksEveryQuantity) {
  ResourceList cap{{kResourceCpu, 1000}, {kResourceNvidiaGpu, 4}};
  EXPECT_TRUE(cap.Fits(ResourceList{{kResourceCpu, 1000}}));
  EXPECT_TRUE(cap.Fits(
      ResourceList{{kResourceCpu, 500}, {kResourceNvidiaGpu, 4}}));
  EXPECT_FALSE(cap.Fits(ResourceList{{kResourceNvidiaGpu, 5}}));
  EXPECT_FALSE(cap.Fits(ResourceList{{"fpga", 1}}));
  EXPECT_TRUE(cap.Fits(ResourceList{}));
}

TEST(ResourceList, Equality) {
  ResourceList a{{kResourceCpu, 1}};
  ResourceList b{{kResourceCpu, 1}};
  EXPECT_EQ(a, b);
  b.Set(kResourceCpu, 2);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ks::k8s
