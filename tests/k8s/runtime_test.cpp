#include "k8s/runtime.hpp"

#include <gtest/gtest.h>

#include "k8s/device_plugin.hpp"

namespace ks::k8s {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() {
    gpu_ = std::make_unique<gpu::GpuDevice>(&sim_, GpuUuid("GPU-0"));
    latency_.container_start = Millis(1000);
    latency_.container_stop = Millis(100);
    latency_.runtime_workers = 2;
    runtime_ = std::make_unique<ContainerRuntime>(
        &sim_, "node-0", std::vector<gpu::GpuDevice*>{gpu_.get()}, latency_);
  }

  sim::Simulation sim_;
  std::unique_ptr<gpu::GpuDevice> gpu_;
  LatencyModel latency_;
  std::unique_ptr<ContainerRuntime> runtime_;
};

TEST_F(RuntimeTest, StartTakesContainerStartLatency) {
  Time started{0};
  runtime_->StartContainer("p", {}, [&](const ContainerInstance&) {
    started = sim_.Now();
  });
  sim_.Run();
  EXPECT_EQ(started, Millis(1000));
  EXPECT_EQ(runtime_->running_containers(), 1u);
}

TEST_F(RuntimeTest, WorkerPoolQueuesExcessStarts) {
  std::vector<Time> times;
  for (int i = 0; i < 4; ++i) {
    runtime_->StartContainer("p" + std::to_string(i), {},
                             [&](const ContainerInstance&) {
                               times.push_back(sim_.Now());
                             });
  }
  EXPECT_EQ(runtime_->queued_starts(), 2u);  // 2 workers busy, 2 queued
  sim_.Run();
  ASSERT_EQ(times.size(), 4u);
  EXPECT_EQ(times[0], Millis(1000));
  EXPECT_EQ(times[1], Millis(1000));
  EXPECT_EQ(times[2], Millis(2000));
  EXPECT_EQ(times[3], Millis(2000));
}

TEST_F(RuntimeTest, EnvResolvesVisibleGpus) {
  std::vector<gpu::GpuDevice*> seen;
  runtime_->StartContainer("p", {{kNvidiaVisibleDevices, "GPU-0"}},
                           [&](const ContainerInstance& inst) {
                             seen = inst.visible_gpus;
                           });
  sim_.Run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], gpu_.get());
}

TEST_F(RuntimeTest, UnknownUuidResolvesToNothing) {
  std::size_t count = 99;
  runtime_->StartContainer("p", {{kNvidiaVisibleDevices, "GPU-other"}},
                           [&](const ContainerInstance& inst) {
                             count = inst.visible_gpus.size();
                           });
  sim_.Run();
  EXPECT_EQ(count, 0u);
}

TEST_F(RuntimeTest, ExitNotifiesListenerAndStopHook) {
  ContainerId id;
  runtime_->StartContainer("p", {}, [&](const ContainerInstance& inst) {
    id = inst.id;
  });
  std::string exited;
  bool exit_ok = false;
  runtime_->SetExitListener(
      [&](const std::string& pod, bool ok, const std::string&) {
        exited = pod;
        exit_ok = ok;
      });
  int stops = 0;
  runtime_->SetStopHook([&](const ContainerInstance&) { ++stops; });
  sim_.Run();
  ASSERT_TRUE(runtime_->ExitContainer(id, true).ok());
  EXPECT_EQ(exited, "p");
  EXPECT_TRUE(exit_ok);
  EXPECT_EQ(stops, 1);
  EXPECT_EQ(runtime_->running_containers(), 0u);
  EXPECT_FALSE(runtime_->ExitContainer(id, true).ok());
}

TEST_F(RuntimeTest, ExitByPodName) {
  runtime_->StartContainer("p", {}, nullptr);
  sim_.Run();
  EXPECT_TRUE(runtime_->IsRunning("p"));
  ASSERT_TRUE(runtime_->ExitContainerByPod("p", false).ok());
  EXPECT_FALSE(runtime_->IsRunning("p"));
  EXPECT_FALSE(runtime_->ExitContainerByPod("p", false).ok());
}

TEST_F(RuntimeTest, KillRunningContainer) {
  runtime_->StartContainer("p", {}, nullptr);
  sim_.Run();
  bool stopped = false;
  ASSERT_TRUE(runtime_->KillContainer("p", [&] { stopped = true; }).ok());
  EXPECT_FALSE(stopped);  // stop latency
  sim_.Run();
  EXPECT_TRUE(stopped);
  EXPECT_EQ(runtime_->running_containers(), 0u);
}

TEST_F(RuntimeTest, KillQueuedStartCancelsIt) {
  // Fill both workers, then queue one more and kill it before it starts.
  runtime_->StartContainer("a", {}, nullptr);
  runtime_->StartContainer("b", {}, nullptr);
  bool victim_started = false;
  runtime_->StartContainer("victim", {}, [&](const ContainerInstance&) {
    victim_started = true;
  });
  bool stopped = false;
  ASSERT_TRUE(runtime_->KillContainer("victim", [&] { stopped = true; }).ok());
  EXPECT_TRUE(stopped);  // cancelled synchronously from the queue
  sim_.Run();
  EXPECT_FALSE(victim_started);
  EXPECT_EQ(runtime_->running_containers(), 2u);
}

TEST_F(RuntimeTest, KillUnknownPodFails) {
  EXPECT_FALSE(runtime_->KillContainer("ghost").ok());
}

class ImagePullTest : public ::testing::Test {
 protected:
  ImagePullTest() {
    latency_.container_start = Millis(1000);
    latency_.image_pull = Millis(3000);
    latency_.runtime_workers = 2;
    runtime_ = std::make_unique<ContainerRuntime>(
        &sim_, "node-0", std::vector<gpu::GpuDevice*>{}, latency_);
  }

  sim::Simulation sim_;
  LatencyModel latency_;
  std::unique_ptr<ContainerRuntime> runtime_;
};

TEST_F(ImagePullTest, FirstStartPaysThePull) {
  Time started{0};
  runtime_->StartContainer("p", {}, [&](const ContainerInstance&) {
    started = sim_.Now();
  }, "tensorflow:2.1");
  sim_.Run();
  EXPECT_EQ(started, Millis(4000));  // 3s pull + 1s start
  EXPECT_TRUE(runtime_->ImageCached("tensorflow:2.1"));
  EXPECT_EQ(runtime_->image_pulls(), 1u);
}

TEST_F(ImagePullTest, CachedImageSkipsThePull) {
  runtime_->StartContainer("p1", {}, nullptr, "img");
  sim_.Run();
  Time started{0};
  runtime_->StartContainer("p2", {}, [&](const ContainerInstance&) {
    started = sim_.Now();
  }, "img");
  sim_.Run();
  EXPECT_EQ(started, Millis(4000 + 1000));
  EXPECT_EQ(runtime_->image_pulls(), 1u);
}

TEST_F(ImagePullTest, ConcurrentPullsCoalesce) {
  std::vector<Time> times;
  for (int i = 0; i < 2; ++i) {
    runtime_->StartContainer("p" + std::to_string(i), {},
                             [&](const ContainerInstance&) {
                               times.push_back(sim_.Now());
                             },
                             "img");
  }
  sim_.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], Millis(4000));  // both behind ONE pull
  EXPECT_EQ(times[1], Millis(4000));
  EXPECT_EQ(runtime_->image_pulls(), 1u);
}

TEST_F(ImagePullTest, DistinctImagesPullIndependently) {
  runtime_->StartContainer("a", {}, nullptr, "img-a");
  runtime_->StartContainer("b", {}, nullptr, "img-b");
  sim_.Run();
  EXPECT_EQ(runtime_->image_pulls(), 2u);
  EXPECT_TRUE(runtime_->ImageCached("img-a"));
  EXPECT_TRUE(runtime_->ImageCached("img-b"));
}

TEST_F(ImagePullTest, EmptyImageIsPrePulled) {
  Time started{0};
  runtime_->StartContainer("p", {}, [&](const ContainerInstance&) {
    started = sim_.Now();
  });
  sim_.Run();
  EXPECT_EQ(started, Millis(1000));
  EXPECT_EQ(runtime_->image_pulls(), 0u);
}

TEST_F(ImagePullTest, KillWhileWaitingOnPullCancels) {
  bool started = false;
  runtime_->StartContainer("victim", {}, [&](const ContainerInstance&) {
    started = true;
  }, "img");
  bool stopped = false;
  ASSERT_TRUE(runtime_->KillContainer("victim", [&] { stopped = true; }).ok());
  EXPECT_TRUE(stopped);
  sim_.Run();
  EXPECT_FALSE(started);
  EXPECT_TRUE(runtime_->ImageCached("img"));  // the pull still completes
}

TEST_F(RuntimeTest, StartHookFiresAfterOnRunning) {
  std::vector<int> order;
  runtime_->SetStartHook([&](const ContainerInstance&) { order.push_back(2); });
  runtime_->StartContainer("p", {}, [&](const ContainerInstance&) {
    order.push_back(1);
  });
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace ks::k8s
