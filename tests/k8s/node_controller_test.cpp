#include "k8s/node_controller.hpp"

#include <gtest/gtest.h>

#include "k8s/apiserver.hpp"

namespace ks::k8s {
namespace {

class NodeControllerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Node node;
    node.meta.name = "n1";
    ASSERT_TRUE(api_.nodes().Create(node).ok());
  }

  void CreateBoundPod(const std::string& name, const std::string& node,
                      PodPhase phase = PodPhase::kRunning) {
    Pod pod;
    pod.meta.name = name;
    pod.status.node_name = node;
    pod.status.phase = phase;
    ASSERT_TRUE(api_.pods().Create(pod).ok());
  }

  sim::Simulation sim_;
  ApiServer api_{&sim_};
  NodeLifecycleController ctl_{&api_, Seconds(1), Seconds(2)};
};

TEST_F(NodeControllerTest, DetectionThenEviction) {
  CreateBoundPod("p1", "n1");
  ctl_.ReportNodeFailure("n1");
  EXPECT_TRUE(ctl_.IsFailed("n1"));

  // Before the detection latency the Node object still reads Ready.
  sim_.RunUntil(Millis(500));
  EXPECT_TRUE(api_.nodes().Get("n1")->ready);
  EXPECT_EQ(ctl_.not_ready_transitions(), 0u);

  sim_.RunUntil(Millis(1500));
  EXPECT_FALSE(api_.nodes().Get("n1")->ready);
  EXPECT_EQ(ctl_.not_ready_transitions(), 1u);
  EXPECT_EQ(api_.pods().Get("p1")->status.phase, PodPhase::kRunning);

  // Eviction a further eviction_timeout after NotReady: 1 s + 2 s = 3 s.
  sim_.RunUntil(Millis(3500));
  auto pod = api_.pods().Get("p1");
  EXPECT_EQ(pod->status.phase, PodPhase::kFailed);
  EXPECT_EQ(pod->status.message, "NodeLost");
  EXPECT_EQ(ctl_.evictions(), 1u);
  EXPECT_EQ(api_.events().CountReason("Evicted"), 1u);
}

TEST_F(NodeControllerTest, FlapBeforeDetectionIsInvisible) {
  CreateBoundPod("p1", "n1");
  ctl_.ReportNodeFailure("n1");
  sim_.ScheduleAfter(Millis(500), [this] { ctl_.ReportNodeRecovery("n1"); });
  sim_.RunUntil(Seconds(5));
  // The generation guard cancels the pending NotReady timer: a blip
  // shorter than the detection latency leaves no trace.
  EXPECT_TRUE(api_.nodes().Get("n1")->ready);
  EXPECT_EQ(ctl_.not_ready_transitions(), 0u);
  EXPECT_EQ(ctl_.evictions(), 0u);
  EXPECT_EQ(api_.pods().Get("p1")->status.phase, PodPhase::kRunning);
}

TEST_F(NodeControllerTest, RecoveryTurnsNodeReadyAgain) {
  ctl_.ReportNodeFailure("n1");
  sim_.RunUntil(Millis(1500));
  ASSERT_FALSE(api_.nodes().Get("n1")->ready);

  ctl_.ReportNodeRecovery("n1");
  EXPECT_FALSE(ctl_.IsFailed("n1"));
  sim_.RunUntil(Millis(3000));
  EXPECT_TRUE(api_.nodes().Get("n1")->ready);
  EXPECT_EQ(api_.events().CountReason("NodeReady"), 1u);
}

TEST_F(NodeControllerTest, ResweepEvictsLateBind) {
  CreateBoundPod("p1", "n1");
  ctl_.ReportNodeFailure("n1");
  // First sweep at 3 s evicts p1; a bind that was in flight when the node
  // died lands at 4 s and is caught by the re-sweep at 5 s.
  sim_.ScheduleAfter(Seconds(4), [this] { CreateBoundPod("late", "n1"); });
  sim_.RunUntil(Millis(3500));
  EXPECT_EQ(ctl_.evictions(), 1u);
  sim_.RunUntil(Millis(5500));
  EXPECT_EQ(ctl_.evictions(), 2u);
  EXPECT_EQ(api_.pods().Get("late")->status.phase, PodPhase::kFailed);
}

TEST_F(NodeControllerTest, RepeatedFailureReportsAreIdempotent) {
  ctl_.ReportNodeFailure("n1");
  ctl_.ReportNodeFailure("n1");
  sim_.RunUntil(Seconds(2));
  EXPECT_EQ(ctl_.not_ready_transitions(), 1u);
}

}  // namespace
}  // namespace ks::k8s
