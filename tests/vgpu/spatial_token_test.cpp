// Spatial token mode of the per-node backend: compatible slice claims hold
// compute tokens *concurrently*, incompatible ones queue for SM groups, and
// full-GPU claims reduce to the temporal one-token-at-a-time schedule.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "vgpu/token_backend.hpp"

namespace ks::vgpu {
namespace {

/// Greedy scripted client: holds until expiry, then re-requests BEFORE
/// releasing — the exact call order the production FrontendHook uses (its
/// re-request must be on the table when the release picks the next grant).
class SliceClient : public TokenClient {
 public:
  SliceClient(TokenBackend* backend, ContainerId id)
      : backend_(backend), id_(std::move(id)) {}

  void OnTokenGranted(Time expiry) override {
    ++grants;
    holding = true;
    last_expiry = expiry;
  }

  void OnTokenExpired() override {
    ++expiries;
    if (!holding) return;
    holding = false;
    if (rerequest) (void)backend_->RequestToken(id_);
    (void)backend_->ReleaseToken(id_);
  }

  TokenBackend* backend_;
  ContainerId id_;
  int grants = 0;
  int expiries = 0;
  bool holding = false;
  bool rerequest = true;
  Time last_expiry{0};
};

class SpatialTokenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.quota = Millis(100);
    cfg_.exchange_latency = Micros(1500);
    cfg_.usage_window = Seconds(10);
    cfg_.spatial_enabled = true;
    cfg_.sm_groups = 7;
    backend_ = std::make_unique<TokenBackend>(&sim_, cfg_);
    backend_->RegisterDevice(dev_);
  }

  SliceClient* AddContainer(const std::string& name, int slice_groups,
                            double request = 0.1, double limit = 1.0) {
    auto client =
        std::make_unique<SliceClient>(backend_.get(), ContainerId(name));
    SliceClient* raw = client.get();
    ResourceSpec spec;
    spec.gpu_request = request;
    spec.gpu_limit = limit;
    spec.slice_groups = slice_groups;
    EXPECT_TRUE(
        backend_->RegisterContainer(ContainerId(name), dev_, spec, raw).ok());
    clients_.push_back(std::move(client));
    return raw;
  }

  sim::Simulation sim_;
  BackendConfig cfg_;
  std::unique_ptr<TokenBackend> backend_;
  GpuUuid dev_{"GPU-0"};
  std::vector<std::unique_ptr<SliceClient>> clients_;
};

TEST_F(SpatialTokenTest, CompatibleClaimsHoldConcurrently) {
  SliceClient* a = AddContainer("a", 3);
  SliceClient* b = AddContainer("b", 3);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("a")).ok());
  ASSERT_TRUE(backend_->RequestToken(ContainerId("b")).ok());
  sim_.RunUntil(Millis(5));
  // 3 + 3 <= 7: both tokens valid at once.
  EXPECT_EQ(a->grants, 1);
  EXPECT_EQ(b->grants, 1);
  EXPECT_TRUE(a->holding);
  EXPECT_TRUE(b->holding);
  EXPECT_EQ(backend_->ActiveHolders(dev_), 2u);
  EXPECT_EQ(backend_->peak_active_holders(), 2u);
}

TEST_F(SpatialTokenTest, OversubscribedClaimWaitsForRelease) {
  SliceClient* big = AddContainer("big", 5);
  SliceClient* wide = AddContainer("wide", 4);
  big->rerequest = false;
  ASSERT_TRUE(backend_->RequestToken(ContainerId("big")).ok());
  ASSERT_TRUE(backend_->RequestToken(ContainerId("wide")).ok());
  sim_.RunUntil(Millis(5));
  // 5 + 4 > 7: the second claim queues even though the device has free
  // groups — its run would not fit.
  EXPECT_EQ(big->grants, 1);
  EXPECT_EQ(wide->grants, 0);
  EXPECT_EQ(backend_->QueueLength(dev_), 1u);
  // big expires at quota and releases without re-requesting; the freed
  // groups admit the waiter.
  sim_.RunUntil(Millis(150));
  EXPECT_EQ(wide->grants, 1);
  EXPECT_TRUE(wide->holding);
}

TEST_F(SpatialTokenTest, FullGpuClaimsSerialize) {
  // slice_groups = 0 claims every SM group, so spatial mode degenerates to
  // one token at a time for these containers.
  AddContainer("a", 0);
  AddContainer("b", 0);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("a")).ok());
  ASSERT_TRUE(backend_->RequestToken(ContainerId("b")).ok());
  sim_.RunUntil(Seconds(1));
  EXPECT_EQ(backend_->peak_active_holders(), 1u);
  // Both made progress by alternating.
  EXPECT_GT(clients_[0]->grants, 1);
  EXPECT_GT(clients_[1]->grants, 1);
}

TEST_F(SpatialTokenTest, ReRequestBeforeReleaseDoesNotStrandHolder) {
  // Regression: the frontend re-requests while it still holds (expired)
  // groups. Granting that queued re-requester a second hold before its
  // release lands would let the release erase the fresh hold — the grant
  // callback then fires into nothing, the container never hears back, and
  // its groups leak until no claim fits. Every tenant must keep cycling.
  std::vector<SliceClient*> tenants;
  for (int i = 0; i < 6; ++i) {
    tenants.push_back(AddContainer("t" + std::to_string(i), 1));
    ASSERT_TRUE(
        backend_->RequestToken(ContainerId("t" + std::to_string(i))).ok());
  }
  sim_.RunUntil(Seconds(2));
  for (SliceClient* t : tenants) {
    EXPECT_GE(t->grants, 5) << t->id_.value();
    // Still live: the last grant is recent, not from an early cycle.
    EXPECT_GT(t->last_expiry, Seconds(1)) << t->id_.value();
  }
  EXPECT_EQ(backend_->peak_active_holders(), 6u);
}

TEST_F(SpatialTokenTest, UnregisterHolderFreesItsGroups) {
  SliceClient* big = AddContainer("big", 6);
  SliceClient* waiter = AddContainer("waiter", 4);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("big")).ok());
  ASSERT_TRUE(backend_->RequestToken(ContainerId("waiter")).ok());
  sim_.RunUntil(Millis(5));
  ASSERT_EQ(big->grants, 1);
  ASSERT_EQ(waiter->grants, 0);
  // Container dies mid-hold (pod kill): its groups return and the waiter
  // is granted from the unregister path.
  ASSERT_TRUE(backend_->UnregisterContainer(ContainerId("big")).ok());
  sim_.RunUntil(Millis(10));
  EXPECT_EQ(waiter->grants, 1);
}

TEST_F(SpatialTokenTest, RestartDropsHoldsAndReattachesCleanly) {
  SliceClient* a = AddContainer("a", 3);
  SliceClient* b = AddContainer("b", 3);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("a")).ok());
  ASSERT_TRUE(backend_->RequestToken(ContainerId("b")).ok());
  sim_.RunUntil(Millis(5));
  ASSERT_EQ(backend_->ActiveHolders(dev_), 2u);
  backend_->Restart();
  EXPECT_EQ(backend_->ActiveHolders(dev_), 0u);
  sim_.RunUntil(backend_->config().restart_downtime + Millis(50));
  // Reattached frontends re-request and the spatial schedule resumes.
  ASSERT_TRUE(backend_->RequestToken(ContainerId("a")).ok());
  ASSERT_TRUE(backend_->RequestToken(ContainerId("b")).ok());
  sim_.RunUntil(sim_.Now() + Millis(5));
  EXPECT_EQ(backend_->ActiveHolders(dev_), 2u);
  EXPECT_GE(a->grants, 2);
  EXPECT_GE(b->grants, 2);
}

}  // namespace
}  // namespace ks::vgpu
