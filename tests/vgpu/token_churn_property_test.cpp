#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "cuda/context.hpp"
#include "gpu/device.hpp"
#include "vgpu/frontend_hook.hpp"
#include "vgpu/token_backend.hpp"
#include "vgpu/token_backend_reference.hpp"

namespace ks::vgpu {
namespace {

/// A bursty client: random-size kernel batches separated by random idle
/// gaps; may be torn down and replaced mid-run. This is the adversarial
/// churn the per-node daemon must survive without dropping work, double-
/// granting the token, or leaking queue entries.
class BurstyClient {
 public:
  BurstyClient(sim::Simulation* sim, gpu::GpuDevice* dev,
               TokenBackendApi* backend, std::string name, ResourceSpec spec,
               Rng* rng)
      : sim_(sim),
        name_(std::move(name)),
        rng_(rng),
        ctx_(std::make_unique<cuda::CudaContext>(dev, ContainerId(name_))),
        hook_(std::make_unique<FrontendHook>(ctx_.get(), backend,
                                             ContainerId(name_), dev->uuid(),
                                             spec, dev->spec().memory_bytes)) {
    ScheduleBurst();
  }

  ~BurstyClient() {
    stopped_ = true;
    if (burst_event_ != sim::kInvalidEvent) sim_->Cancel(burst_event_);
    // Hook before context (interposition order), as the host does.
    hook_.reset();
    ctx_.reset();
  }

  int completed() const { return completed_; }
  int launched() const { return launched_; }

 private:
  void ScheduleBurst() {
    burst_event_ = sim_->ScheduleAfter(
        Millis(rng_->UniformInt(5, 300)), [this] { RunBurst(); });
  }

  void RunBurst() {
    burst_event_ = sim::kInvalidEvent;
    if (stopped_) return;
    const int kernels = static_cast<int>(rng_->UniformInt(1, 12));
    for (int i = 0; i < kernels; ++i) {
      ++launched_;
      (void)hook_->LaunchKernel(
          {Millis(rng_->UniformInt(2, 40)), 0.0, "burst"},
          cuda::kDefaultStream, [this] {
            if (!stopped_) ++completed_;
          });
    }
    ScheduleBurst();
  }

  sim::Simulation* sim_;
  std::string name_;
  Rng* rng_;
  std::unique_ptr<cuda::CudaContext> ctx_;
  std::unique_ptr<FrontendHook> hook_;
  sim::EventId burst_event_ = sim::kInvalidEvent;
  bool stopped_ = false;
  int launched_ = 0;
  int completed_ = 0;
};

struct ChurnParam {
  std::uint64_t seed;
  /// Both timer implementations must satisfy the churn properties: the
  /// wheel (default) and the one-event-per-deadline reference oracle.
  TokenTimerMode mode = TokenTimerMode::kWheel;
};

class TokenChurnProperty : public ::testing::TestWithParam<ChurnParam> {};

/// Property: under random client churn (bursty arrivals, random
/// registrations and teardowns) the backend keeps making progress, the
/// token never sits with an unregistered client, and the queue drains
/// when clients leave.
TEST_P(TokenChurnProperty, SurvivesRandomChurn) {
  Rng rng(GetParam().seed);
  sim::Simulation sim;
  gpu::GpuDevice dev(&sim, GpuUuid("GPU-C"));
  std::unique_ptr<TokenBackendApi> backend_ptr;
  if (GetParam().mode == TokenTimerMode::kWheel) {
    backend_ptr = std::make_unique<TokenBackend>(&sim);
  } else {
    backend_ptr = std::make_unique<TokenBackendReference>(&sim);
  }
  TokenBackendApi& backend = *backend_ptr;

  std::vector<std::unique_ptr<BurstyClient>> clients;
  int next_id = 0;
  int total_completed_by_departed = 0;

  for (int step = 0; step < 60; ++step) {
    // Random membership change.
    if (clients.size() < 2 || (clients.size() < 6 && rng.Chance(0.5))) {
      ResourceSpec spec;
      spec.gpu_request = rng.Uniform(0.05, 0.25);
      spec.gpu_limit = std::min(1.0, spec.gpu_request + rng.Uniform(0.1, 0.6));
      clients.push_back(std::make_unique<BurstyClient>(
          &sim, &dev, &backend, "churn-" + std::to_string(next_id++), spec,
          &rng));
    } else if (rng.Chance(0.35)) {
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(clients.size()) - 1));
      total_completed_by_departed += clients[idx]->completed();
      clients.erase(clients.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    sim.RunUntil(sim.Now() + Millis(rng.UniformInt(50, 500)));

    // Invariant: the holder, if any, is a live registered client.
    if (auto holder = backend.HolderOf(dev.uuid())) {
      EXPECT_GE(backend.UsageOf(*holder), 0.0);
    }
  }

  // Let the survivors finish their queues.
  for (auto& c : clients) (void)c;
  sim.RunUntil(sim.Now() + Seconds(30));
  int launched = 0, completed = 0;
  for (const auto& c : clients) {
    launched += c->launched();
    completed += c->completed();
  }
  EXPECT_GT(completed + total_completed_by_departed, 0);
  // Survivors stopped bursting... they haven't (bursts reschedule), so at
  // minimum the backlog must stay bounded: the device kept executing.
  EXPECT_GT(dev.completed_kernels(), 0u);
  // Teardown everyone: the backend must end with a free token.
  clients.clear();
  sim.RunUntil(sim.Now() + Seconds(1));
  EXPECT_FALSE(backend.HolderOf(dev.uuid()).has_value());
  EXPECT_EQ(backend.QueueLength(dev.uuid()), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TokenChurnProperty,
    ::testing::Values(
        ChurnParam{7, TokenTimerMode::kWheel},
        ChurnParam{77, TokenTimerMode::kWheel},
        ChurnParam{777, TokenTimerMode::kWheel},
        ChurnParam{7777, TokenTimerMode::kWheel},
        ChurnParam{77777, TokenTimerMode::kWheel},
        ChurnParam{7, TokenTimerMode::kReference},
        ChurnParam{77, TokenTimerMode::kReference},
        ChurnParam{777, TokenTimerMode::kReference},
        ChurnParam{7777, TokenTimerMode::kReference},
        ChurnParam{77777, TokenTimerMode::kReference}),
    [](const ::testing::TestParamInfo<ChurnParam>& i) {
      return std::string(i.param.mode == TokenTimerMode::kWheel ? "wheel"
                                                                : "reference") +
             "_seed" + std::to_string(i.param.seed);
    });

}  // namespace
}  // namespace ks::vgpu
