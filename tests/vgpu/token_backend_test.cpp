#include "vgpu/token_backend.hpp"

#include <gtest/gtest.h>

namespace ks::vgpu {
namespace {

/// Scripted client: records grants/expiries; optionally holds the token for
/// a fixed busy time then releases and optionally re-requests (modeling a
/// container with an infinite kernel stream).
class FakeClient : public TokenClient {
 public:
  FakeClient(sim::Simulation* sim, TokenBackend* backend, ContainerId id)
      : sim_(sim), backend_(backend), id_(std::move(id)) {}

  void OnTokenGranted(Time expiry) override {
    ++grants;
    last_expiry = expiry;
    holding = true;
    if (greedy) {
      // Hold until expiry; release on OnTokenExpired.
      return;
    }
    // Hold for busy_time then release early.
    sim_->ScheduleAfter(busy_time, [this] {
      if (!holding) return;
      holding = false;
      (void)backend_->ReleaseToken(id_);
      if (rerequest) (void)backend_->RequestToken(id_);
    });
  }

  void OnTokenExpired() override {
    ++expiries;
    if (!holding) return;
    holding = false;
    (void)backend_->ReleaseToken(id_);
    if (rerequest) (void)backend_->RequestToken(id_);
  }

  sim::Simulation* sim_;
  TokenBackend* backend_;
  ContainerId id_;
  int grants = 0;
  int expiries = 0;
  Time last_expiry{0};
  bool holding = false;
  bool greedy = true;     // wants the GPU continuously
  bool rerequest = true;  // asks again after releasing
  Duration busy_time = Millis(10);
};

class TokenBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.quota = Millis(100);
    cfg_.exchange_latency = Micros(1500);
    cfg_.usage_window = Seconds(10);
    backend_ = std::make_unique<TokenBackend>(&sim_, cfg_);
    backend_->RegisterDevice(dev_);
  }

  FakeClient* AddContainer(const std::string& name, double request,
                           double limit) {
    auto client =
        std::make_unique<FakeClient>(&sim_, backend_.get(), ContainerId(name));
    FakeClient* raw = client.get();
    ResourceSpec spec;
    spec.gpu_request = request;
    spec.gpu_limit = limit;
    EXPECT_TRUE(backend_
                    ->RegisterContainer(ContainerId(name), dev_, spec,
                                        raw)
                    .ok());
    clients_.push_back(std::move(client));
    return raw;
  }

  sim::Simulation sim_;
  BackendConfig cfg_;
  std::unique_ptr<TokenBackend> backend_;
  GpuUuid dev_{"GPU-0"};
  std::vector<std::unique_ptr<FakeClient>> clients_;
};

TEST_F(TokenBackendTest, RejectsInvalidSpec) {
  FakeClient client(&sim_, backend_.get(), ContainerId("bad"));
  ResourceSpec spec;
  spec.gpu_request = 0.8;
  spec.gpu_limit = 0.5;
  EXPECT_FALSE(
      backend_->RegisterContainer(ContainerId("bad"), dev_, spec, &client)
          .ok());
  spec = ResourceSpec{};
  EXPECT_FALSE(
      backend_->RegisterContainer(ContainerId("bad"), dev_, spec, nullptr)
          .ok());
}

TEST_F(TokenBackendTest, DuplicateRegistrationFails) {
  AddContainer("c1", 0.3, 0.6);
  FakeClient extra(&sim_, backend_.get(), ContainerId("c1"));
  EXPECT_EQ(backend_
                ->RegisterContainer(ContainerId("c1"), dev_, ResourceSpec{},
                                    &extra)
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(TokenBackendTest, GrantAfterExchangeLatency) {
  FakeClient* c = AddContainer("c1", 0.3, 1.0);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("c1")).ok());
  EXPECT_EQ(c->grants, 0);  // grant arrives via event, not synchronously
  sim_.RunUntil(Millis(2));
  EXPECT_EQ(c->grants, 1);
  EXPECT_EQ(c->last_expiry, Micros(1500) + Millis(100));
}

TEST_F(TokenBackendTest, UnknownContainerRequestFails) {
  EXPECT_EQ(backend_->RequestToken(ContainerId("ghost")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(backend_->ReleaseToken(ContainerId("ghost")).code(),
            StatusCode::kNotFound);
}

TEST_F(TokenBackendTest, ReleaseWithoutHoldingFails) {
  AddContainer("c1", 0.3, 1.0);
  EXPECT_EQ(backend_->ReleaseToken(ContainerId("c1")).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(TokenBackendTest, TokenExpiresAfterQuota) {
  FakeClient* c = AddContainer("c1", 0.3, 1.0);
  c->rerequest = false;
  ASSERT_TRUE(backend_->RequestToken(ContainerId("c1")).ok());
  sim_.RunUntil(Millis(150));
  EXPECT_EQ(c->expiries, 1);
  EXPECT_FALSE(backend_->HolderOf(dev_).has_value());
}

TEST_F(TokenBackendTest, GreedySingleContainerKeepsReacquiring) {
  FakeClient* c = AddContainer("c1", 0.3, 1.0);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("c1")).ok());
  sim_.RunUntil(Seconds(1));
  // ~10 quota periods in 1s; each cycle = exchange + quota.
  EXPECT_GE(c->grants, 9);
  EXPECT_LE(c->grants, 10);
}

TEST_F(TokenBackendTest, UsageTracksHolding) {
  FakeClient* c = AddContainer("c1", 0.3, 1.0);
  (void)c;
  ASSERT_TRUE(backend_->RequestToken(ContainerId("c1")).ok());
  sim_.RunUntil(Seconds(2));
  // Greedy container with limit 1.0: usage near 1 (minus exchange slivers).
  EXPECT_GT(backend_->UsageOf(ContainerId("c1")), 0.9);
}

TEST_F(TokenBackendTest, LimitThrottlesGreedyContainer) {
  FakeClient* c = AddContainer("c1", 0.3, 0.6);
  (void)c;
  ASSERT_TRUE(backend_->RequestToken(ContainerId("c1")).ok());
  sim_.RunUntil(Seconds(30));
  EXPECT_NEAR(backend_->UsageOf(ContainerId("c1")), 0.6, 0.05);
}

TEST_F(TokenBackendTest, TwoEqualGreedyContainersSplitEvenly) {
  AddContainer("a", 0.3, 0.6);
  AddContainer("b", 0.4, 0.6);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("a")).ok());
  ASSERT_TRUE(backend_->RequestToken(ContainerId("b")).ok());
  sim_.RunUntil(Seconds(60));
  // Fig 6 regime [200s,400s]: requests sum to 0.7 < 1; fair split is
  // 0.5/0.5 within the 0.6 limits.
  EXPECT_NEAR(backend_->UsageOf(ContainerId("a")), 0.5, 0.05);
  EXPECT_NEAR(backend_->UsageOf(ContainerId("b")), 0.5, 0.05);
}

TEST_F(TokenBackendTest, RequestsArePinnedWhenCapacitySaturated) {
  // Fig 6 regime [400s,660s]: requests 0.3+0.4+0.3 = 1.0; each container is
  // pinned at its gpu_request.
  AddContainer("a", 0.3, 0.6);
  AddContainer("b", 0.4, 0.6);
  AddContainer("c", 0.3, 0.5);
  for (const char* n : {"a", "b", "c"}) {
    ASSERT_TRUE(backend_->RequestToken(ContainerId(n)).ok());
  }
  sim_.RunUntil(Seconds(60));
  EXPECT_NEAR(backend_->UsageOf(ContainerId("a")), 0.3, 0.05);
  EXPECT_NEAR(backend_->UsageOf(ContainerId("b")), 0.4, 0.05);
  EXPECT_NEAR(backend_->UsageOf(ContainerId("c")), 0.3, 0.05);
}

TEST_F(TokenBackendTest, UnregisterReleasesHeldToken) {
  FakeClient* a = AddContainer("a", 0.3, 1.0);
  FakeClient* b = AddContainer("b", 0.3, 1.0);
  (void)a;
  ASSERT_TRUE(backend_->RequestToken(ContainerId("a")).ok());
  ASSERT_TRUE(backend_->RequestToken(ContainerId("b")).ok());
  sim_.RunUntil(Millis(10));
  ASSERT_EQ(backend_->HolderOf(dev_), ContainerId("a"));
  ASSERT_TRUE(backend_->UnregisterContainer(ContainerId("a")).ok());
  sim_.RunUntil(Millis(20));
  EXPECT_EQ(backend_->HolderOf(dev_), ContainerId("b"));
  EXPECT_GE(b->grants, 1);
}

TEST_F(TokenBackendTest, QueueLengthReflectsWaiters) {
  AddContainer("a", 0.3, 1.0);
  AddContainer("b", 0.3, 1.0);
  AddContainer("c", 0.3, 1.0);
  for (const char* n : {"a", "b", "c"}) {
    ASSERT_TRUE(backend_->RequestToken(ContainerId(n)).ok());
  }
  sim_.RunUntil(Millis(5));
  // One got the token; two remain queued.
  EXPECT_EQ(backend_->QueueLength(dev_), 2u);
}

TEST_F(TokenBackendTest, DuplicateRequestIsIdempotent) {
  AddContainer("a", 0.3, 1.0);
  AddContainer("b", 0.3, 1.0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(backend_->RequestToken(ContainerId("b")).ok());
  }
  EXPECT_EQ(backend_->QueueLength(dev_), 0u);  // b was granted directly
  sim_.RunUntil(Millis(5));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(backend_->RequestToken(ContainerId("a")).ok());
  }
  EXPECT_EQ(backend_->QueueLength(dev_), 1u);
}

TEST_F(TokenBackendTest, IndependentDevicesDoNotInterfere) {
  GpuUuid dev2("GPU-1");
  backend_->RegisterDevice(dev2);
  FakeClient* a = AddContainer("a", 0.3, 1.0);
  auto client_b = std::make_unique<FakeClient>(&sim_, backend_.get(),
                                               ContainerId("b"));
  ResourceSpec spec;
  spec.gpu_request = 0.3;
  ASSERT_TRUE(backend_
                  ->RegisterContainer(ContainerId("b"), dev2, spec,
                                      client_b.get())
                  .ok());
  ASSERT_TRUE(backend_->RequestToken(ContainerId("a")).ok());
  ASSERT_TRUE(backend_->RequestToken(ContainerId("b")).ok());
  sim_.RunUntil(Millis(10));
  EXPECT_EQ(backend_->HolderOf(dev_), ContainerId("a"));
  EXPECT_EQ(backend_->HolderOf(dev2), ContainerId("b"));
  EXPECT_GE(a->grants, 1);
  EXPECT_GE(client_b->grants, 1);
}

TEST_F(TokenBackendTest, StatsTrackGrantsAndHoldTime) {
  FakeClient* c = AddContainer("c1", 0.3, 1.0);
  (void)c;
  ASSERT_TRUE(backend_->RequestToken(ContainerId("c1")).ok());
  sim_.RunUntil(Seconds(1));
  const auto stats = backend_->StatsOf(ContainerId("c1"));
  EXPECT_GE(stats.grants, 9u);
  // Held nearly the whole second (modulo exchange gaps), no overrun (the
  // fake releases exactly at expiry).
  EXPECT_GE(stats.held_total, Millis(900));
  EXPECT_LE(stats.held_total, Seconds(1));
  EXPECT_EQ(stats.overrun_total, Duration{0});
  EXPECT_EQ(backend_->StatsOf(ContainerId("ghost")).grants, 0u);
}

TEST_F(TokenBackendTest, ExtendQuotaPostponesExpiry) {
  FakeClient* c = AddContainer("c1", 0.3, 1.0);
  c->rerequest = false;
  ASSERT_TRUE(backend_->RequestToken(ContainerId("c1")).ok());
  sim_.RunUntil(Millis(10));  // granted, quota ends at ~101.5ms
  ASSERT_TRUE(backend_->ExtendQuota(ContainerId("c1"), Millis(100)).ok());
  sim_.RunUntil(Millis(150));
  EXPECT_EQ(c->expiries, 0);  // old deadline passed without expiry
  sim_.RunUntil(Millis(250));
  EXPECT_EQ(c->expiries, 1);  // extended deadline fired
}

TEST_F(TokenBackendTest, ExtendQuotaRequiresValidHolder) {
  AddContainer("c1", 0.3, 1.0);
  EXPECT_EQ(backend_->ExtendQuota(ContainerId("c1"), Millis(10)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(backend_->ExtendQuota(ContainerId("ghost"), Millis(10)).code(),
            StatusCode::kNotFound);
  // Zero/negative extensions are harmless no-ops for a valid holder.
  ASSERT_TRUE(backend_->RequestToken(ContainerId("c1")).ok());
  sim_.RunUntil(Millis(10));
  EXPECT_TRUE(backend_->ExtendQuota(ContainerId("c1"), Duration{0}).ok());
}

TEST_F(TokenBackendTest, UnregisterDuringExchangeIsSafe) {
  FakeClient* a = AddContainer("a", 0.3, 1.0);
  FakeClient* b = AddContainer("b", 0.3, 1.0);
  (void)a;
  ASSERT_TRUE(backend_->RequestToken(ContainerId("a")).ok());
  // "a" is mid-exchange (grant event scheduled, not yet fired).
  ASSERT_TRUE(backend_->UnregisterContainer(ContainerId("a")).ok());
  ASSERT_TRUE(backend_->RequestToken(ContainerId("b")).ok());
  sim_.RunUntil(Millis(20));
  // The orphaned grant event must not crash, and b must get the token.
  EXPECT_EQ(backend_->HolderOf(dev_), ContainerId("b"));
  EXPECT_GE(b->grants, 1);
}

TEST_F(TokenBackendTest, GrantsCounterAdvances) {
  AddContainer("a", 0.3, 1.0);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("a")).ok());
  sim_.RunUntil(Seconds(1));
  EXPECT_EQ(backend_->grants(), static_cast<std::uint64_t>(clients_[0]->grants));
}

}  // namespace
}  // namespace ks::vgpu
