// Differential tests for memory oversubscription (ROADMAP item 2).
//
// Three oracle pairs are pinned here:
//   1. Oversubscription enabled at factor 1.0 with a working set that
//      fits must leave the cluster's kernel, token, and NVML utilization
//      traces byte-equal to the feature-off system — even while chaos
//      restarts the token daemon and crashes the DevMgr mid-run. (NVML
//      mem_used is excluded from this pair only: over-commitment mode
//      host-backs allocations through the SwapManager instead of the
//      device allocator, a pre-existing design choice, so the device's
//      own allocation gauge legitimately reads zero.)
//   2. BackendConfig::tq enabled with no memory pressure must be
//      byte-equal to tq disabled: GrantQuotaFor substitutes the
//      exclusive quantum only on devices the thrash detector engaged,
//      and with zero swap traffic it must never engage.
//   3. On a swap-heavy cluster (factor 2.0, every hand-off migrates
//      pages over the shared link) the fused virtual-time device engine
//      and the per-kernel reference engine must stay byte-equal: the
//      migration lane lives in the GpuDevice base class and both
//      engines charge it verbatim.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "common/rng.hpp"
#include "chaos/injector.hpp"
#include "gpu/device.hpp"
#include "gpu/nvml.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/swap.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

namespace ks::vgpu {
namespace {

struct OversubTraces {
  std::map<std::string, std::vector<std::string>> kernels;  // by device uuid
  std::map<std::string, std::vector<std::string>> tokens;   // by node
  std::map<std::string, std::vector<std::string>> nvml_util;  // at + gpu_util
  std::map<std::string, std::vector<std::string>> nvml_mem;   // at + mem_used
  std::string pool_dump;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::uint64_t migrations = 0;
  std::uint64_t tq_engagements = 0;
};

struct RunOptions {
  bool oversub = false;
  double factor = 1.0;
  bool tq = false;
  gpu::GpuExecMode exec = gpu::GpuExecMode::kFused;
  std::uint64_t seed = 1;
  /// Scripted kTokenDaemonRestart + kDevMgrCrash mid-run.
  bool chaos = false;
  int nodes = 2;
  int gpus_per_node = 2;
  int tenants = 6;
  /// Per-tenant model as a fraction of one device's memory.
  double model_frac = 0.25;
  double gpu_mem = 0.3;
  Time horizon = Seconds(60);
};

OversubTraces RunOversubCluster(const RunOptions& opt) {
  // Heap-owned collector, as in the device equivalence suite: trace
  // callbacks keep firing during cluster teardown.
  auto out = std::make_unique<OversubTraces>();
  {
    k8s::ClusterConfig ccfg;
    ccfg.nodes = opt.nodes;
    ccfg.gpus_per_node = opt.gpus_per_node;
    ccfg.exec = opt.exec;
    ccfg.oversub.enabled = opt.oversub;
    ccfg.oversub.swap.oversubscription_factor = opt.factor;
    ccfg.backend.tq.enabled = opt.tq;
    k8s::Cluster cluster(ccfg);
    kubeshare::KubeShareConfig kcfg;
    kcfg.allow_memory_overcommit = opt.oversub;
    kcfg.memory_overcommit_factor = opt.oversub ? opt.factor : 0.0;
    kubeshare::KubeShare kubeshare(&cluster, kcfg);
    workload::WorkloadHost host(&cluster);

    OversubTraces* sink = out.get();
    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      k8s::Cluster::NodeHandle& node = cluster.node(n);
      for (auto& dev : node.gpus) {
        const std::string uuid = dev->uuid().value();
        sink->kernels[uuid];
        dev->SetKernelTraceFn([sink, uuid](const gpu::KernelTraceEvent& e) {
          sink->kernels[uuid].push_back(
              std::to_string(e.id) + " " + e.owner.value() + " " + e.name +
              " " + std::to_string(e.start.count()) + " " +
              std::to_string(e.finish.count()));
        });
      }
      const std::string node_name = node.name;
      sink->tokens[node_name];
      node.token_backend->SetGrantTraceFn(
          [sink, node_name](const char* what, const ContainerId& container,
                            Time when) {
            sink->tokens[node_name].push_back(
                std::string(what) + " " + container.value() + " " +
                std::to_string(when.count()));
          });
    }

    EXPECT_TRUE(cluster.Start().ok());
    EXPECT_TRUE(kubeshare.Start().ok());
    cluster.nvml().Start();

    const auto capacity =
        static_cast<double>(cluster.config().gpu_spec.memory_bytes);
    Rng rng(opt.seed);
    for (int i = 0; i < opt.tenants; ++i) {
      const std::string name = "tenant-" + std::to_string(i);
      workload::PhasedTrainingSpec spec;
      spec.epochs = 2;
      spec.steps_per_epoch = static_cast<int>(rng.UniformInt(40, 80));
      spec.step_kernel = Millis(rng.UniformInt(5, 15));
      spec.io_per_epoch = Millis(300);
      spec.model_bytes =
          static_cast<std::uint64_t>(opt.model_frac * capacity);
      host.ExpectJob(name, [spec] {
        return std::make_unique<workload::PhasedTrainingJob>(spec);
      });
      kubeshare::SharePod sp;
      sp.meta.name = name;
      sp.spec.gpu.gpu_request = 0.3;
      sp.spec.gpu.gpu_limit = 1.0;
      sp.spec.gpu.gpu_mem = opt.gpu_mem;
      EXPECT_TRUE(kubeshare.CreateSharePod(sp).ok());
    }

    chaos::FaultPlan plan;
    if (opt.chaos) {
      chaos::Fault daemon;
      daemon.at = Seconds(8);
      daemon.kind = chaos::FaultKind::kTokenDaemonRestart;
      daemon.node = "node-0";
      daemon.duration = Seconds(2);
      plan.faults.push_back(daemon);
      chaos::Fault devmgr;
      devmgr.at = Seconds(14);
      devmgr.kind = chaos::FaultKind::kDevMgrCrash;
      devmgr.duration = Seconds(3);
      plan.faults.push_back(devmgr);
    }
    chaos::FaultInjector injector(&cluster, plan);
    injector.SetKubeShare(&kubeshare);
    if (opt.chaos) {
      EXPECT_TRUE(injector.Arm().ok()) << "chaos plan failed to arm";
    }

    cluster.sim().RunUntil(opt.horizon);
    cluster.nvml().Stop();

    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      for (auto& dev : cluster.node(n).gpus) {
        const std::string uuid = dev->uuid().value();
        for (const gpu::NvmlSample& s : cluster.nvml().SamplesFor(
                 dev->uuid())) {
          sink->nvml_util[uuid].push_back(std::to_string(s.at.count()) +
                                          " " + std::to_string(s.gpu_util));
          sink->nvml_mem[uuid].push_back(std::to_string(s.at.count()) +
                                         " " + std::to_string(s.mem_used));
        }
      }
    }
    const metrics::SwapMetrics swap = metrics::CollectSwapMetrics(
        cluster, [&host](const GpuUuid& uuid) { return host.SwapFor(uuid); });
    sink->migrations = swap.migrations_total;
    sink->tq_engagements = swap.tq_engagements_total;
    sink->pool_dump = kubeshare.pool().DebugString();
    sink->completed = host.completed();
    sink->failed = host.failed();
    EXPECT_TRUE(kubeshare.pool().CheckIndexInvariants().ok());
  }
  return std::move(*out);
}

void ExpectLinesEqual(const std::vector<std::string>& a,
                      const std::vector<std::string>& b,
                      const std::string& what) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) continue;
    ADD_FAILURE() << what << " diverged at line " << i << ": \"" << a[i]
                  << "\" vs \"" << b[i] << "\"";
    return;
  }
  EXPECT_EQ(a.size(), b.size()) << what << " lengths differ";
}

void ExpectMapsEqual(
    const std::map<std::string, std::vector<std::string>>& a,
    const std::map<std::string, std::vector<std::string>>& b,
    const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (const auto& [key, lines] : a) {
    auto it = b.find(key);
    ASSERT_NE(it, b.end()) << what << " " << key;
    ExpectLinesEqual(lines, it->second, what + " on " + key);
  }
}

void ExpectTracesEqual(const OversubTraces& a, const OversubTraces& b,
                       const std::string& label, bool include_mem = true) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  ExpectMapsEqual(a.kernels, b.kernels, "kernel trace");
  ExpectMapsEqual(a.tokens, b.tokens, "token trace");
  ExpectMapsEqual(a.nvml_util, b.nvml_util, "nvml gpu_util");
  if (include_mem) {
    ExpectMapsEqual(a.nvml_mem, b.nvml_mem, "nvml mem_used");
  }
}

TEST(OversubEquivalence, FactorOneByteEqualToFeatureOffUnderChaos) {
  for (const std::uint64_t seed : {91u, 92u, 93u}) {
    RunOptions on;
    on.oversub = true;
    on.factor = 1.0;  // aggregate working set fits: no page ever moves
    on.chaos = true;
    on.seed = seed;
    RunOptions off = on;
    off.oversub = false;
    const OversubTraces a = RunOversubCluster(on);
    const OversubTraces b = RunOversubCluster(off);
    // mem_used excluded: over-commitment host-backs allocations (see
    // file header); every scheduling-visible trace must still match.
    ExpectTracesEqual(a, b, "factor-1.0 seed " + std::to_string(seed),
                      /*include_mem=*/false);
    EXPECT_EQ(a.migrations, 0u) << "factor 1.0 must never migrate";
    EXPECT_GT(a.completed, 0u);
  }
}

TEST(OversubEquivalence, TqEnabledNoPressureByteEqualUnderChaos) {
  for (const std::uint64_t seed : {94u, 95u}) {
    RunOptions tq_on;
    tq_on.oversub = true;
    tq_on.factor = 1.0;
    tq_on.tq = true;
    tq_on.chaos = true;
    tq_on.seed = seed;
    RunOptions tq_off = tq_on;
    tq_off.tq = false;
    const OversubTraces a = RunOversubCluster(tq_on);
    const OversubTraces b = RunOversubCluster(tq_off);
    ExpectTracesEqual(a, b, "tq-idle seed " + std::to_string(seed));
    EXPECT_EQ(a.tq_engagements, 0u)
        << "thrash detector engaged without swap traffic";
  }
}

TEST(OversubEquivalence, SwapHeavyFusedMatchesReferenceEngine) {
  RunOptions fused;
  fused.oversub = true;
  fused.factor = 2.0;
  fused.tq = true;
  fused.nodes = 1;
  fused.gpus_per_node = 1;
  fused.tenants = 3;
  fused.model_frac = 0.55;  // aggregate 1.65x capacity: every hand-off swaps
  fused.gpu_mem = 0.6;
  fused.horizon = Seconds(120);
  fused.exec = gpu::GpuExecMode::kFused;
  RunOptions reference = fused;
  reference.exec = gpu::GpuExecMode::kReference;
  const OversubTraces a = RunOversubCluster(fused);
  const OversubTraces b = RunOversubCluster(reference);
  ExpectTracesEqual(a, b, "swap-heavy engines");
  EXPECT_EQ(a.pool_dump, b.pool_dump);
  EXPECT_GT(a.migrations, 0u) << "working set above capacity never swapped";
}

TEST(OversubEquivalence, SwapHeavyRunIsDeterministic) {
  RunOptions opt;
  opt.oversub = true;
  opt.factor = 2.0;
  opt.tq = true;
  opt.nodes = 1;
  opt.gpus_per_node = 1;
  opt.tenants = 3;
  opt.model_frac = 0.55;
  opt.gpu_mem = 0.6;
  opt.horizon = Seconds(120);
  const OversubTraces a = RunOversubCluster(opt);
  const OversubTraces b = RunOversubCluster(opt);
  ExpectTracesEqual(a, b, "determinism");
  EXPECT_EQ(a.pool_dump, b.pool_dump);
  EXPECT_EQ(a.migrations, b.migrations);
}

}  // namespace
}  // namespace ks::vgpu
