// Differential test: the timer-wheel TokenBackend against the
// one-event-per-deadline TokenBackendReference (the oracle).
//
// A seeded churn plan — registrations, unregistrations, spec resizes and
// daemon restarts at random grid-aligned times — is generated once and
// replayed against both backends in two independent simulations. With the
// default coalesce_window (the GCD of every daemon duration knob) the wheel
// quantization is lossless, so the runs must agree exactly:
//   - the grant trace (time, container, expiry) is identical,
//   - the allocated-quota trace (sliding-window usage sampled on a fixed
//     probe grid, per container) is identical,
//   - the isolation-violation count (usage above gpu_limit at a probe) is
//     identical,
//   - the final per-container ContainerStats agree.
//
// This mirrors the ScheduleSharePod / ScheduleSharePodReference oracle pair
// from the scheduler layer: the reference stays the documentation of record,
// the wheel must earn its event-count win without changing one decision.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulation.hpp"
#include "vgpu/token_backend.hpp"
#include "vgpu/token_backend_reference.hpp"

namespace ks::vgpu {
namespace {

// ---------------------------------------------------------------------------
// Churn plan: generated once per seed, replayed against both backends.

struct ChurnOp {
  enum Kind { kRegister, kUnregister, kUpdateSpec, kRestart };
  Time at{0};
  Kind kind = kRegister;
  std::string name;    // container (empty for kRestart)
  ResourceSpec spec;   // for kRegister / kUpdateSpec
};

struct ChurnPlan {
  std::vector<ChurnOp> ops;
  Time horizon{0};
};

ResourceSpec RandomSpec(Rng& rng) {
  ResourceSpec spec;
  spec.gpu_request = rng.Uniform(0.05, 0.3);
  spec.gpu_limit = std::min(1.0, spec.gpu_request + rng.Uniform(0.05, 0.5));
  return spec;
}

/// Ops land on a 1 ms grid (a multiple of the default 500 us wheel tick) so
/// every daemon deadline they induce stays exactly representable.
ChurnPlan MakePlan(std::uint64_t seed) {
  Rng rng(seed);
  ChurnPlan plan;
  std::vector<std::string> live;
  int next_id = 0;
  Time t = Millis(1);
  const int ops = static_cast<int>(rng.UniformInt(30, 50));
  for (int i = 0; i < ops; ++i) {
    t = t + Millis(rng.UniformInt(1, 80));
    ChurnOp op;
    op.at = t;
    const double roll = rng.Uniform(0.0, 1.0);
    if (live.size() < 2 || (live.size() < 7 && roll < 0.45)) {
      op.kind = ChurnOp::kRegister;
      op.name = "c" + std::to_string(next_id++);
      op.spec = RandomSpec(rng);
      live.push_back(op.name);
    } else if (roll < 0.65) {
      op.kind = ChurnOp::kUnregister;
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      op.name = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (roll < 0.9) {
      op.kind = ChurnOp::kUpdateSpec;
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      op.name = live[idx];
      op.spec = RandomSpec(rng);
    } else {
      op.kind = ChurnOp::kRestart;
    }
    plan.ops.push_back(op);
  }
  plan.horizon = t + Seconds(1.5);
  return plan;
}

// ---------------------------------------------------------------------------
// Reactive greedy client: always wants the token, never originates its own
// timing (all spontaneous events belong to the driver or the backend), so
// the run's event timeline is a pure function of the plan + the backend.

class GreedyClient : public TokenClient {
 public:
  GreedyClient(TokenBackendApi* backend, ContainerId id,
               std::vector<std::string>* trace)
      : backend_(backend), id_(std::move(id)), trace_(trace) {}

  void OnTokenGranted(Time expiry) override {
    holding_ = true;
    std::ostringstream line;
    line << "grant " << id_.value() << " exp=" << expiry.count();
    trace_->push_back(line.str());
  }

  void OnTokenExpired() override {
    holding_ = false;
    (void)backend_->ReleaseToken(id_);
    if (live_) (void)backend_->RequestToken(id_);  // greedy: go again
  }

  void OnBackendRestart() override {
    holding_ = false;
    if (live_) (void)backend_->RequestToken(id_);
  }

  void MarkDead() {
    live_ = false;
    holding_ = false;
  }
  bool holding() const { return holding_; }

 private:
  TokenBackendApi* backend_;
  ContainerId id_;
  std::vector<std::string>* trace_;
  bool live_ = true;
  bool holding_ = false;
};

// ---------------------------------------------------------------------------
// One full run of a plan against one backend implementation.

struct RunTrace {
  std::vector<std::string> events;  // grants + probe samples, in sim order
  std::uint64_t violations = 0;     // probe saw usage above gpu_limit
  std::uint64_t grants = 0;
  std::uint64_t lifetime_events = 0;
};

RunTrace RunPlan(const ChurnPlan& plan, TokenTimerMode mode) {
  sim::Simulation sim;
  std::unique_ptr<TokenBackendApi> backend;
  if (mode == TokenTimerMode::kWheel) {
    backend = std::make_unique<TokenBackend>(&sim);
  } else {
    backend = std::make_unique<TokenBackendReference>(&sim);
  }
  const GpuUuid gpu("GPU-EQ");
  backend->RegisterDevice(gpu);

  RunTrace trace;
  // name -> (client, spec) of currently registered containers, name-sorted
  // so probe iteration order is identical across runs.
  std::map<std::string, std::pair<std::unique_ptr<GreedyClient>, ResourceSpec>>
      registered;

  // Driver ops, all pre-scheduled before Run() so they carry the lowest
  // insertion seqs and fire ahead of any same-instant reactive event — in
  // both simulations.
  for (const ChurnOp& op : plan.ops) {
    sim.ScheduleAt(op.at, [&, op] {
      switch (op.kind) {
        case ChurnOp::kRegister: {
          auto client = std::make_unique<GreedyClient>(
              backend.get(), ContainerId(op.name), &trace.events);
          const Status st = backend->RegisterContainer(
              ContainerId(op.name), gpu, op.spec, client.get());
          trace.events.push_back("register " + op.name + " " + st.ToString());
          if (st.ok()) {
            (void)backend->RequestToken(ContainerId(op.name));
            registered[op.name] = {std::move(client), op.spec};
          }
          break;
        }
        case ChurnOp::kUnregister: {
          auto it = registered.find(op.name);
          if (it == registered.end()) break;
          it->second.first->MarkDead();
          const Status st =
              backend->UnregisterContainer(ContainerId(op.name));
          trace.events.push_back("unregister " + op.name + " " +
                                 st.ToString());
          registered.erase(it);
          break;
        }
        case ChurnOp::kUpdateSpec: {
          auto it = registered.find(op.name);
          if (it == registered.end()) break;
          const Status st =
              backend->UpdateSpec(ContainerId(op.name), op.spec);
          trace.events.push_back("resize " + op.name + " " + st.ToString());
          if (st.ok()) it->second.second = op.spec;
          break;
        }
        case ChurnOp::kRestart: {
          backend->Restart();
          trace.events.push_back("restart");
          // The daemon must never be left timerless after the wipe: the
          // rebuild deadline is armed inside Restart() itself.
          EXPECT_GT(backend->pending_timers(), 0u);
          break;
        }
      }
    });
  }

  // Allocated-quota probes on a fixed 100 ms grid: the sliding-window usage
  // of every registered container, plus the isolation check against its
  // gpu_limit. Pre-scheduled like the driver ops.
  for (Time probe = Millis(100); probe <= plan.horizon;
       probe = probe + Millis(100)) {
    sim.ScheduleAt(probe, [&] {
      for (const auto& [name, entry] : registered) {
        const double usage = backend->UsageOf(ContainerId(name));
        std::ostringstream line;
        line << "probe t=" << sim.Now().count() << " " << name << " usage="
             << usage;
        trace.events.push_back(line.str());
        if (usage > entry.second.gpu_limit + 1e-9) ++trace.violations;
      }
    });
  }

  sim.RunUntil(plan.horizon);
  for (const auto& [name, entry] : registered) {
    const auto stats = backend->StatsOf(ContainerId(name));
    std::ostringstream line;
    line << "final " << name << " grants=" << stats.grants
         << " held=" << stats.held_total.count()
         << " overrun=" << stats.overrun_total.count();
    trace.events.push_back(line.str());
  }
  trace.grants = backend->grants();
  trace.lifetime_events = sim.lifetime_events();
  return trace;
}

struct EquivParam {
  std::uint64_t seed;
};

class TokenWheelEquivalence : public ::testing::TestWithParam<EquivParam> {};

TEST_P(TokenWheelEquivalence, WheelMatchesReferenceTraceForTrace) {
  const ChurnPlan plan = MakePlan(GetParam().seed);
  const RunTrace wheel = RunPlan(plan, TokenTimerMode::kWheel);
  const RunTrace reference = RunPlan(plan, TokenTimerMode::kReference);

  ASSERT_EQ(wheel.events.size(), reference.events.size());
  for (std::size_t i = 0; i < wheel.events.size(); ++i) {
    ASSERT_EQ(wheel.events[i], reference.events[i]) << "at trace index " << i;
  }
  EXPECT_EQ(wheel.violations, reference.violations);
  EXPECT_EQ(wheel.grants, reference.grants);
  // On a sparse single-device plan there may be nothing to coalesce (the
  // wheel then spends one armed event per deadline, same as the oracle) —
  // but it must never spend meaningfully more. The strict win is pinned by
  // ContendedNodeSchedulesFewerEngineEvents below and measured for real by
  // bench_engine's token-cluster scenario.
  EXPECT_LE(wheel.lifetime_events, reference.lifetime_events + 8);
}

std::vector<EquivParam> EquivSeeds() {
  std::vector<EquivParam> seeds;
  for (std::uint64_t s = 1; s <= 24; ++s) seeds.push_back({s * 1033 + 7});
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenWheelEquivalence,
                         ::testing::ValuesIn(EquivSeeds()),
                         [](const ::testing::TestParamInfo<EquivParam>& i) {
                           return "seed" + std::to_string(i.param.seed);
                         });

// ---------------------------------------------------------------------------
// The coalescing win itself: a contended node — many greedy containers per
// device, several devices — keeps the daemon's deadlines landing on shared
// 500 us ticks, so the wheel must schedule strictly fewer engine events
// than one-per-deadline while reaching the exact same grant totals.

std::uint64_t RunContendedNode(TokenTimerMode mode, std::uint64_t* grants) {
  sim::Simulation sim;
  std::unique_ptr<TokenBackendApi> backend;
  if (mode == TokenTimerMode::kWheel) {
    backend = std::make_unique<TokenBackend>(&sim);
  } else {
    backend = std::make_unique<TokenBackendReference>(&sim);
  }
  std::vector<GpuUuid> gpus;
  for (int d = 0; d < 4; ++d) {
    gpus.emplace_back("GPU-CN-" + std::to_string(d));
    backend->RegisterDevice(gpus.back());
  }
  std::vector<std::string> sink;
  std::vector<std::unique_ptr<GreedyClient>> clients;
  for (int c = 0; c < 32; ++c) {
    const ContainerId id("cn" + std::to_string(c));
    clients.push_back(
        std::make_unique<GreedyClient>(backend.get(), id, &sink));
    ResourceSpec spec;
    spec.gpu_request = 0.1;
    spec.gpu_limit = 1.0;
    EXPECT_TRUE(backend
                    ->RegisterContainer(id, gpus[static_cast<std::size_t>(
                                                c % 4)],
                                        spec, clients.back().get())
                    .ok());
    EXPECT_TRUE(backend->RequestToken(id).ok());
  }
  sim.RunUntil(Seconds(5));
  *grants = backend->grants();
  return sim.lifetime_events();
}

TEST(TokenWheelEquivalence, ContendedNodeSchedulesFewerEngineEvents) {
  std::uint64_t wheel_grants = 0;
  std::uint64_t reference_grants = 0;
  const std::uint64_t wheel_events =
      RunContendedNode(TokenTimerMode::kWheel, &wheel_grants);
  const std::uint64_t reference_events =
      RunContendedNode(TokenTimerMode::kReference, &reference_grants);
  EXPECT_EQ(wheel_grants, reference_grants);
  EXPECT_GT(wheel_grants, 100u);
  EXPECT_LT(wheel_events, reference_events);
}

// ---------------------------------------------------------------------------
// Regression: unregistering the last queued container between a reeval's
// scheduling and its fire must cancel the pending timer, not leave it
// dangling. A limit-throttled lone requester is exactly that state: the
// token is free, the queue holds one filtered container, the reeval timer
// is armed. Before the fix both backends kept the timer (a stale fire into
// an empty queue); now pending_timers() drops to zero with the queue.

class ThrottledClient : public TokenClient {
 public:
  ThrottledClient(TokenBackendApi* backend, ContainerId id)
      : backend_(backend), id_(std::move(id)) {}
  void OnTokenGranted(Time) override {}
  void OnTokenExpired() override {
    (void)backend_->ReleaseToken(id_);
    (void)backend_->RequestToken(id_);
  }

 private:
  TokenBackendApi* backend_;
  ContainerId id_;
};

void DanglingReevalScenario(sim::Simulation& sim, TokenBackendApi& backend) {
  const GpuUuid gpu("GPU-RV");
  backend.RegisterDevice(gpu);
  ResourceSpec spec;
  spec.gpu_request = 0.005;
  spec.gpu_limit = 0.005;  // one 100 ms hold in a 10 s window exceeds this
  ThrottledClient client(&backend, ContainerId("rv"));
  ASSERT_TRUE(
      backend.RegisterContainer(ContainerId("rv"), gpu, spec, &client).ok());
  ASSERT_TRUE(backend.RequestToken(ContainerId("rv")).ok());
  // First hold runs a full quota, pushing usage past the limit; the greedy
  // re-request then parks in the queue behind the reeval timer.
  sim.RunUntil(Millis(300));
  ASSERT_EQ(backend.QueueLength(gpu), 1u);
  ASSERT_FALSE(backend.HolderOf(gpu).has_value());
  ASSERT_GT(backend.pending_timers(), 0u);  // the armed reeval

  // Unregister between schedule and fire: the timer must die with the
  // queue. (RunUntil stops just past a reeval boundary, so one is always
  // pending here.)
  ASSERT_TRUE(backend.UnregisterContainer(ContainerId("rv")).ok());
  EXPECT_EQ(backend.QueueLength(gpu), 0u);
  EXPECT_EQ(backend.pending_timers(), 0u)
      << "reeval timer left dangling after the last waiter unregistered";
  // And nothing fires later: the simulation drains completely.
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(backend.pending_timers(), 0u);
}

TEST(DanglingReevalRegression, WheelCancelsReevalOnLastUnregister) {
  sim::Simulation sim;
  TokenBackend backend(&sim);
  DanglingReevalScenario(sim, backend);
}

TEST(DanglingReevalRegression, ReferenceCancelsReevalOnLastUnregister) {
  sim::Simulation sim;
  TokenBackendReference backend(&sim);
  DanglingReevalScenario(sim, backend);
}

}  // namespace
}  // namespace ks::vgpu
