// Differential tests for the spatial sharing subsystem.
//
// Two oracle pairs are pinned here:
//   1. Spatial mode enabled but every sharePod claiming the whole GPU
//      (slice_groups = 0) must produce cluster traces byte-equal to the
//      temporal-only system (spatial disabled) — the concurrent-token
//      grant loop, with full-GPU claims, must reduce exactly to the
//      single-token schedule, including grant order and expiry times.
//   2. With real slice claims, the fused virtual-time device engine and
//      the per-kernel reference engine must stay byte-equal: the slice
//      lane lives in the GpuDevice base class and both engines route
//      sliced kernels through it verbatim.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gpu/device.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

namespace ks::vgpu {
namespace {

constexpr int kSmGroups = 7;

struct SpatialTraces {
  std::map<std::string, std::vector<std::string>> kernels;  // by device uuid
  std::map<std::string, std::vector<std::string>> tokens;   // by node
  std::string pool_dump;
  std::size_t completed = 0;
  std::size_t failed = 0;
};

struct RunOptions {
  bool spatial = false;
  /// Claim widths per tenant index; 0 = whole GPU. Resized cyclically.
  std::vector<int> claims;
  gpu::GpuExecMode exec = gpu::GpuExecMode::kFused;
  std::uint64_t seed = 1;
  int tenants = 6;
};

SpatialTraces RunSpatialCluster(const RunOptions& opt) {
  // Heap-owned collector, as in the device equivalence suite: trace
  // callbacks keep firing during cluster teardown.
  auto out = std::make_unique<SpatialTraces>();
  {
    k8s::ClusterConfig ccfg;
    ccfg.nodes = 2;
    ccfg.gpus_per_node = 2;
    ccfg.exec = opt.exec;
    ccfg.spatial.enabled = opt.spatial;
    ccfg.spatial.sm_groups = kSmGroups;
    k8s::Cluster cluster(ccfg);
    kubeshare::KubeShare kubeshare(&cluster);
    workload::WorkloadHost host(&cluster);

    SpatialTraces* sink = out.get();
    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      k8s::Cluster::NodeHandle& node = cluster.node(n);
      for (auto& dev : node.gpus) {
        const std::string uuid = dev->uuid().value();
        sink->kernels[uuid];
        dev->SetKernelTraceFn([sink, uuid](const gpu::KernelTraceEvent& e) {
          sink->kernels[uuid].push_back(
              std::to_string(e.id) + " " + e.owner.value() + " " + e.name +
              " " + std::to_string(e.start.count()) + " " +
              std::to_string(e.finish.count()));
        });
      }
      const std::string node_name = node.name;
      sink->tokens[node_name];
      node.token_backend->SetGrantTraceFn(
          [sink, node_name](const char* what, const ContainerId& container,
                            Time when) {
            sink->tokens[node_name].push_back(
                std::string(what) + " " + container.value() + " " +
                std::to_string(when.count()));
          });
    }

    EXPECT_TRUE(cluster.Start().ok());
    EXPECT_TRUE(kubeshare.Start().ok());

    Rng rng(opt.seed);
    for (int i = 0; i < opt.tenants; ++i) {
      const int claim =
          opt.claims.empty()
              ? 0
              : opt.claims[static_cast<std::size_t>(i) % opt.claims.size()];
      const std::string name = "tenant-" + std::to_string(i);
      workload::TrainingSpec spec;
      spec.steps = static_cast<int>(rng.UniformInt(120, 200));
      spec.step_kernel = Millis(rng.UniformInt(5, 15));
      spec.model_bytes = 1ull << 30;
      spec.sm_demand =
          claim > 0 ? static_cast<double>(claim) / kSmGroups : 1.0;
      host.ExpectJob(name, [spec] {
        return std::make_unique<workload::TrainingJob>(spec);
      });
      kubeshare::SharePod sp;
      sp.meta.name = name;
      sp.spec.gpu.gpu_request = 0.05 * static_cast<double>(
                                            rng.UniformInt(2, 8));
      sp.spec.gpu.gpu_limit = 1.0;
      sp.spec.gpu.gpu_mem = 0.1;
      sp.spec.gpu.slice_groups = claim;
      EXPECT_TRUE(kubeshare.CreateSharePod(sp).ok());
    }

    cluster.sim().RunUntil(Seconds(60));
    sink->pool_dump = kubeshare.pool().DebugString();
    sink->completed = host.completed();
    sink->failed = host.failed();
    EXPECT_TRUE(kubeshare.pool().CheckIndexInvariants().ok());
  }
  return std::move(*out);
}

void ExpectLinesEqual(const std::vector<std::string>& a,
                      const std::vector<std::string>& b,
                      const std::string& what) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) continue;
    ADD_FAILURE() << what << " diverged at line " << i << ": \"" << a[i]
                  << "\" vs \"" << b[i] << "\"";
    return;
  }
  EXPECT_EQ(a.size(), b.size()) << what << " lengths differ";
}

void ExpectTracesEqual(const SpatialTraces& a, const SpatialTraces& b,
                       const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  for (const auto& [uuid, lines] : a.kernels) {
    auto it = b.kernels.find(uuid);
    ASSERT_NE(it, b.kernels.end()) << uuid;
    ExpectLinesEqual(lines, it->second, "kernel trace on " + uuid);
  }
  ASSERT_EQ(a.tokens.size(), b.tokens.size());
  for (const auto& [node, lines] : a.tokens) {
    auto it = b.tokens.find(node);
    ASSERT_NE(it, b.tokens.end()) << node;
    ExpectLinesEqual(lines, it->second, "token trace on " + node);
  }
}

TEST(SpatialEquivalence, FullGpuClaimsByteEqualToTemporalPath) {
  for (const std::uint64_t seed : {61u, 62u, 63u}) {
    RunOptions spatial;
    spatial.spatial = true;
    spatial.claims = {0};  // every tenant claims the whole device
    spatial.seed = seed;
    RunOptions temporal = spatial;
    temporal.spatial = false;
    const SpatialTraces a = RunSpatialCluster(spatial);
    const SpatialTraces b = RunSpatialCluster(temporal);
    ExpectTracesEqual(a, b, "full-gpu-claims seed " + std::to_string(seed));
    EXPECT_GT(a.completed, 0u);
  }
}

TEST(SpatialEquivalence, SlicedClusterFusedMatchesReferenceEngine) {
  for (const std::uint64_t seed : {71u, 72u, 73u}) {
    RunOptions fused;
    fused.spatial = true;
    fused.claims = {1, 2, 1, 3};
    fused.exec = gpu::GpuExecMode::kFused;
    fused.seed = seed;
    RunOptions reference = fused;
    reference.exec = gpu::GpuExecMode::kReference;
    const SpatialTraces a = RunSpatialCluster(fused);
    const SpatialTraces b = RunSpatialCluster(reference);
    ExpectTracesEqual(a, b, "sliced-engines seed " + std::to_string(seed));
    EXPECT_EQ(a.pool_dump, b.pool_dump);
    EXPECT_GT(a.completed, 0u);
  }
}

TEST(SpatialEquivalence, MixedClaimsRunIsDeterministic) {
  RunOptions opt;
  opt.spatial = true;
  opt.claims = {1, 0, 2, 4};
  opt.seed = 81;
  const SpatialTraces a = RunSpatialCluster(opt);
  const SpatialTraces b = RunSpatialCluster(opt);
  ExpectTracesEqual(a, b, "determinism");
  EXPECT_EQ(a.pool_dump, b.pool_dump);
}

}  // namespace
}  // namespace ks::vgpu
