#include "vgpu/frontend_hook.hpp"

#include <gtest/gtest.h>

#include "cuda/context.hpp"
#include "gpu/device.hpp"

namespace ks::vgpu {
namespace {

/// Builds the full per-container stack the paper deploys inside a
/// container: workload -> FrontendHook (LD_PRELOAD seam) -> CudaContext
/// (driver) -> GpuDevice.
struct ContainerStack {
  ContainerStack(sim::Simulation* /*sim*/, gpu::GpuDevice* dev,
                 TokenBackend* backend, const std::string& name,
                 ResourceSpec spec)
      : ctx(dev, ContainerId(name)),
        hook(&ctx, backend, ContainerId(name), dev->uuid(), spec,
             dev->spec().memory_bytes) {}

  cuda::CudaContext ctx;
  FrontendHook hook;
};

class FrontendHookTest : public ::testing::Test {
 protected:
  FrontendHookTest() {
    cfg_.quota = Millis(100);
    cfg_.exchange_latency = Micros(1500);
    cfg_.usage_window = Seconds(10);
    backend_ = std::make_unique<TokenBackend>(&sim_, cfg_);
  }

  sim::Simulation sim_;
  BackendConfig cfg_;
  gpu::GpuDevice dev_{&sim_, GpuUuid("GPU-0")};
  std::unique_ptr<TokenBackend> backend_;
};

TEST_F(FrontendHookTest, MemAllocWithinQuotaPasses) {
  ResourceSpec spec;
  spec.gpu_mem = 0.5;
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", spec);
  gpu::DevicePtr p = 0;
  EXPECT_EQ(c.hook.MemAlloc(&p, dev_.spec().memory_bytes / 2),
            cuda::CudaResult::kSuccess);
  EXPECT_EQ(c.hook.AllocatedBytes(), dev_.spec().memory_bytes / 2);
}

TEST_F(FrontendHookTest, MemAllocBeyondQuotaRejectedBeforeDriver) {
  ResourceSpec spec;
  spec.gpu_mem = 0.25;
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", spec);
  gpu::DevicePtr p = 0;
  EXPECT_EQ(c.hook.MemAlloc(&p, dev_.spec().memory_bytes / 2),
            cuda::CudaResult::kErrorOutOfMemory);
  // The device itself never saw the allocation — rejection happens in the
  // interposed library, as in the paper.
  EXPECT_EQ(dev_.used_memory(), 0u);
  EXPECT_EQ(c.hook.oom_rejections(), 1u);
}

TEST_F(FrontendHookTest, QuotaFreesReusableAfterMemFree) {
  ResourceSpec spec;
  spec.gpu_mem = 0.25;
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", spec);
  const std::uint64_t quarter = dev_.spec().memory_bytes / 4;
  gpu::DevicePtr p = 0;
  ASSERT_EQ(c.hook.MemAlloc(&p, quarter), cuda::CudaResult::kSuccess);
  EXPECT_EQ(c.hook.MemAlloc(&p, 1), cuda::CudaResult::kErrorOutOfMemory);
  ASSERT_EQ(c.hook.MemFree(p), cuda::CudaResult::kSuccess);
  EXPECT_EQ(c.hook.MemAlloc(&p, quarter), cuda::CudaResult::kSuccess);
}

TEST_F(FrontendHookTest, ArrayCreateGoesThroughQuota) {
  ResourceSpec spec;
  spec.gpu_mem = 1.0 / 1024.0;
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", spec);
  gpu::DevicePtr p = 0;
  // 16MB quota; a 4K x 4K float array = 64MB must be rejected.
  EXPECT_EQ(c.hook.ArrayCreate(&p, 4096, 4096, 4),
            cuda::CudaResult::kErrorOutOfMemory);
  EXPECT_EQ(c.hook.ArrayCreate(&p, 1024, 1024, 4),
            cuda::CudaResult::kSuccess);
}

TEST_F(FrontendHookTest, KernelWaitsForToken) {
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", ResourceSpec{});
  bool done = false;
  ASSERT_EQ(c.hook.LaunchKernel({Millis(10), 0.0, "k"}, cuda::kDefaultStream,
                                [&] { done = true; }),
            cuda::CudaResult::kSuccess);
  // Nothing reaches the device until the token exchange completes.
  EXPECT_FALSE(dev_.busy());
  sim_.RunUntil(Millis(1));
  EXPECT_FALSE(done);
  sim_.RunUntil(Millis(15));
  EXPECT_TRUE(done);
}

TEST_F(FrontendHookTest, TokenReleasedEarlyWhenQueueDrains) {
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", ResourceSpec{});
  ASSERT_EQ(c.hook.LaunchKernel({Millis(10), 0.0, "k"}, cuda::kDefaultStream,
                                nullptr),
            cuda::CudaResult::kSuccess);
  sim_.RunUntil(Millis(20));
  // Kernel finished well inside the 100ms quota; the holder must have
  // revoked its own token ("revoked by its holder").
  EXPECT_FALSE(backend_->HolderOf(dev_.uuid()).has_value());
  EXPECT_FALSE(c.hook.holds_valid_token());
}

TEST_F(FrontendHookTest, ExpiryStopsSubmissionUntilRegrant) {
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", ResourceSpec{});
  // 30 kernels x 10ms = 300ms of work vs 100ms quota: needs >= 3 grants.
  int done = 0;
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(c.hook.LaunchKernel({Millis(10), 0.0, "k"},
                                  cuda::kDefaultStream, [&] { ++done; }),
              cuda::CudaResult::kSuccess);
  }
  sim_.Run();
  EXPECT_EQ(done, 30);
  EXPECT_GE(backend_->grants(), 3u);
}

TEST_F(FrontendHookTest, TwoContainersAlternateViaToken) {
  ContainerStack a(&sim_, &dev_, backend_.get(), "a", ResourceSpec{});
  ContainerStack b(&sim_, &dev_, backend_.get(), "b", ResourceSpec{});
  int done_a = 0, done_b = 0;
  for (int i = 0; i < 20; ++i) {
    a.hook.LaunchKernel({Millis(20), 0.0, "ka"}, cuda::kDefaultStream,
                        [&] { ++done_a; });
    b.hook.LaunchKernel({Millis(20), 0.0, "kb"}, cuda::kDefaultStream,
                        [&] { ++done_b; });
  }
  sim_.Run();
  EXPECT_EQ(done_a, 20);
  EXPECT_EQ(done_b, 20);
  // Token isolation means the device never ran kernels of both containers
  // concurrently, so overall runtime ~= serial sum (800ms) + exchanges.
  EXPECT_GE(Duration(sim_.Now()), Millis(800));
}

TEST_F(FrontendHookTest, NonPreemptiveKernelOverrunsQuota) {
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", ResourceSpec{});
  // A single 250ms kernel: the quota (100ms) expires mid-kernel; the kernel
  // must still complete (CUDA kernels are non-preemptive).
  bool done = false;
  c.hook.LaunchKernel({Millis(250), 0.0, "long"}, cuda::kDefaultStream,
                      [&] { done = true; });
  sim_.RunUntil(Millis(200));
  EXPECT_FALSE(done);
  EXPECT_EQ(backend_->HolderOf(dev_.uuid()), ContainerId("c1"));  // overrun
  sim_.RunUntil(Millis(300));
  EXPECT_TRUE(done);
  EXPECT_FALSE(backend_->HolderOf(dev_.uuid()).has_value());
}

TEST_F(FrontendHookTest, SynchronizeCoversQueuedKernels) {
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", ResourceSpec{});
  bool synced = false;
  c.hook.LaunchKernel({Millis(50), 0.0, "k"}, cuda::kDefaultStream, nullptr);
  c.hook.Synchronize([&] { synced = true; });
  EXPECT_FALSE(synced);
  sim_.Run();
  EXPECT_TRUE(synced);
}

TEST_F(FrontendHookTest, StreamLifecycleForwarded) {
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", ResourceSpec{});
  cuda::StreamId s = 0;
  ASSERT_EQ(c.hook.StreamCreate(&s), cuda::CudaResult::kSuccess);
  c.hook.LaunchKernel({Millis(5), 0.0, "k"}, s, nullptr);
  EXPECT_EQ(c.hook.StreamDestroy(s), cuda::CudaResult::kErrorNotReady);
  sim_.Run();
  EXPECT_EQ(c.hook.StreamDestroy(s), cuda::CudaResult::kSuccess);
}

TEST_F(FrontendHookTest, LaunchOnUnknownStreamFails) {
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", ResourceSpec{});
  EXPECT_EQ(c.hook.LaunchKernel({Millis(5), 0.0, "k"}, 777, nullptr),
            cuda::CudaResult::kErrorInvalidHandle);
}

TEST_F(FrontendHookTest, EventsKeepOrderThroughTheHookQueues) {
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", ResourceSpec{});
  cuda::EventId ev = 0;
  ASSERT_EQ(c.hook.EventCreate(&ev), cuda::CudaResult::kSuccess);
  // Two kernels queue in the hook (no token yet), then the event: it must
  // not complete before both kernels retire.
  c.hook.LaunchKernel({Millis(30), 0.0, "a"}, cuda::kDefaultStream, nullptr);
  c.hook.LaunchKernel({Millis(30), 0.0, "b"}, cuda::kDefaultStream, nullptr);
  ASSERT_EQ(c.hook.EventRecord(ev, cuda::kDefaultStream),
            cuda::CudaResult::kSuccess);
  EXPECT_EQ(c.hook.EventQuery(ev), cuda::CudaResult::kErrorNotReady);
  Time fired{0};
  ASSERT_EQ(c.hook.EventSynchronize(ev, [&] { fired = sim_.Now(); }),
            cuda::CudaResult::kSuccess);
  sim_.Run();
  EXPECT_EQ(c.hook.EventQuery(ev), cuda::CudaResult::kSuccess);
  // Exchange (~1.5 ms) + 60 ms of kernels.
  EXPECT_GE(fired, Millis(60));
}

TEST_F(FrontendHookTest, EventOnEmptyHookQueueCompletesWithoutToken) {
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", ResourceSpec{});
  cuda::EventId ev = 0;
  ASSERT_EQ(c.hook.EventCreate(&ev), cuda::CudaResult::kSuccess);
  ASSERT_EQ(c.hook.EventRecord(ev, cuda::kDefaultStream),
            cuda::CudaResult::kSuccess);
  // No kernels, no token needed — events consume no GPU time.
  EXPECT_EQ(c.hook.EventQuery(ev), cuda::CudaResult::kSuccess);
  EXPECT_FALSE(backend_->HolderOf(dev_.uuid()).has_value());
}

TEST_F(FrontendHookTest, EventElapsedTimeSpansThrottledKernels) {
  ResourceSpec spec;
  spec.gpu_request = 0.2;
  spec.gpu_limit = 0.5;  // throttled to half speed
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", spec);
  cuda::EventId start = 0, end = 0;
  c.hook.EventCreate(&start);
  c.hook.EventCreate(&end);
  c.hook.EventRecord(start, cuda::kDefaultStream);
  for (int i = 0; i < 100; ++i) {
    c.hook.LaunchKernel({Millis(10), 0.0, "k"}, cuda::kDefaultStream,
                        nullptr);
  }
  c.hook.EventRecord(end, cuda::kDefaultStream);
  sim_.Run();
  Duration elapsed{0};
  ASSERT_EQ(c.hook.EventElapsedTime(&elapsed, start, end),
            cuda::CudaResult::kSuccess);
  // 1 s of kernels at <=0.5 usage -> ~2 s between the events.
  EXPECT_GE(elapsed, Millis(1900));
}

TEST_F(FrontendHookTest, ThroughputRatioMatchesQuotaOverhead) {
  // Fig 7 in miniature: a continuously-busy container's goodput fraction is
  // quota / (quota + exchange).
  ContainerStack c(&sim_, &dev_, backend_.get(), "c1", ResourceSpec{});
  int done = 0;
  std::function<void()> next = [&] {
    ++done;
    c.hook.LaunchKernel({Millis(10), 0.0, "k"}, cuda::kDefaultStream, next);
  };
  c.hook.LaunchKernel({Millis(10), 0.0, "k"}, cuda::kDefaultStream, next);
  sim_.RunUntil(Seconds(10));
  const double expected =
      ToSeconds(cfg_.quota) / ToSeconds(cfg_.quota + cfg_.exchange_latency);
  const double measured = static_cast<double>(done) * 0.010 / 10.0;
  EXPECT_NEAR(measured, expected, 0.02);
}

}  // namespace
}  // namespace ks::vgpu
