#include "vgpu/swap.hpp"

#include <gtest/gtest.h>

#include "cuda/context.hpp"
#include "gpu/device.hpp"
#include "vgpu/frontend_hook.hpp"
#include "workload/job.hpp"

namespace ks::vgpu {
namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

TEST(SwapManager, AllocationsLandResidentWhileSpaceFree) {
  SwapManager swap(16 * kGiB);
  ASSERT_TRUE(swap.Allocate(ContainerId("a"), 10 * kGiB).ok());
  EXPECT_EQ(swap.ResidentOf(ContainerId("a")), 10 * kGiB);
  EXPECT_EQ(swap.total_resident(), 10 * kGiB);
}

TEST(SwapManager, OverflowStartsSwappedOut) {
  SwapManager swap(16 * kGiB);
  ASSERT_TRUE(swap.Allocate(ContainerId("a"), 12 * kGiB).ok());
  ASSERT_TRUE(swap.Allocate(ContainerId("b"), 12 * kGiB).ok());
  EXPECT_EQ(swap.total_allocated(), 24 * kGiB);
  EXPECT_EQ(swap.ResidentOf(ContainerId("b")), 4 * kGiB);
  EXPECT_EQ(swap.total_resident(), 16 * kGiB);
}

TEST(SwapManager, ZeroByteAllocationRejected) {
  SwapManager swap(16 * kGiB);
  EXPECT_FALSE(swap.Allocate(ContainerId("a"), 0).ok());
}

TEST(SwapManager, MakeResidentEvictsLeastRecentlyRun) {
  SwapManager swap(16 * kGiB, /*bandwidth=*/8e9);
  ASSERT_TRUE(swap.Allocate(ContainerId("a"), 12 * kGiB).ok());
  ASSERT_TRUE(swap.Allocate(ContainerId("b"), 12 * kGiB).ok());
  // b runs: needs 8 GiB more; evict from a (the only victim).
  const Duration d = swap.MakeResident(ContainerId("b"), Seconds(1));
  EXPECT_EQ(swap.ResidentOf(ContainerId("b")), 12 * kGiB);
  EXPECT_EQ(swap.ResidentOf(ContainerId("a")), 4 * kGiB);
  // 8 GiB in + 8 GiB out at 8 GB/s ~ 2.1 s.
  EXPECT_NEAR(ToSeconds(d), 2.0 * static_cast<double>(8 * kGiB) / 8e9, 0.01);
  EXPECT_EQ(swap.swap_ins(), 1u);
  EXPECT_GT(swap.bytes_migrated(), 0u);
}

TEST(SwapManager, ResidentWorkingSetCostsNothing) {
  SwapManager swap(16 * kGiB);
  ASSERT_TRUE(swap.Allocate(ContainerId("a"), 8 * kGiB).ok());
  EXPECT_EQ(swap.MakeResident(ContainerId("a"), Seconds(1)), Duration{0});
  EXPECT_EQ(swap.swap_ins(), 0u);
}

TEST(SwapManager, AlternatingHoldersThrashDeterministically) {
  SwapManager swap(16 * kGiB);
  ASSERT_TRUE(swap.Allocate(ContainerId("a"), 12 * kGiB).ok());
  ASSERT_TRUE(swap.Allocate(ContainerId("b"), 12 * kGiB).ok());
  Duration total{0};
  for (int round = 0; round < 4; ++round) {
    total += swap.MakeResident(ContainerId("a"), Seconds(round * 2));
    total += swap.MakeResident(ContainerId("b"), Seconds(round * 2 + 1));
  }
  // Every hand-off after the first moves 8 GiB in and 8 GiB out.
  EXPECT_GT(total, Seconds(5));
  EXPECT_EQ(swap.total_resident(), 16 * kGiB);
}

TEST(SwapManager, NeverRunVictimsEvictInRegistrationOrder) {
  // Regression: among owners that have never run (all last_run == 0) the
  // eviction victim is the earliest-registered one, not whichever sorts
  // first lexically. Register "b" before "a": bringing "c" in must evict
  // from "b" first.
  SwapConfig cfg;
  cfg.page_bytes = 2ull << 20;
  SwapManager swap(16 * kGiB, cfg);
  ASSERT_TRUE(swap.Allocate(ContainerId("b"), 8 * kGiB).ok());
  ASSERT_TRUE(swap.Allocate(ContainerId("a"), 8 * kGiB).ok());
  ASSERT_TRUE(swap.Allocate(ContainerId("c"), 8 * kGiB).ok());
  (void)swap.MakeResident(ContainerId("c"), Seconds(1));
  EXPECT_EQ(swap.ResidentOf(ContainerId("c")), 8 * kGiB);
  EXPECT_EQ(swap.ResidentOf(ContainerId("b")), 0u)
      << "first-registered never-run owner must be the first victim";
  EXPECT_EQ(swap.ResidentOf(ContainerId("a")), 8 * kGiB);
}

TEST(SwapManager, OversubscriptionFactorBoundsAggregateAllocation) {
  SwapConfig cfg;
  cfg.oversubscription_factor = 2.0;
  SwapManager swap(16 * kGiB, cfg);
  ASSERT_TRUE(swap.Allocate(ContainerId("a"), 16 * kGiB).ok());
  ASSERT_TRUE(swap.Allocate(ContainerId("b"), 16 * kGiB).ok());
  const Status s = swap.Allocate(ContainerId("c"), 1 * kGiB);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // Freeing makes room again.
  ASSERT_TRUE(swap.Free(ContainerId("a"), 8 * kGiB).ok());
  EXPECT_TRUE(swap.Allocate(ContainerId("c"), 1 * kGiB).ok());
}

TEST(SwapManager, FreeReleasesResidentFirst) {
  SwapManager swap(16 * kGiB);
  ASSERT_TRUE(swap.Allocate(ContainerId("a"), 12 * kGiB).ok());
  ASSERT_TRUE(swap.Free(ContainerId("a"), 8 * kGiB).ok());
  EXPECT_EQ(swap.AllocatedBy(ContainerId("a")), 4 * kGiB);
  EXPECT_EQ(swap.ResidentOf(ContainerId("a")), 4 * kGiB);
  EXPECT_FALSE(swap.Free(ContainerId("a"), 8 * kGiB).ok());  // too much
  EXPECT_FALSE(swap.Free(ContainerId("ghost"), 1).ok());
}

TEST(SwapManager, FreeAllDropsEverything) {
  SwapManager swap(16 * kGiB);
  ASSERT_TRUE(swap.Allocate(ContainerId("a"), 12 * kGiB).ok());
  swap.FreeAll(ContainerId("a"));
  EXPECT_EQ(swap.total_allocated(), 0u);
  EXPECT_EQ(swap.total_resident(), 0u);
  swap.FreeAll(ContainerId("a"));  // idempotent
}

// ---- FrontendHook over-commitment integration ---------------------------

class OvercommitHookTest : public ::testing::Test {
 protected:
  OvercommitHookTest()
      : dev_(&sim_, GpuUuid("GPU-0")),
        backend_(&sim_),
        swap_(dev_.spec().memory_bytes, 8e9) {}

  struct Stack {
    Stack(OvercommitHookTest* t, const std::string& name, double mem_quota)
        : ctx(&t->dev_, ContainerId(name)),
          hook(&ctx, &t->backend_, ContainerId(name), t->dev_.uuid(),
               MakeSpec(mem_quota), t->dev_.spec().memory_bytes) {
      hook.EnableMemoryOvercommit(&t->swap_, &t->sim_);
    }
    static ResourceSpec MakeSpec(double mem) {
      ResourceSpec s;
      s.gpu_mem = mem;
      return s;
    }
    cuda::CudaContext ctx;
    FrontendHook hook;
  };

  sim::Simulation sim_;
  gpu::GpuDevice dev_{&sim_, GpuUuid("GPU-0")};
  TokenBackend backend_{&sim_};
  SwapManager swap_{16ull << 30};
};

TEST_F(OvercommitHookTest, AggregateAllocationsMayExceedDevice) {
  Stack a(this, "a", 0.75);
  Stack b(this, "b", 0.75);
  gpu::DevicePtr pa = 0, pb = 0;
  EXPECT_EQ(a.hook.MemAlloc(&pa, 11 * kGiB), cuda::CudaResult::kSuccess);
  EXPECT_EQ(b.hook.MemAlloc(&pb, 11 * kGiB), cuda::CudaResult::kSuccess);
  EXPECT_EQ(swap_.total_allocated(), 22 * kGiB);
  // The physical device ledger never sees these allocations.
  EXPECT_EQ(dev_.used_memory(), 0u);
}

TEST_F(OvercommitHookTest, PerContainerQuotaStillApplies) {
  Stack a(this, "a", 0.5);
  gpu::DevicePtr p = 0;
  EXPECT_EQ(a.hook.MemAlloc(&p, 9 * kGiB),
            cuda::CudaResult::kErrorOutOfMemory);
}

TEST_F(OvercommitHookTest, MemFreeReturnsQuotaAndSwapSpace) {
  Stack a(this, "a", 0.5);
  gpu::DevicePtr p = 0;
  ASSERT_EQ(a.hook.MemAlloc(&p, 8 * kGiB), cuda::CudaResult::kSuccess);
  ASSERT_EQ(a.hook.MemFree(p), cuda::CudaResult::kSuccess);
  EXPECT_EQ(swap_.total_allocated(), 0u);
  EXPECT_EQ(a.hook.MemFree(p), cuda::CudaResult::kErrorInvalidValue);
}

TEST_F(OvercommitHookTest, TokenGrantPaysMigrationDelay) {
  Stack a(this, "a", 0.75);
  Stack b(this, "b", 0.75);
  gpu::DevicePtr p = 0;
  ASSERT_EQ(a.hook.MemAlloc(&p, 12 * kGiB), cuda::CudaResult::kSuccess);
  ASSERT_EQ(b.hook.MemAlloc(&p, 12 * kGiB), cuda::CudaResult::kSuccess);

  // a runs first (resident), then b must swap 8 GiB in/out before its
  // kernel starts.
  Time a_done{0}, b_done{0};
  a.hook.LaunchKernel({Millis(10), 0.0, "ka"}, cuda::kDefaultStream,
                      [&] { a_done = sim_.Now(); });
  sim_.RunUntil(Millis(50));
  b.hook.LaunchKernel({Millis(10), 0.0, "kb"}, cuda::kDefaultStream,
                      [&] { b_done = sim_.Now(); });
  sim_.Run();
  EXPECT_GT(a_done.count(), 0);
  EXPECT_GT(b_done.count(), 0);
  // b's kernel waited for ~2 s of page migration (16 GiB moved at 8 GB/s),
  // far beyond the ~10 ms it would need without over-commitment.
  EXPECT_GT(b_done - Millis(50), Seconds(2));
  EXPECT_GE(swap_.swap_ins(), 1u);
}

TEST_F(OvercommitHookTest, ResidentContainerRunsWithoutDelay) {
  Stack a(this, "a", 0.5);
  gpu::DevicePtr p = 0;
  ASSERT_EQ(a.hook.MemAlloc(&p, 4 * kGiB), cuda::CudaResult::kSuccess);
  Time done{0};
  a.hook.LaunchKernel({Millis(10), 0.0, "k"}, cuda::kDefaultStream,
                      [&] { done = sim_.Now(); });
  sim_.Run();
  // Exchange latency + kernel only; no migration.
  EXPECT_LT(done, Millis(20));
}

}  // namespace
}  // namespace ks::vgpu
