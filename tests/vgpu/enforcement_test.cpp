// Unit tests for backend-side isolation enforcement: overstay fencing at
// the fence deadline, the per-tenant violation ledger and its escalation
// ladder (clamp-down, eviction), server-side usage attribution vs spoofed
// self-reports, ledger survival across Restart(), and the reclamation of
// expired-but-never-released holders on UnregisterContainer (the
// OOM-killed / node-crashed tenant audit) in both the temporal and
// spatial token paths.

#include "vgpu/token_backend.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gpu/device.hpp"
#include "metrics/isolation.hpp"
#include "metrics/prometheus.hpp"

namespace ks::vgpu {
namespace {

/// Polite client: releases as soon as the backend says the quota is up.
class PoliteClient : public TokenClient {
 public:
  PoliteClient(TokenBackend* backend, ContainerId id)
      : backend_(backend), id_(std::move(id)) {}
  void OnTokenGranted(Time) override {
    ++grants;
    holding = true;
  }
  void OnTokenExpired() override {
    ++expiries;
    if (!holding) return;
    holding = false;
    (void)backend_->ReleaseToken(id_);
    if (rerequest) (void)backend_->RequestToken(id_);
  }
  TokenBackend* backend_;
  ContainerId id_;
  int grants = 0;
  int expiries = 0;
  bool holding = false;
  bool rerequest = true;
};

/// Adversarial client: acknowledges nothing — it never releases, modeling
/// the token-overstay attack (or a tenant whose process was OOM-killed
/// before it could release).
class HostileClient : public TokenClient {
 public:
  void OnTokenGranted(Time) override { ++grants; }
  void OnTokenExpired() override { ++expiries; }
  int grants = 0;
  int expiries = 0;
};

class EnforcementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.quota = Millis(100);
    cfg_.exchange_latency = Micros(1500);
    cfg_.usage_window = Seconds(1);
    cfg_.enforcement.enabled = true;
    Rebuild();
  }

  void Rebuild() {
    backend_ = std::make_unique<TokenBackend>(&sim_, cfg_);
    backend_->RegisterDevice(dev_);
    backend_->SetDeviceResolver([this](const GpuUuid& uuid) {
      return uuid == dev_ ? &device_ : nullptr;
    });
  }

  template <typename Client>
  Client* Add(const std::string& name, double request, double limit,
              int slice_groups = 0) {
    auto client = std::make_unique<Client>();
    Client* raw = client.get();
    ResourceSpec spec;
    spec.gpu_request = request;
    spec.gpu_limit = limit;
    spec.slice_groups = slice_groups;
    EXPECT_TRUE(
        backend_->RegisterContainer(ContainerId(name), dev_, spec, raw).ok());
    owned_.push_back(std::move(client));
    return raw;
  }

  PoliteClient* AddPolite(const std::string& name, double request,
                          double limit) {
    auto client =
        std::make_unique<PoliteClient>(backend_.get(), ContainerId(name));
    PoliteClient* raw = client.get();
    ResourceSpec spec;
    spec.gpu_request = request;
    spec.gpu_limit = limit;
    EXPECT_TRUE(
        backend_->RegisterContainer(ContainerId(name), dev_, spec, raw).ok());
    polite_.push_back(std::move(client));
    return raw;
  }

  sim::Simulation sim_;
  BackendConfig cfg_;
  GpuUuid dev_{"GPU-0"};
  gpu::GpuDevice device_{&sim_, GpuUuid("GPU-0")};
  std::unique_ptr<TokenBackend> backend_;
  std::vector<std::unique_ptr<TokenClient>> owned_;
  std::vector<std::unique_ptr<PoliteClient>> polite_;
};

TEST_F(EnforcementTest, OverstayerIsFencedAndTokenReclaimed) {
  HostileClient* hostile = Add<HostileClient>("hostile", 0.3, 1.0);
  PoliteClient* polite = AddPolite("polite", 0.3, 1.0);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("hostile")).ok());
  sim_.RunUntil(Millis(5));
  ASSERT_EQ(hostile->grants, 1);
  // The device gate is open for the admitted epoch.
  EXPECT_TRUE(device_.TokenGateAdmits(ContainerId("hostile")));
  ASSERT_TRUE(backend_->RequestToken(ContainerId("polite")).ok());

  // Expiry at ~101.5 ms is ignored; the fence deadline at expiry +
  // fence_grace declares the overstay, closes the gate, reclaims the
  // token, and the polite waiter gets its grant.
  sim_.RunUntil(Millis(250));
  EXPECT_EQ(hostile->expiries, 1);
  EXPECT_FALSE(device_.TokenGateAdmits(ContainerId("hostile")));
  EXPECT_GE(polite->grants, 1);
  const auto stats = backend_->IsolationOf(ContainerId("hostile"));
  EXPECT_EQ(stats.overstays, 1u);
  EXPECT_EQ(backend_->violations_total(), 1u);
  EXPECT_EQ(backend_->IsolationOf(ContainerId("polite")).total(), 0u);
}

TEST_F(EnforcementTest, PoliteReleaseNeverCountsAViolation) {
  PoliteClient* a = AddPolite("a", 0.4, 1.0);
  PoliteClient* b = AddPolite("b", 0.4, 1.0);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("a")).ok());
  ASSERT_TRUE(backend_->RequestToken(ContainerId("b")).ok());
  sim_.RunUntil(Seconds(2));
  EXPECT_GT(a->grants + b->grants, 4);
  EXPECT_EQ(backend_->violations_total(), 0u);
  EXPECT_EQ(backend_->clampdowns_total(), 0u);
}

TEST_F(EnforcementTest, RepeatedViolationsClampThenEvict) {
  Add<HostileClient>("hostile", 0.3, 1.0);
  std::vector<std::pair<ContainerId, std::string>> evictions;
  backend_->SetEvictionFn(
      [&](const ContainerId& c, const std::string& reason) {
        evictions.emplace_back(c, reason);
      });

  const ContainerId c{"hostile"};
  for (int i = 0; i < cfg_.enforcement.clamp_threshold; ++i) {
    backend_->RecordViolation(c, ViolationKind::kFencedSubmit);
  }
  EXPECT_TRUE(backend_->IsolationOf(c).clamped);
  EXPECT_EQ(backend_->clampdowns_total(), 1u);
  EXPECT_TRUE(evictions.empty());

  for (int i = cfg_.enforcement.clamp_threshold;
       i < cfg_.enforcement.evict_threshold; ++i) {
    backend_->RecordViolation(c, ViolationKind::kMemoryQuota);
  }
  EXPECT_TRUE(backend_->IsolationOf(c).evicted);
  EXPECT_EQ(backend_->evictions_total(), 1u);
  // Eviction is deferred one event — violations surface under submit
  // paths, and tearing the workload stack down re-entrantly would destroy
  // the caller.
  EXPECT_TRUE(evictions.empty());
  sim_.RunUntil(sim_.Now() + Millis(1));
  ASSERT_EQ(evictions.size(), 1u);
  EXPECT_EQ(evictions[0].first, c);
  EXPECT_NE(evictions[0].second.find("memory_quota"), std::string::npos);

  // Further violations never re-evict.
  backend_->RecordViolation(c, ViolationKind::kFencedSubmit);
  sim_.RunUntil(sim_.Now() + Millis(1));
  EXPECT_EQ(evictions.size(), 1u);
  EXPECT_EQ(backend_->evictions_total(), 1u);
}

TEST_F(EnforcementTest, SpoofedSelfReportIsCaughtByAttribution) {
  HostileClient* hostile = Add<HostileClient>("spoofer", 0.3, 1.0);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("spoofer")).ok());
  // Hold across most of the 1 s usage window so measured usage is well
  // above spoof_floor.
  sim_.RunUntil(Millis(90));
  ASSERT_EQ(hostile->grants, 1);
  const double measured = backend_->UsageOf(ContainerId("spoofer"));
  ASSERT_GT(measured, cfg_.enforcement.spoof_floor);

  // Under-report far past the tolerance: caught.
  backend_->ReportUsage(ContainerId("spoofer"), measured * 0.1);
  EXPECT_EQ(backend_->IsolationOf(ContainerId("spoofer")).spoofs, 1u);
  // An honest report is not a violation.
  backend_->ReportUsage(ContainerId("spoofer"), measured);
  EXPECT_EQ(backend_->IsolationOf(ContainerId("spoofer")).spoofs, 1u);
}

TEST_F(EnforcementTest, SpoofCheckSkippedBelowUsageFloor) {
  Add<HostileClient>("idle", 0.3, 1.0);
  // No grant yet: measured usage 0 — the sliding window is meaningless,
  // an under-report cannot be distinguished from idleness.
  backend_->ReportUsage(ContainerId("idle"), 0.0);
  EXPECT_EQ(backend_->IsolationOf(ContainerId("idle")).total(), 0u);
}

TEST_F(EnforcementTest, RestartForgivesNoViolation) {
  Add<HostileClient>("hostile", 0.3, 1.0);
  const ContainerId c{"hostile"};
  backend_->RecordViolation(c, ViolationKind::kOverstay);
  backend_->RecordViolation(c, ViolationKind::kFencedSubmit);
  ASSERT_EQ(backend_->violations_total(), 2u);

  backend_->Restart();
  sim_.RunUntil(sim_.Now() + cfg_.restart_downtime + Millis(10));

  const auto stats = backend_->IsolationOf(c);
  EXPECT_EQ(stats.overstays, 1u);
  EXPECT_EQ(stats.fenced_submits, 1u);
  EXPECT_EQ(backend_->violations_total(), 2u);
}

TEST_F(EnforcementTest, DisabledEnforcementRecordsNothing) {
  cfg_.enforcement.enabled = false;
  Rebuild();
  Add<HostileClient>("hostile", 0.3, 1.0);
  backend_->RecordViolation(ContainerId("hostile"),
                            ViolationKind::kFencedSubmit);
  EXPECT_EQ(backend_->violations_total(), 0u);
  EXPECT_EQ(backend_->IsolationOf(ContainerId("hostile")).total(), 0u);
  // No gate was installed either: the device admits everything.
  EXPECT_TRUE(device_.TokenGateAdmits(ContainerId("hostile")));
}

// --- UnregisterContainer audit: holder dies expired-but-not-released ------
// An OOM-killed or node-crashed tenant never calls ReleaseToken. Its
// container teardown (UnregisterContainer) must reclaim the hold, cancel
// every daemon timer (expiry AND fence), and hand the token to waiters —
// in both the temporal and spatial paths. These pin the audited behavior.

TEST_F(EnforcementTest, TemporalUnregisterReclaimsExpiredUnreleasedHolder) {
  HostileClient* dead = Add<HostileClient>("dead", 0.3, 1.0);
  PoliteClient* waiter = AddPolite("waiter", 0.3, 1.0);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("dead")).ok());
  sim_.RunUntil(Millis(5));
  ASSERT_EQ(dead->grants, 1);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("waiter")).ok());
  // Run past expiry but short of the fence deadline: the holder is in
  // overrun, expiry timer fired, fence timer still pending.
  sim_.RunUntil(Millis(120));
  ASSERT_EQ(dead->expiries, 1);
  ASSERT_GT(backend_->pending_timers(), 0u);

  // The container is torn down (OOM kill) without ever releasing.
  ASSERT_TRUE(backend_->UnregisterContainer(ContainerId("dead")).ok());
  EXPECT_EQ(backend_->HolderOf(dev_).value_or(ContainerId("")).value(),
            "waiter");
  sim_.RunUntil(Millis(130));
  EXPECT_GE(waiter->grants, 1);

  // Nothing of the dead holder lingers: once the waiter's own token cycle
  // finishes, the wheel drains completely.
  waiter->rerequest = false;
  sim_.RunUntil(Seconds(1));
  EXPECT_EQ(backend_->pending_timers(), 0u);
}

TEST_F(EnforcementTest, SpatialUnregisterReclaimsExpiredUnreleasedHold) {
  cfg_.spatial_enabled = true;
  cfg_.sm_groups = 7;
  Rebuild();
  HostileClient* dead = Add<HostileClient>("dead", 0.3, 1.0, 4);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("dead")).ok());
  sim_.RunUntil(Millis(120));  // expired, never released, fence pending
  ASSERT_EQ(dead->grants, 1);
  ASSERT_EQ(dead->expiries, 1);

  ASSERT_TRUE(backend_->UnregisterContainer(ContainerId("dead")).ok());
  EXPECT_EQ(backend_->pending_timers(), 0u);

  // Every SM group came back: a full-GPU claimant (slice_groups = 0
  // claims all 7) can be granted immediately.
  PoliteClient* full = AddPolite("full", 0.3, 1.0);
  ASSERT_TRUE(backend_->RequestToken(ContainerId("full")).ok());
  sim_.RunUntil(Millis(125));
  EXPECT_EQ(full->grants, 1);
}

// --- metrics export -------------------------------------------------------

TEST_F(EnforcementTest, IsolationMetricsExportTheLedger) {
  Add<HostileClient>("tenant-a", 0.3, 1.0);
  const ContainerId c{"tenant-a"};
  for (int i = 0; i < cfg_.enforcement.clamp_threshold; ++i) {
    backend_->RecordViolation(c, ViolationKind::kFencedSubmit);
  }

  metrics::IsolationMetrics snapshot;
  snapshot.violations_total = backend_->violations_total();
  snapshot.clampdowns_total = backend_->clampdowns_total();
  for (const auto& [container, stats] : backend_->IsolationLedger()) {
    snapshot.fenced_submits += stats.fenced_submits;
    metrics::IsolationMetrics::TenantEntry entry;
    entry.container = container.value();
    entry.fenced_submits = stats.fenced_submits;
    entry.clamped = stats.clamped;
    snapshot.tenants.push_back(entry);
  }

  metrics::PrometheusExporter exporter;
  metrics::ExportIsolationMetrics(snapshot, exporter);
  std::ostringstream os;
  exporter.Write(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("ks_isolation_violations_total 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("ks_isolation_clampdowns_total 1"), std::string::npos);
  EXPECT_NE(text.find("ks_isolation_fenced_submits_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("ks_isolation_tenant_violations{tenant=\"tenant-a\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ks_isolation_tenant_clamped{tenant=\"tenant-a\"} 1"),
            std::string::npos);
}

}  // namespace
}  // namespace ks::vgpu
