#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "cuda/context.hpp"
#include "gpu/device.hpp"
#include "vgpu/frontend_hook.hpp"
#include "vgpu/token_backend.hpp"

namespace ks::vgpu {
namespace {

/// A container that always has another kernel to run (a training job): the
/// adversarial workload for the isolation guarantees.
class GreedyJob {
 public:
  GreedyJob(sim::Simulation* sim, gpu::GpuDevice* dev, TokenBackend* backend,
            const std::string& name, ResourceSpec spec,
            Duration kernel = Millis(10))
      : ctx_(dev, ContainerId(name)),
        hook_(&ctx_, backend, ContainerId(name), dev->uuid(), spec,
              dev->spec().memory_bytes),
        kernel_(kernel) {
    (void)sim;
    LaunchNext();
  }

  const FrontendHook& hook() const { return hook_; }

 private:
  void LaunchNext() {
    hook_.LaunchKernel({kernel_, 0.0, "train"}, cuda::kDefaultStream,
                       [this] { LaunchNext(); });
  }

  cuda::CudaContext ctx_;
  FrontendHook hook_;
  Duration kernel_;
};

struct MixParam {
  std::uint64_t seed;
  int containers;
};

class IsolationProperty : public ::testing::TestWithParam<MixParam> {};

/// Property (paper §4.5): for any mix of greedy containers whose
/// gpu_requests sum to <= 1, after the system warms up every container's
/// sliding-window usage stays within [gpu_request - eps, gpu_limit + eps].
/// The upper tolerance covers quota-granularity fluctuation (Fig 6 notes
/// usage "slightly fluctuates at its requested demand"); the lower covers
/// exchange-latency loss.
TEST_P(IsolationProperty, GreedyMixRespectsRequestAndLimit) {
  const MixParam param = GetParam();
  Rng rng(param.seed);
  sim::Simulation sim;
  gpu::GpuDevice dev(&sim, GpuUuid("GPU-P"));
  BackendConfig cfg;
  cfg.quota = Millis(100);
  TokenBackend backend(&sim, cfg);

  // Draw requests that sum to <= 1 (the scheduler guarantees this at
  // placement time; the backend relies on it).
  std::vector<ResourceSpec> specs(param.containers);
  double budget = 1.0;
  for (int i = 0; i < param.containers; ++i) {
    const double req = rng.Uniform(0.05, budget / (param.containers - i));
    budget -= req;
    specs[i].gpu_request = req;
    specs[i].gpu_limit = std::min(1.0, req + rng.Uniform(0.0, 0.5));
  }

  std::vector<std::unique_ptr<GreedyJob>> jobs;
  for (int i = 0; i < param.containers; ++i) {
    jobs.push_back(std::make_unique<GreedyJob>(
        &sim, &dev, &backend, "job-" + std::to_string(i), specs[i]));
  }

  sim.RunUntil(Seconds(120));

  const double kQuotaEps = 0.06;  // one quota is 1% of the 10s window
  double total_usage = 0.0;
  for (int i = 0; i < param.containers; ++i) {
    const double usage =
        backend.UsageOf(ContainerId("job-" + std::to_string(i)));
    total_usage += usage;
    EXPECT_LE(usage, specs[i].gpu_limit + kQuotaEps)
        << "container " << i << " exceeded its gpu_limit";
    EXPECT_GE(usage, specs[i].gpu_request - kQuotaEps)
        << "container " << i << " starved below its gpu_request";
  }
  EXPECT_LE(total_usage, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomMixes, IsolationProperty,
    ::testing::Values(MixParam{1, 2}, MixParam{2, 2}, MixParam{3, 3},
                      MixParam{4, 3}, MixParam{5, 4}, MixParam{6, 4},
                      MixParam{7, 5}, MixParam{8, 5}, MixParam{9, 6},
                      MixParam{10, 8}),
    [](const ::testing::TestParamInfo<MixParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.containers);
    });

struct MemParam {
  std::uint64_t seed;
};

class MemoryProperty : public ::testing::TestWithParam<MemParam> {};

/// Property: under any random alloc/free sequence, the frontend's ledger
/// never lets a container exceed its gpu_mem quota, and the device-level
/// ledger agrees with the hook-level ledger.
TEST_P(MemoryProperty, RandomAllocFreeNeverExceedsQuota) {
  Rng rng(GetParam().seed);
  sim::Simulation sim;
  gpu::GpuDevice dev(&sim, GpuUuid("GPU-M"));
  TokenBackend backend(&sim);
  ResourceSpec spec;
  spec.gpu_mem = rng.Uniform(0.1, 0.9);
  cuda::CudaContext ctx(&dev, ContainerId("m"));
  FrontendHook hook(&ctx, &backend, ContainerId("m"), dev.uuid(), spec,
                    dev.spec().memory_bytes);
  const std::uint64_t quota = hook.memory_quota_bytes();

  std::vector<gpu::DevicePtr> live;
  for (int step = 0; step < 500; ++step) {
    if (live.empty() || rng.Chance(0.6)) {
      const auto bytes = static_cast<std::uint64_t>(
          rng.UniformInt(1, static_cast<std::int64_t>(quota / 4 + 1)));
      gpu::DevicePtr p = 0;
      const auto r = hook.MemAlloc(&p, bytes);
      if (hook.AllocatedBytes() > quota) {
        ADD_FAILURE() << "ledger exceeded quota at step " << step;
      }
      if (r == cuda::CudaResult::kSuccess) live.push_back(p);
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      EXPECT_EQ(hook.MemFree(live[idx]), cuda::CudaResult::kSuccess);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    EXPECT_LE(hook.AllocatedBytes(), quota);
    EXPECT_EQ(hook.AllocatedBytes(), dev.MemoryUsedBy(ContainerId("m")));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryProperty,
                         ::testing::Values(MemParam{11}, MemParam{22},
                                           MemParam{33}, MemParam{44},
                                           MemParam{55}),
                         [](const ::testing::TestParamInfo<MemParam>& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

/// Two containers on separate devices managed by one backend must both run
/// at full tilt — the backend manages each device's token independently.
TEST(IsolationCross, SeparateDevicesRunConcurrently) {
  sim::Simulation sim;
  gpu::GpuDevice d1(&sim, GpuUuid("GPU-1"));
  gpu::GpuDevice d2(&sim, GpuUuid("GPU-2"));
  TokenBackend backend(&sim);
  GreedyJob a(&sim, &d1, &backend, "a", ResourceSpec{});
  GreedyJob b(&sim, &d2, &backend, "b", ResourceSpec{});
  sim.RunUntil(Seconds(20));
  EXPECT_GT(backend.UsageOf(ContainerId("a")), 0.9);
  EXPECT_GT(backend.UsageOf(ContainerId("b")), 0.9);
}

}  // namespace
}  // namespace ks::vgpu
