#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "k8s/cluster.hpp"
#include "kubeshare/autoscaler.hpp"
#include "kubeshare/replicaset.hpp"
#include "metrics/slo.hpp"
#include "serving/arrivals.hpp"
#include "serving/service.hpp"
#include "workload/host.hpp"

namespace ks::serving {
namespace {

// ---- RateEnvelope ----------------------------------------------------------

TEST(RateEnvelopeTest, SteadyIsFlat) {
  const RateEnvelope env = RateEnvelope::Steady(120.0);
  EXPECT_DOUBLE_EQ(env.RateAt(Time{0}), 120.0);
  EXPECT_DOUBLE_EQ(env.RateAt(Seconds(1e6)), 120.0);
  EXPECT_DOUBLE_EQ(env.max_rate_hz(), 120.0);
}

TEST(RateEnvelopeTest, DiurnalSpansBaseToPeakAndWraps) {
  const Duration period = Seconds(60.0);
  const RateEnvelope env = RateEnvelope::Diurnal(40.0, 140.0, period);
  double lo = 1e18, hi = 0.0;
  for (int i = 0; i < 240; ++i) {
    const double r = env.RateAt(Seconds(i * 0.25));
    EXPECT_GE(r, 40.0 - 1e-9);
    EXPECT_LE(r, 140.0 + 1e-9);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_LT(lo, 55.0);   // trough reached (midpoint sampling stays near base)
  EXPECT_GT(hi, 125.0);  // crest reached
  // The majorant dominates every sampled rate.
  EXPECT_GE(env.max_rate_hz(), hi - 1e-9);
  // Wraps: the second period replays the first.
  EXPECT_DOUBLE_EQ(env.RateAt(Seconds(12.0)),
                   env.RateAt(Seconds(12.0) + period));
}

TEST(RateEnvelopeTest, FlashCrowdRampsUpAndBack) {
  const RateEnvelope env = RateEnvelope::FlashCrowd(
      50.0, 300.0, Seconds(20.0), /*ramp=*/Seconds(2.0), /*hold=*/Seconds(10.0));
  EXPECT_DOUBLE_EQ(env.RateAt(Seconds(5.0)), 50.0);
  EXPECT_DOUBLE_EQ(env.RateAt(Seconds(25.0)), 300.0);  // inside the hold
  EXPECT_DOUBLE_EQ(env.RateAt(Seconds(60.0)), 50.0);   // back to base
  const double mid_up = env.RateAt(Seconds(21.0));
  EXPECT_GT(mid_up, 50.0);
  EXPECT_LT(mid_up, 300.0);
  EXPECT_DOUBLE_EQ(env.max_rate_hz(), 300.0);
}

TEST(RateEnvelopeTest, ScaledMultipliesEveryRate) {
  const RateEnvelope env =
      RateEnvelope::Diurnal(40.0, 140.0, Seconds(60.0)).Scaled(2.0);
  EXPECT_GE(env.RateAt(Seconds(0.0)), 80.0 - 1e-9);
  EXPECT_DOUBLE_EQ(env.max_rate_hz(),
                   RateEnvelope::Diurnal(40.0, 140.0, Seconds(60.0))
                       .max_rate_hz() * 2.0);
}

TEST(ThinningSequenceTest, StrictlyIncreasingAndRateAccurate) {
  ThinningSequence seq(RateEnvelope::Steady(200.0), /*seed=*/9);
  Time prev{-1};
  std::uint64_t n = 0;
  for (;;) {
    const Time t = seq.Next();
    if (t >= Seconds(100.0)) break;
    ASSERT_GT(t, prev);
    prev = t;
    ++n;
  }
  // 200 rps over 100s = 20000 expected; Poisson sd ~141. 10 sds of slack.
  EXPECT_NEAR(static_cast<double>(n), 20000.0, 1400.0);
}

TEST(BatchedArrivalStreamTest, BatchesMatchReferenceArrivalsExactly) {
  const RateEnvelope env = RateEnvelope::FlashCrowd(
      30.0, 200.0, Seconds(4.0), Seconds(1.0), Seconds(3.0));
  const std::uint64_t seed = 17;
  const Time until = Seconds(12.0);

  std::vector<Time> ref;
  {
    sim::Simulation sim;
    ReferenceArrivalProcess gen(&sim, env, seed, until,
                                [&](Time t) { ref.push_back(t); });
    gen.Start();
    sim.RunUntil(Seconds(20.0));
    EXPECT_EQ(gen.engine_events(), gen.arrivals());
  }

  std::vector<Time> batched;
  std::uint64_t events = 0;
  {
    sim::Simulation sim;
    std::uint64_t max_batch = 0;
    BatchedArrivalStream gen(&sim, env, seed, until, Millis(10),
                             [&](const std::vector<Time>& batch) {
                               ASSERT_FALSE(batch.empty());
                               max_batch = std::max<std::uint64_t>(
                                   max_batch, batch.size());
                               for (Time t : batch) {
                                 // Delivered at the window end: arrivals are
                                 // in the past, and in order.
                                 EXPECT_LE(t, sim.Now());
                                 batched.push_back(t);
                               }
                             });
    gen.Start();
    sim.RunUntil(Seconds(20.0));
    events = gen.engine_events();
    EXPECT_EQ(gen.batches(), events);
    EXPECT_GT(max_batch, 1u);  // the flash crowd actually batched
  }

  // Identical arrival timestamps — the thinning core is shared.
  EXPECT_EQ(batched, ref);
  // And materially fewer engine events at flash-crowd rates.
  EXPECT_LT(events, ref.size());
}

TEST(BatchedArrivalStreamTest, ZeroWindowIsPerRequest) {
  const RateEnvelope env = RateEnvelope::Steady(100.0);
  sim::Simulation sim;
  std::uint64_t singletons = 0;
  BatchedArrivalStream gen(&sim, env, /*seed=*/3, Seconds(5.0), Duration{0},
                           [&](const std::vector<Time>& batch) {
                             EXPECT_EQ(batch.size(), 1u);
                             ++singletons;
                           });
  gen.Start();
  sim.RunUntil(Seconds(10.0));
  EXPECT_EQ(gen.arrivals(), singletons);
  EXPECT_EQ(gen.engine_events(), gen.arrivals());
}

// ---- ServiceFrontend on a live cluster -------------------------------------

struct Harness {
  k8s::Cluster cluster;
  kubeshare::KubeShare kubeshare;
  workload::WorkloadHost host;

  explicit Harness(k8s::ClusterConfig config)
      : cluster(config), kubeshare(&cluster), host(&cluster) {
    EXPECT_TRUE(cluster.Start().ok());
    EXPECT_TRUE(kubeshare.Start().ok());
  }

  kubeshare::SharePodReplicaSet::Spec ReplicaSpec(const std::string& name,
                                                  int replicas) {
    kubeshare::SharePodReplicaSet::Spec spec;
    spec.name = name;
    spec.replicas = replicas;
    spec.template_spec.gpu.gpu_request = 0.45;
    spec.template_spec.gpu.gpu_limit = 1.0;
    spec.template_spec.gpu.gpu_mem = 0.2;
    return spec;
  }

  /// Runs the sim until `n` replicas are serving. The pod-creation
  /// pipeline is seconds long by design (Fig 10 calibration), so tests
  /// that want steady-state behaviour wait it out before asserting.
  void AwaitReplicas(const ServiceFrontend& frontend, std::size_t n) {
    const Time deadline = cluster.sim().Now() + Seconds(20.0);
    while (frontend.ready_replicas() < n && cluster.sim().Now() < deadline) {
      cluster.sim().RunUntil(cluster.sim().Now() + Millis(250));
    }
    ASSERT_EQ(frontend.ready_replicas(), n);
  }
};

ServiceConfig SmallService() {
  ServiceConfig cfg;
  cfg.name = "svc";
  cfg.envelope = RateEnvelope::Steady(50.0);
  cfg.slo_p99 = Millis(250);
  cfg.until = Seconds(8.0);
  cfg.seed = 5;
  cfg.replica.kernel_per_request = Millis(10);
  cfg.replica.model_bytes = 256ull << 20;
  return cfg;
}

TEST(ServiceFrontendTest, ServesEveryArrivalAndDrains) {
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  Harness h(config);

  ServiceConfig cfg = SmallService();
  cfg.until = Seconds(25.0);
  ServiceFrontend frontend(&h.cluster, &h.host, cfg);
  kubeshare::SharePodReplicaSet rs(&h.kubeshare, h.ReplicaSpec("svc", 2));
  rs.SetReplicaHook(frontend.MakeReplicaHook());
  ASSERT_TRUE(rs.Start().ok());
  frontend.Start();

  // 50 rps across two 10ms replicas is underloaded: once the cold-start
  // backlog (arrivals buffered while the pods were still being created)
  // has drained, the sliding-window p99 sits near the service time.
  h.cluster.sim().RunUntil(Seconds(24.0));
  EXPECT_LT(frontend.ObservedP99Seconds(), 0.25);

  h.cluster.sim().RunUntil(Seconds(45.0));
  EXPECT_GT(frontend.arrived(), 300u);
  EXPECT_EQ(frontend.served(), frontend.arrived());
  EXPECT_EQ(frontend.shed(), 0u);  // admission off by default
  EXPECT_EQ(frontend.lost(), 0u);
  EXPECT_TRUE(frontend.Drained());
  EXPECT_EQ(frontend.ready_replicas(), 2u);
  EXPECT_EQ(frontend.digest().count(), frontend.served());
}

TEST(ServiceFrontendTest, ColdStartBuffersUntilFirstReplica) {
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  Harness h(config);

  ServiceConfig cfg = SmallService();
  cfg.until = Seconds(4.0);
  ServiceFrontend frontend(&h.cluster, &h.host, cfg);
  kubeshare::SharePodReplicaSet rs(&h.kubeshare, h.ReplicaSpec("svc", 2));
  rs.SetReplicaHook(frontend.MakeReplicaHook());

  frontend.Start();  // generator first; no replicas exist yet
  h.cluster.sim().RunUntil(Seconds(2.0));
  EXPECT_GT(frontend.arrived(), 0u);
  EXPECT_EQ(frontend.served(), 0u);
  EXPECT_FALSE(frontend.Drained());

  ASSERT_TRUE(rs.Start().ok());
  h.cluster.sim().RunUntil(Seconds(20.0));
  EXPECT_EQ(frontend.served(), frontend.arrived());
  EXPECT_TRUE(frontend.Drained());
}

TEST(ServiceFrontendTest, ScaleToZeroLosesOnlyInflight) {
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  Harness h(config);

  ServiceConfig cfg = SmallService();
  cfg.envelope = RateEnvelope::Steady(150.0);
  cfg.until = Seconds(3.0);
  cfg.replica.kernel_per_request = Millis(40);  // builds a backlog
  ServiceFrontend frontend(&h.cluster, &h.host, cfg);
  kubeshare::SharePodReplicaSet rs(&h.kubeshare, h.ReplicaSpec("svc", 2));
  rs.SetReplicaHook(frontend.MakeReplicaHook());
  ASSERT_TRUE(rs.Start().ok());
  frontend.Start();

  // Wait out the pod pipeline so Scale(0) tears down RUNNING replicas; by
  // then the 3 s of buffered arrivals have flushed into the replicas'
  // queues and most are still in flight (the backlog needs ~16 s to serve).
  h.AwaitReplicas(frontend, 2);
  if (testing::Test::HasFatalFailure()) return;
  const std::uint64_t arrived = frontend.arrived();
  ASSERT_GT(arrived, 0u);
  ASSERT_GT(arrived, frontend.served());  // backlog in flight
  rs.Scale(0);
  h.cluster.sim().RunUntil(Seconds(30.0));

  EXPECT_EQ(frontend.ready_replicas(), 0u);
  EXPECT_GT(frontend.lost(), 0u);
  EXPECT_EQ(frontend.arrived(), frontend.served() + frontend.lost());
  EXPECT_TRUE(frontend.Drained());
}

TEST(ServiceFrontendTest, AdmissionShedPolicyShedsUnderOverload) {
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 1;
  config.backend.admission.enabled = true;
  config.backend.admission.policy = vgpu::AdmissionConfig::Policy::kShed;
  config.backend.admission.min_samples = 10;
  Harness h(config);

  ServiceConfig cfg = SmallService();
  cfg.envelope = RateEnvelope::Steady(100.0);
  cfg.slo_p99 = Millis(50);
  cfg.until = Seconds(6.0);
  cfg.replica.kernel_per_request = Millis(30);  // 1 replica caps at ~33 rps
  ServiceFrontend frontend(&h.cluster, &h.host, cfg);
  kubeshare::SharePodReplicaSet rs(&h.kubeshare, h.ReplicaSpec("svc", 1));
  rs.SetReplicaHook(frontend.MakeReplicaHook());
  ASSERT_TRUE(rs.Start().ok());
  frontend.Start();

  h.cluster.sim().RunUntil(Seconds(40.0));

  EXPECT_GT(frontend.shed(), 0u);
  EXPECT_EQ(frontend.arrived(), frontend.served() + frontend.shed());
  EXPECT_TRUE(frontend.Drained());
  // The daemon-side counters saw the same sheds.
  const metrics::SloMetrics slo =
      metrics::CollectSloMetrics(h.cluster, {frontend.Sample()});
  EXPECT_EQ(slo.admission_sheds_total, frontend.shed());
  EXPECT_EQ(slo.admission_queued_total, 0u);
}

TEST(ServiceFrontendTest, AdmissionQueuePolicyRetriesInsteadOfDropping) {
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 1;
  config.backend.admission.enabled = true;
  config.backend.admission.policy = vgpu::AdmissionConfig::Policy::kQueue;
  config.backend.admission.min_samples = 10;
  config.backend.admission.window = Seconds(2.0);
  Harness h(config);

  ServiceConfig cfg = SmallService();
  cfg.envelope = RateEnvelope::Steady(80.0);
  cfg.slo_p99 = Millis(50);
  // Arrivals must outlast the pod pipeline (~4-5 s): only requests that
  // reach the door AFTER the latency digest has warmed up can be queued.
  cfg.until = Seconds(12.0);
  cfg.replica.kernel_per_request = Millis(30);
  ServiceFrontend frontend(&h.cluster, &h.host, cfg);
  kubeshare::SharePodReplicaSet rs(&h.kubeshare, h.ReplicaSpec("svc", 1));
  rs.SetReplicaHook(frontend.MakeReplicaHook());
  ASSERT_TRUE(rs.Start().ok());
  frontend.Start();

  h.cluster.sim().RunUntil(Seconds(120.0));

  EXPECT_GT(frontend.queued_retries(), 0u);
  EXPECT_EQ(frontend.shed(), 0u);
  // Queueing holds requests at the door until the window ages out, then
  // admits them: nothing is dropped.
  EXPECT_EQ(frontend.arrived(), frontend.served());
  EXPECT_TRUE(frontend.Drained());
}

TEST(ServiceFrontendTest, SloSampleExportsKsSloFamily) {
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  Harness h(config);

  ServiceFrontend frontend(&h.cluster, &h.host, SmallService());
  kubeshare::SharePodReplicaSet rs(&h.kubeshare, h.ReplicaSpec("svc", 2));
  rs.SetReplicaHook(frontend.MakeReplicaHook());
  ASSERT_TRUE(rs.Start().ok());
  frontend.Start();
  h.cluster.sim().RunUntil(Seconds(30.0));

  const metrics::SloMetrics slo =
      metrics::CollectSloMetrics(h.cluster, {frontend.Sample()});
  ASSERT_EQ(slo.services.size(), 1u);
  const metrics::ServiceSloSample& s = slo.services[0];
  EXPECT_EQ(s.service, "svc");
  EXPECT_DOUBLE_EQ(s.slo_s, 0.25);
  EXPECT_GT(s.p50_s, 0.0);
  EXPECT_GE(s.p99_s, s.p50_s);
  EXPECT_GE(s.p999_s, s.p99_s);
  EXPECT_EQ(s.arrived, frontend.arrived());
  // Cold-start latencies blow the SLO for the buffered arrivals, so the
  // rate is nonzero — assert the accounting identity instead of a value.
  EXPECT_DOUBLE_EQ(s.violation_rate,
                   static_cast<double>(s.violations + s.shed + s.lost) /
                       static_cast<double>(s.arrived));

  metrics::PrometheusExporter exporter;
  metrics::ExportSloMetrics(slo, exporter);
  std::ostringstream os;
  exporter.Write(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("ks_slo_p99_seconds{service=\"svc\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ks_slo_violation_rate{service=\"svc\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ks_slo_admission_sheds_total"), std::string::npos);
}

// ---- SloAutoscaler ---------------------------------------------------------

struct AutoscalerHarness : Harness {
  kubeshare::SharePodReplicaSet rs;
  double p99 = 0.0;  // scripted probe reading

  AutoscalerHarness(k8s::ClusterConfig config, int replicas)
      : Harness(config), rs(&kubeshare, ReplicaSpec("svc", replicas)) {
    rs.SetReplicaHook([this](const std::string& name) {
      host.ExpectJob(name, [] {
        workload::RequestServerSpec spec;
        spec.model_bytes = 64ull << 20;
        return std::make_unique<workload::RequestServerJob>(
            spec, workload::RequestServerJob::LifecycleFn{});
      });
    });
    EXPECT_TRUE(rs.Start().ok());
  }

  kubeshare::AutoscalerConfig Config() {
    kubeshare::AutoscalerConfig cfg;
    cfg.slo_p99 = Millis(250);
    cfg.min_replicas = 1;
    cfg.max_replicas = 6;
    cfg.period = Seconds(1.0);
    cfg.up_cooldown = Seconds(2.0);
    cfg.down_cooldown = Seconds(5.0);
    return cfg;
  }

  std::unique_ptr<kubeshare::SloAutoscaler> MakeScaler(
      kubeshare::AutoscalerConfig cfg) {
    return std::make_unique<kubeshare::SloAutoscaler>(
        &cluster.sim(), cluster.tick_hub(), &rs, cfg, [this] { return p99; });
  }
};

TEST(SloAutoscalerTest, ScalesUpOnBreachWithCooldownAndClamp) {
  k8s::ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = 2;
  AutoscalerHarness h(config, 2);
  auto scaler = h.MakeScaler(h.Config());
  ASSERT_TRUE(scaler->Start().ok());

  h.p99 = 0.30;  // above 0.85 * 0.25s
  h.cluster.sim().RunUntil(Seconds(1.5));  // one evaluation
  EXPECT_EQ(h.rs.desired(), 4);            // +up_step
  h.cluster.sim().RunUntil(Seconds(2.5));  // next eval inside up_cooldown
  EXPECT_EQ(h.rs.desired(), 4);
  h.cluster.sim().RunUntil(Seconds(10.0));
  EXPECT_EQ(h.rs.desired(), 6);  // clamped at max_replicas
  EXPECT_GE(scaler->scale_ups(), 2u);
  EXPECT_EQ(scaler->scale_downs(), 0u);
}

TEST(SloAutoscalerTest, ScalesDownSlowlyInsideHeadroom) {
  k8s::ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = 2;
  AutoscalerHarness h(config, 4);
  auto scaler = h.MakeScaler(h.Config());
  ASSERT_TRUE(scaler->Start().ok());

  h.p99 = 0.02;  // far under 0.40 * 0.25s
  h.cluster.sim().RunUntil(Seconds(30.0));
  EXPECT_EQ(h.rs.desired(), 1);  // stepped down to min, 1 per down_cooldown
  EXPECT_GE(scaler->scale_downs(), 3u);
}

TEST(SloAutoscalerTest, DeadBandHolds) {
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  AutoscalerHarness h(config, 2);
  auto scaler = h.MakeScaler(h.Config());
  ASSERT_TRUE(scaler->Start().ok());

  h.p99 = 0.15;  // between 0.40 * slo = 0.10 and 0.85 * slo = 0.2125
  h.cluster.sim().RunUntil(Seconds(20.0));
  EXPECT_EQ(h.rs.desired(), 2);
  EXPECT_EQ(scaler->scale_ups(), 0u);
  EXPECT_EQ(scaler->scale_downs(), 0u);
  EXPECT_GT(scaler->evaluations(), 10u);
}

TEST(SloAutoscalerTest, ColdStartProbeProducesNoDecision) {
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  AutoscalerHarness h(config, 2);
  auto scaler = h.MakeScaler(h.Config());
  ASSERT_TRUE(scaler->Start().ok());

  h.p99 = 0.0;  // no samples yet
  h.cluster.sim().RunUntil(Seconds(10.0));
  EXPECT_EQ(h.rs.desired(), 2);
  EXPECT_GT(scaler->evaluations(), 5u);
}

TEST(SloAutoscalerTest, StartClampsOutOfBoundsReplicaCount) {
  k8s::ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = 2;
  AutoscalerHarness h(config, 8);  // above max_replicas = 6
  auto scaler = h.MakeScaler(h.Config());
  ASSERT_TRUE(scaler->Start().ok());
  EXPECT_EQ(h.rs.desired(), 6);
}

TEST(SloAutoscalerTest, RejectsBadConfig) {
  k8s::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 1;
  AutoscalerHarness h(config, 1);
  kubeshare::AutoscalerConfig bad = h.Config();
  bad.min_replicas = 5;
  bad.max_replicas = 2;
  auto scaler = h.MakeScaler(bad);
  EXPECT_FALSE(scaler->Start().ok());
}

TEST(SloAutoscalerTest, CrashStopsEvaluationRestartResumes) {
  k8s::ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = 2;
  AutoscalerHarness h(config, 2);
  auto scaler = h.MakeScaler(h.Config());
  ASSERT_TRUE(scaler->Start().ok());

  h.p99 = 0.30;
  h.cluster.sim().RunUntil(Seconds(1.5));
  EXPECT_EQ(h.rs.desired(), 4);

  scaler->Crash();
  EXPECT_TRUE(scaler->down());
  const std::uint64_t evals = scaler->evaluations();
  h.cluster.sim().RunUntil(Seconds(6.0));
  EXPECT_EQ(scaler->evaluations(), evals);  // dead controllers don't evaluate
  EXPECT_EQ(h.rs.desired(), 4);            // the store survives the crash

  scaler->Restart();
  h.cluster.sim().RunUntil(Seconds(20.0));
  // Resumed from the surviving desired count and kept scaling to max.
  EXPECT_EQ(h.rs.desired(), 6);
}

}  // namespace
}  // namespace ks::serving
