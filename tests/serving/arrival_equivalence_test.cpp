// Differential tests for the serving subsystem (ROADMAP item 4).
//
// Oracle pairs pinned here:
//   1. BatchedArrivalStream and ReferenceArrivalProcess draw identical
//      arrival timestamp sequences for any envelope/seed — thinning is a
//      shared core, so this holds for every batching window, not just the
//      degenerate one.
//   2. A full serving cluster driven by the batched generator with
//      window <= 0 is byte-equal to one driven by the per-request
//      reference: same request trace, same kernel trace, same token
//      trace — including while chaos restarts node-0's token daemon and
//      crashes the DevMgr mid-run.
//   3. Admission control armed but never triggered (min_samples above the
//      run's request count) is byte-equal to admission disabled: the
//      digest bookkeeping on the admit path must not perturb the
//      schedule. This is the "knobs default off changes nothing" claim.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "gpu/device.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "kubeshare/replicaset.hpp"
#include "serving/arrivals.hpp"
#include "serving/service.hpp"
#include "workload/host.hpp"

namespace ks::serving {
namespace {

TEST(ArrivalEquivalence, ThinningIsSharedAcrossGeneratorsAndWindows) {
  const RateEnvelope envelopes[] = {
      RateEnvelope::Steady(80.0),
      RateEnvelope::Diurnal(20.0, 160.0, Seconds(30.0)),
      RateEnvelope::FlashCrowd(25.0, 400.0, Seconds(10.0), Seconds(1.0),
                               Seconds(5.0)),
  };
  const Duration windows[] = {Duration{0}, Millis(1), Millis(10), Millis(100)};
  const Time until = Seconds(25.0);
  for (std::size_t e = 0; e < std::size(envelopes); ++e) {
    for (const std::uint64_t seed : {1ull, 77ull, 4242ull}) {
      std::vector<Time> ref;
      {
        sim::Simulation sim;
        ReferenceArrivalProcess gen(&sim, envelopes[e], seed, until,
                                    [&](Time t) { ref.push_back(t); });
        gen.Start();
        sim.RunUntil(Seconds(60.0));
      }
      ASSERT_FALSE(ref.empty());
      for (const Duration window : windows) {
        std::vector<Time> got;
        sim::Simulation sim;
        BatchedArrivalStream gen(&sim, envelopes[e], seed, until, window,
                                 [&](const std::vector<Time>& batch) {
                                   got.insert(got.end(), batch.begin(),
                                              batch.end());
                                 });
        gen.Start();
        sim.RunUntil(Seconds(60.0));
        EXPECT_EQ(got, ref)
            << "envelope " << e << " seed " << seed << " window "
            << window.count() << "us";
        EXPECT_EQ(gen.arrivals(), ref.size());
      }
    }
  }
}

// ---- Full-cluster byte-equality --------------------------------------------

struct ServingTraces {
  std::vector<std::string> requests;  // frontend TraceFn
  std::map<std::string, std::vector<std::string>> kernels;  // by device uuid
  std::map<std::string, std::vector<std::string>> tokens;   // by node
  std::uint64_t arrived = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t lost = 0;
  std::uint64_t generator_events = 0;
};

struct ServingRunOptions {
  bool use_reference = false;
  Duration batch_window{0};
  bool admission_armed_idle = false;  // enabled, but thresholds unreachable
  bool chaos = false;
  std::uint64_t seed = 21;
  Time horizon = Seconds(40.0);
};

ServingTraces RunServingCluster(const ServingRunOptions& opt) {
  auto out = std::make_unique<ServingTraces>();
  {
    k8s::ClusterConfig ccfg;
    ccfg.nodes = 2;
    ccfg.gpus_per_node = 2;
    if (opt.admission_armed_idle) {
      ccfg.backend.admission.enabled = true;
      // Unreachable trigger: the run serves far fewer requests than this.
      ccfg.backend.admission.min_samples = 1u << 30;
    }
    k8s::Cluster cluster(ccfg);
    kubeshare::KubeShare kubeshare(&cluster);
    workload::WorkloadHost host(&cluster);

    ServingTraces* sink = out.get();
    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      k8s::Cluster::NodeHandle& node = cluster.node(n);
      for (auto& dev : node.gpus) {
        const std::string uuid = dev->uuid().value();
        sink->kernels[uuid];
        dev->SetKernelTraceFn([sink, uuid](const gpu::KernelTraceEvent& e) {
          sink->kernels[uuid].push_back(
              std::to_string(e.id) + " " + e.owner.value() + " " + e.name +
              " " + std::to_string(e.start.count()) + " " +
              std::to_string(e.finish.count()));
        });
      }
      const std::string node_name = node.name;
      sink->tokens[node_name];
      node.token_backend->SetGrantTraceFn(
          [sink, node_name](const char* what, const ContainerId& container,
                            Time when) {
            sink->tokens[node_name].push_back(
                std::string(what) + " " + container.value() + " " +
                std::to_string(when.count()));
          });
    }

    EXPECT_TRUE(cluster.Start().ok());
    EXPECT_TRUE(kubeshare.Start().ok());

    ServiceConfig cfg;
    cfg.name = "svc";
    cfg.envelope = RateEnvelope::FlashCrowd(20.0, 120.0, Seconds(6.0),
                                            Seconds(1.0), Seconds(4.0));
    cfg.slo_p99 = Millis(250);
    cfg.until = Seconds(20.0);
    cfg.seed = opt.seed;
    cfg.use_reference_generator = opt.use_reference;
    cfg.batch_window = opt.batch_window;
    cfg.replica.kernel_per_request = Millis(8);
    cfg.replica.model_bytes = 256ull << 20;
    ServiceFrontend frontend(&cluster, &host, cfg);
    frontend.SetTraceFn([sink](const char* what, Time arrival, Time when,
                               const std::string& replica) {
      sink->requests.push_back(std::string(what) + " " +
                               std::to_string(arrival.count()) + " " +
                               std::to_string(when.count()) + " " + replica);
    });

    kubeshare::SharePodReplicaSet::Spec spec;
    spec.name = "svc";
    spec.replicas = 3;
    spec.template_spec.gpu.gpu_request = 0.45;
    spec.template_spec.gpu.gpu_limit = 1.0;
    spec.template_spec.gpu.gpu_mem = 0.2;
    kubeshare::SharePodReplicaSet rs(&kubeshare, spec);
    rs.SetReplicaHook(frontend.MakeReplicaHook());
    EXPECT_TRUE(rs.Start().ok());
    frontend.Start();

    chaos::FaultPlan plan;
    if (opt.chaos) {
      chaos::Fault daemon;
      daemon.at = Seconds(8);
      daemon.kind = chaos::FaultKind::kTokenDaemonRestart;
      daemon.node = "node-0";
      daemon.duration = Seconds(2);
      plan.faults.push_back(daemon);
      chaos::Fault devmgr;
      devmgr.at = Seconds(14);
      devmgr.kind = chaos::FaultKind::kDevMgrCrash;
      devmgr.duration = Seconds(3);
      plan.faults.push_back(devmgr);
    }
    chaos::FaultInjector injector(&cluster, plan);
    injector.SetKubeShare(&kubeshare);
    if (opt.chaos) {
      EXPECT_TRUE(injector.Arm().ok()) << "chaos plan failed to arm";
    }

    cluster.sim().RunUntil(opt.horizon);

    sink->arrived = frontend.arrived();
    sink->served = frontend.served();
    sink->shed = frontend.shed();
    sink->lost = frontend.lost();
    sink->generator_events = frontend.generator_events();
    EXPECT_GT(frontend.arrived(), 0u);
    EXPECT_EQ(frontend.arrived(),
              frontend.served() + frontend.shed() + frontend.lost());
  }
  return std::move(*out);
}

void ExpectLinesEqual(const std::vector<std::string>& a,
                      const std::vector<std::string>& b,
                      const std::string& what) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) continue;
    ADD_FAILURE() << what << " diverged at line " << i << ": \"" << a[i]
                  << "\" vs \"" << b[i] << "\"";
    return;
  }
  EXPECT_EQ(a.size(), b.size()) << what << " lengths differ";
}

void ExpectServingTracesEqual(const ServingTraces& a, const ServingTraces& b,
                              const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.lost, b.lost);
  ExpectLinesEqual(a.requests, b.requests, "request trace");
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  for (const auto& [uuid, lines] : a.kernels) {
    auto it = b.kernels.find(uuid);
    ASSERT_NE(it, b.kernels.end()) << uuid;
    ExpectLinesEqual(lines, it->second, "kernel trace on " + uuid);
  }
  ASSERT_EQ(a.tokens.size(), b.tokens.size());
  for (const auto& [node, lines] : a.tokens) {
    auto it = b.tokens.find(node);
    ASSERT_NE(it, b.tokens.end()) << node;
    ExpectLinesEqual(lines, it->second, "token trace on " + node);
  }
}

TEST(ServingEquivalence, PerRequestWindowByteEqualToReference) {
  for (const std::uint64_t seed : {21ull, 22ull, 23ull}) {
    ServingRunOptions batched;
    batched.batch_window = Duration{0};
    batched.seed = seed;
    ServingRunOptions reference = batched;
    reference.use_reference = true;
    const ServingTraces a = RunServingCluster(batched);
    const ServingTraces b = RunServingCluster(reference);
    ExpectServingTracesEqual(a, b, "window-0 seed " + std::to_string(seed));
    EXPECT_EQ(a.generator_events, b.generator_events)
        << "per-request mode must cost exactly the reference's events";
  }
}

TEST(ServingEquivalence, PerRequestWindowByteEqualToReferenceUnderChaos) {
  for (const std::uint64_t seed : {31ull, 32ull}) {
    ServingRunOptions batched;
    batched.batch_window = Duration{0};
    batched.chaos = true;
    batched.seed = seed;
    ServingRunOptions reference = batched;
    reference.use_reference = true;
    const ServingTraces a = RunServingCluster(batched);
    const ServingTraces b = RunServingCluster(reference);
    ExpectServingTracesEqual(a, b, "chaos seed " + std::to_string(seed));
  }
}

TEST(ServingEquivalence, ArmedIdleAdmissionByteEqualToDisabled) {
  for (const bool chaos : {false, true}) {
    ServingRunOptions off;
    off.batch_window = Millis(10);
    off.chaos = chaos;
    ServingRunOptions armed = off;
    armed.admission_armed_idle = true;
    const ServingTraces a = RunServingCluster(off);
    const ServingTraces b = RunServingCluster(armed);
    ExpectServingTracesEqual(a, b,
                             chaos ? "armed-idle chaos" : "armed-idle");
    EXPECT_EQ(b.shed, 0u);
  }
}

TEST(ServingEquivalence, BatchedClusterRunIsDeterministic) {
  ServingRunOptions opt;
  opt.batch_window = Millis(10);
  opt.chaos = true;
  const ServingTraces a = RunServingCluster(opt);
  const ServingTraces b = RunServingCluster(opt);
  ExpectServingTracesEqual(a, b, "determinism");
  EXPECT_EQ(a.generator_events, b.generator_events);
}

}  // namespace
}  // namespace ks::serving
