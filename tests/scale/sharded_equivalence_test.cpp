// Sharded-vs-single differential: the single-engine run is the oracle, and
// every other engine kind — single with the scale event economy, sharded
// serial, sharded with worker threads — must reproduce its kernel/NVML/
// token traces and final cluster state byte-for-byte, across seeded
// full-cluster runs including node-crash and DevMgr-resync chaos.
//
// Runs under `ctest -L differential`; CI repeats it under ASan+UBSan and
// builds the sharded engine under TSan.

#include "scale/cluster_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace ks::scale {
namespace {

ScaleConfig SmallCluster(std::uint64_t seed) {
  ScaleConfig config;
  config.nodes = 48;
  config.sharepods = 384;
  config.node_shards = 4;
  config.threads = 2;
  config.duration = Seconds(8);
  config.seed = seed;
  config.mean_lifetime = Seconds(3);  // several churn generations
  config.crash_nodes = 2;            // node-kill chaos
  config.devmgr_crashes = 1;         // informer loss + resync chaos
  config.capture_traces = true;
  return config;
}

void ExpectEquivalent(const ScaleResult& oracle, const ScaleResult& got) {
  SCOPED_TRACE(got.engine);
  // The differential surface: traces (order-insensitive digest plus the
  // canonically sorted dumps), final state, and the work counters.
  EXPECT_EQ(got.trace_digest, oracle.trace_digest);
  EXPECT_EQ(got.state_digest, oracle.state_digest);
  ASSERT_EQ(got.shard_traces.size(), oracle.shard_traces.size());
  for (std::size_t i = 0; i < oracle.shard_traces.size(); ++i) {
    EXPECT_EQ(got.shard_traces[i], oracle.shard_traces[i])
        << "shard " << i << " trace diverged";
  }
  EXPECT_EQ(got.useful_events, oracle.useful_events);
  EXPECT_EQ(got.scheduled, oracle.scheduled);
  EXPECT_EQ(got.occ_conflicts, oracle.occ_conflicts);
  EXPECT_EQ(got.bind_rejects, oracle.bind_rejects);
  EXPECT_EQ(got.created, oracle.created);
  EXPECT_EQ(got.completed, oracle.completed);
  EXPECT_EQ(got.failed, oracle.failed);
  EXPECT_EQ(got.crash_kills, oracle.crash_kills);
  EXPECT_EQ(got.token_grants, oracle.token_grants);
  EXPECT_EQ(got.kernel_bursts, oracle.kernel_bursts);
  EXPECT_EQ(got.hostile_fenced, oracle.hostile_fenced);
  EXPECT_EQ(got.fenced_bursts, oracle.fenced_bursts);
  EXPECT_EQ(got.nvml_samples, oracle.nvml_samples);
  EXPECT_EQ(got.heartbeats, oracle.heartbeats);
  EXPECT_EQ(got.watch_events, oracle.watch_events);
  EXPECT_EQ(got.watch_deliveries, oracle.watch_deliveries);
  // Hard invariants regardless of engine.
  EXPECT_EQ(got.devmgr_mirror_divergence, 0u);
  EXPECT_EQ(got.watch_order_violations, 0u);
  EXPECT_EQ(got.lookahead_violations, 0u);
}

// >= 10 seeded full-cluster runs with chaos, per the acceptance bar.
class ShardedEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedEquivalence, AllEnginesMatchSingleOracle) {
  const ScaleConfig config = SmallCluster(GetParam());
  const ScaleResult oracle = RunScaleModel(config, EngineKind::kSingleBaseline);
  ASSERT_EQ(oracle.devmgr_mirror_divergence, 0u);
  ASSERT_EQ(oracle.watch_order_violations, 0u);
  // The run must exercise what it claims to: churn, chaos, recovery.
  ASSERT_GT(oracle.completed, 0u);
  ASSERT_GT(oracle.crash_kills, 0u);
  ASSERT_GT(oracle.devmgr_resyncs, 0u);
  ASSERT_GT(oracle.scheduled, 0u);

  ExpectEquivalent(oracle,
                   RunScaleModel(config, EngineKind::kSingleBatched));
  ExpectEquivalent(oracle,
                   RunScaleModel(config, EngineKind::kShardedSerial));
  ExpectEquivalent(oracle,
                   RunScaleModel(config, EngineKind::kShardedParallel));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));

std::string MergedTrace(const ScaleResult& result) {
  std::vector<std::string> lines;
  for (const std::string& shard_trace : result.shard_traces) {
    std::size_t start = 0;
    while (start < shard_trace.size()) {
      const std::size_t end = shard_trace.find('\n', start);
      lines.push_back(shard_trace.substr(start, end - start));
      if (end == std::string::npos) break;
      start = end + 1;
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string merged;
  for (const std::string& line : lines) {
    merged += line;
    merged += '\n';
  }
  return merged;
}

TEST(ShardedEquivalenceDetail, ShardLayoutFollowsSeedNotShardCount) {
  // Changing the shard count changes the partition but not the physics:
  // the single-engine oracle must still be matched with 1, 2 and 8 shards.
  // Per-shard dumps differ by layout, so compare the merged canonical
  // trace plus the (partition-independent) digests and counters.
  ScaleConfig config = SmallCluster(99);
  const ScaleResult oracle = RunScaleModel(config, EngineKind::kSingleBaseline);
  const std::string oracle_trace = MergedTrace(oracle);
  ASSERT_FALSE(oracle_trace.empty());
  for (int shards : {1, 2, 8}) {
    SCOPED_TRACE(shards);
    config.node_shards = shards;
    const ScaleResult got = RunScaleModel(config, EngineKind::kShardedSerial);
    EXPECT_EQ(got.trace_digest, oracle.trace_digest);
    EXPECT_EQ(got.state_digest, oracle.state_digest);
    EXPECT_EQ(MergedTrace(got), oracle_trace);
    EXPECT_EQ(got.useful_events, oracle.useful_events);
    EXPECT_EQ(got.scheduled, oracle.scheduled);
    EXPECT_EQ(got.lookahead_violations, 0u);
  }
}

TEST(ShardedEquivalenceDetail, EventEconomyIsReal) {
  // The batched/calendar path must do the same useful work with far fewer
  // engine events — that gap is the whole point of the scale path.
  const ScaleConfig config = SmallCluster(7);
  const ScaleResult baseline =
      RunScaleModel(config, EngineKind::kSingleBaseline);
  const ScaleResult batched =
      RunScaleModel(config, EngineKind::kSingleBatched);
  EXPECT_EQ(batched.useful_events, baseline.useful_events);
  EXPECT_LT(batched.engine_events, baseline.engine_events / 2);
  EXPECT_LT(batched.watch_fanout_events, batched.watch_fanout_unbatched);
}

// Adversarial tenants in the churn soak: every 7th pod overstays its token
// budget, gets its gate fenced, and floods rejected bursts until it exits.
// The hostile schedule must be byte-equal across every engine kind and
// across thread counts — an attacker must not be able to hide behind
// parallelism nondeterminism.
class AdversarialSharded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdversarialSharded, HostileScheduleIsEngineInvariant) {
  ScaleConfig config = SmallCluster(GetParam());
  config.hostile_every = 7;
  config.hostile_fence_after = 3;
  const ScaleResult oracle = RunScaleModel(config, EngineKind::kSingleBaseline);
  // The run must actually fence gates and reject floods.
  ASSERT_GT(oracle.hostile_fenced, 0u);
  ASSERT_GT(oracle.fenced_bursts, 0u);
  ASSERT_GT(oracle.kernel_bursts, 0u);

  ExpectEquivalent(oracle,
                   RunScaleModel(config, EngineKind::kSingleBatched));
  ExpectEquivalent(oracle,
                   RunScaleModel(config, EngineKind::kShardedSerial));
  ExpectEquivalent(oracle,
                   RunScaleModel(config, EngineKind::kShardedParallel));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversarialSharded,
                         ::testing::Values(21u, 22u, 23u));

TEST(ShardedEquivalenceDetail, AdversarialThreadCountIsInvisible) {
  // Same thread-invariance bar as the polite soak, with hostile tenants
  // flooding fenced bursts throughout.
  ScaleConfig config = SmallCluster(31);
  config.hostile_every = 5;
  config.hostile_fence_after = 2;
  config.threads = 1;
  const ScaleResult one = RunScaleModel(config, EngineKind::kShardedParallel);
  ASSERT_GT(one.fenced_bursts, 0u);
  config.threads = 4;
  const ScaleResult four = RunScaleModel(config, EngineKind::kShardedParallel);
  EXPECT_EQ(one.trace_digest, four.trace_digest);
  EXPECT_EQ(one.state_digest, four.state_digest);
  EXPECT_EQ(one.fenced_bursts, four.fenced_bursts);
  EXPECT_EQ(one.hostile_fenced, four.hostile_fenced);
  ASSERT_EQ(one.shard_traces.size(), four.shard_traces.size());
  for (std::size_t i = 0; i < one.shard_traces.size(); ++i) {
    EXPECT_EQ(one.shard_traces[i], four.shard_traces[i]);
  }
}

TEST(ShardedEquivalenceDetail, ParallelThreadCountIsInvisible) {
  // threads is a wall-clock knob, never a semantics knob.
  ScaleConfig config = SmallCluster(5);
  config.threads = 1;
  const ScaleResult one = RunScaleModel(config, EngineKind::kShardedParallel);
  config.threads = 4;
  const ScaleResult four = RunScaleModel(config, EngineKind::kShardedParallel);
  EXPECT_EQ(one.trace_digest, four.trace_digest);
  EXPECT_EQ(one.state_digest, four.state_digest);
  EXPECT_EQ(one.useful_events, four.useful_events);
  ASSERT_EQ(one.shard_traces.size(), four.shard_traces.size());
  for (std::size_t i = 0; i < one.shard_traces.size(); ++i) {
    EXPECT_EQ(one.shard_traces[i], four.shard_traces[i]);
  }
}

}  // namespace
}  // namespace ks::scale
