#include "common/sliding_window.hpp"

#include <gtest/gtest.h>

namespace ks {
namespace {

TEST(SlidingWindowUsage, StartsAtZero) {
  SlidingWindowUsage w(Seconds(10));
  EXPECT_DOUBLE_EQ(w.Usage(kTimeZero), 0.0);
  EXPECT_DOUBLE_EQ(w.Usage(Seconds(5)), 0.0);
  EXPECT_FALSE(w.active());
}

TEST(SlidingWindowUsage, FullyBusyReportsOne) {
  SlidingWindowUsage w(Seconds(10));
  w.Start(kTimeZero);
  EXPECT_TRUE(w.active());
  EXPECT_DOUBLE_EQ(w.Usage(Seconds(10)), 1.0);
  EXPECT_DOUBLE_EQ(w.Usage(Seconds(100)), 1.0);
}

TEST(SlidingWindowUsage, HalfBusyWithinWindow) {
  SlidingWindowUsage w(Seconds(10));
  w.Start(kTimeZero);
  w.Stop(Seconds(5));
  EXPECT_DOUBLE_EQ(w.Usage(Seconds(10)), 0.5);
}

TEST(SlidingWindowUsage, OldIntervalsSlideOut) {
  SlidingWindowUsage w(Seconds(10));
  w.Start(kTimeZero);
  w.Stop(Seconds(5));
  // At t=15 only [5,15] is in the window; the busy part [0,5] overlaps none
  // of [5,15].
  EXPECT_DOUBLE_EQ(w.Usage(Seconds(15)), 0.0);
  // At t=12 the window is [2,12]; busy overlap is [2,5] = 3s.
  EXPECT_NEAR(w.Usage(Seconds(12)), 0.3, 1e-9);
}

TEST(SlidingWindowUsage, EarlyRampUsesElapsedDenominator) {
  SlidingWindowUsage w(Seconds(10));
  w.Start(Seconds(1));
  // One second after first activity, the container has been busy the whole
  // observed time — the usage must read 1.0, not 0.1.
  EXPECT_DOUBLE_EQ(w.Usage(Seconds(2)), 1.0);
  w.Stop(Seconds(2));
  EXPECT_NEAR(w.Usage(Seconds(3)), 0.5, 1e-9);
}

TEST(SlidingWindowUsage, OpenIntervalCountsUpToNow) {
  SlidingWindowUsage w(Seconds(10));
  w.Start(kTimeZero);
  w.Stop(Seconds(2));
  w.Start(Seconds(4));
  EXPECT_NEAR(w.Usage(Seconds(8)), (2.0 + 4.0) / 8.0, 1e-9);
}

TEST(SlidingWindowUsage, StartStopIdempotent) {
  SlidingWindowUsage w(Seconds(10));
  w.Start(kTimeZero);
  w.Start(Seconds(1));  // no-op
  w.Stop(Seconds(2));
  w.Stop(Seconds(3));  // no-op
  EXPECT_NEAR(w.Usage(Seconds(10)), 0.2, 1e-9);
}

TEST(SlidingWindowUsage, BusyTimeMatchesUsage) {
  SlidingWindowUsage w(Seconds(5));
  w.Start(Seconds(1));
  w.Stop(Seconds(2));
  w.Start(Seconds(3));
  w.Stop(Seconds(4));
  EXPECT_EQ(w.BusyTime(Seconds(5)), Seconds(2));
}

TEST(SlidingWindowUsage, CompactDropsOldIntervalsOnly) {
  SlidingWindowUsage w(Seconds(2));
  for (int i = 0; i < 100; ++i) {
    w.Start(Seconds(i));
    w.Stop(Seconds(i) + Millis(500));
  }
  w.Compact(Seconds(100));
  // Window [98,100]: intervals [98,98.5] and [99,99.5] remain -> 1s busy.
  EXPECT_NEAR(w.Usage(Seconds(100)), 0.5, 1e-9);
}

TEST(SlidingWindowUsage, ZeroElapsedActive) {
  SlidingWindowUsage w(Seconds(10));
  w.Start(kTimeZero);
  EXPECT_DOUBLE_EQ(w.Usage(kTimeZero), 1.0);
}

}  // namespace
}  // namespace ks
