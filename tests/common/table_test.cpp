#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ks {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "2"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"x"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CsvQuotesSpecials) {
  Table t({"k", "v"});
  t.AddRow({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_NE(os.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(CellFn, FormatsNumbers) {
  EXPECT_EQ(Cell(1.23456, 2), "1.23");
  EXPECT_EQ(Cell(1.0, 0), "1");
  EXPECT_EQ(Cell(static_cast<std::int64_t>(42)), "42");
}

}  // namespace
}  // namespace ks
