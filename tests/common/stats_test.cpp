#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace ks {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.Add(4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Percentile, Empty) { EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0); }

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.5);
}

TEST(MeanFn, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
}

}  // namespace
}  // namespace ks
