#include "common/time.hpp"

#include <gtest/gtest.h>

namespace ks {
namespace {

TEST(TimeHelpers, Constructors) {
  EXPECT_EQ(Micros(5).count(), 5);
  EXPECT_EQ(Millis(3).count(), 3000);
  EXPECT_EQ(Seconds(2).count(), 2'000'000);
  EXPECT_EQ(Seconds(0.5).count(), 500'000);
  EXPECT_EQ(Minutes(1.5).count(), 90'000'000);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(7)), 7.0);
  EXPECT_DOUBLE_EQ(ToMillis(Micros(1500)), 1.5);
}

TEST(TimeHelpers, FormatTime) {
  EXPECT_EQ(FormatTime(kTimeZero), "0.000s");
  EXPECT_EQ(FormatTime(Seconds(12.3456)), "12.346s");
  EXPECT_EQ(FormatTime(Millis(1)), "0.001s");
}

TEST(TimeHelpers, ArithmeticIsTypeSafe) {
  const Time t = Seconds(10);
  const Duration d = Millis(500);
  EXPECT_EQ((t + d).count(), 10'500'000);
  EXPECT_EQ((t - d).count(), 9'500'000);
  EXPECT_EQ((d * 4).count(), 2'000'000);
}

}  // namespace
}  // namespace ks
