#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace ks {
namespace {

TEST(Json, ScalarDump) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(std::int64_t{-7}).Dump(), "-7");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
  EXPECT_EQ(JsonValue::Object().Dump(), "{}");
  EXPECT_EQ(JsonValue::Array().Dump(), "[]");
}

TEST(Json, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  // Non-ASCII bytes pass through untouched (UTF-8 stays UTF-8).
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
  EXPECT_EQ(JsonValue("a\"b\n").Dump(), "\"a\\\"b\\n\"");
}

TEST(Json, ObjectKeepsInsertionOrderAndOverwritesInPlace) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zeta", 1);
  obj.Set("alpha", 2);
  obj.Set("mid", 3);
  EXPECT_EQ(obj.Dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
  obj.Set("alpha", 9);  // overwrite keeps the original position
  EXPECT_EQ(obj.Dump(), "{\"zeta\":1,\"alpha\":9,\"mid\":3}");
  EXPECT_EQ(obj.size(), 3u);
}

TEST(Json, IntegralDoublesKeepADecimalPoint) {
  // A reader must be able to tell the column was a double; 4 and 4.0 are
  // different shapes to a schema checker.
  EXPECT_EQ(JsonValue(4.0).Dump(), "4.0");
  EXPECT_EQ(JsonValue(-2.0).Dump(), "-2.0");
  EXPECT_EQ(JsonValue(0.0).Dump(), "0.0");
}

TEST(Json, DoublesRoundTripExactly) {
  const double cases[] = {0.1,     1.0 / 3.0, 2.5,      1e-9,
                          1e300,   -123.456,  0.300001, 3.6 / 5.0};
  for (const double d : cases) {
    const std::string text = JsonValue(d).Dump();
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), d) << text;
  }
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(JsonValue(std::nan("")).Dump(), "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).Dump(),
            "null");
}

JsonValue SampleReport() {
  JsonValue report = JsonValue::Object();
  report.Set("schema", "ks-bench/1");
  report.Set("study", "sample");
  JsonValue rows = JsonValue::Array();
  JsonValue row = JsonValue::Object();
  row.Set("jobs_per_minute", 12.5);
  row.Set("completed", 150);
  rows.Push(std::move(row));
  report.Set("rows", std::move(rows));
  return report;
}

TEST(Json, SerializationIsDeterministic) {
  // Byte-identical output for identical trees is what lets CI diff a
  // parallel sweep's BENCH_*.json against a serial run's.
  EXPECT_EQ(SampleReport().Dump(), SampleReport().Dump());
  EXPECT_EQ(SampleReport().DumpPretty(), SampleReport().DumpPretty());
}

TEST(Json, PrettyFormatShape) {
  JsonValue obj = JsonValue::Object();
  obj.Set("a", 1);
  JsonValue arr = JsonValue::Array();
  arr.Push(2.5);
  obj.Set("b", std::move(arr));
  EXPECT_EQ(obj.DumpPretty(),
            "{\n"
            "  \"a\": 1,\n"
            "  \"b\": [\n"
            "    2.5\n"
            "  ]\n"
            "}\n");
}

TEST(Json, MutableFieldInsertsAndAliases) {
  JsonValue obj = JsonValue::Object();
  obj.MutableField("rows") = JsonValue::Array();
  obj.MutableField("rows").Push(1);
  obj.MutableField("rows").Push(2);
  EXPECT_EQ(obj.Dump(), "{\"rows\":[1,2]}");
  EXPECT_EQ(obj.MutableField("rows").size(), 2u);
}

TEST(Json, FieldAsString) {
  JsonValue obj = JsonValue::Object();
  obj.Set("study", "engine");
  obj.Set("count", 3);
  EXPECT_EQ(obj.FieldAsString("study"), "engine");
  EXPECT_EQ(obj.FieldAsString("count"), "");    // not a string
  EXPECT_EQ(obj.FieldAsString("missing"), "");  // absent
}

}  // namespace
}  // namespace ks
