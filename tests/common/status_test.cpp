#include "common/status.hpp"

#include <gtest/gtest.h>

namespace ks {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("gpu-1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "gpu-1");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: gpu-1");
}

TEST(Status, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(RejectedError("").code(), StatusCode::kRejected);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(Expected, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, 42);
  EXPECT_TRUE(e.status().ok());
}

TEST(Expected, HoldsError) {
  Expected<int> e(UnavailableError("no device"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(Expected, MoveOutValue) {
  Expected<std::string> e(std::string("hello"));
  std::string s = std::move(e).value();
  EXPECT_EQ(s, "hello");
}

TEST(ReturnIfError, PropagatesFailure) {
  auto fails = [] { return InternalError("boom"); };
  auto wrapper = [&]() -> Status {
    KS_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace ks
