#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace ks {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform(0, 1) == b.Uniform(0, 1)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.UniformInt(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 0);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Normal(0.3, 0.1));
  EXPECT_NEAR(stats.mean(), 0.3, 0.005);
  EXPECT_NEAR(stats.stddev(), 0.1, 0.005);
}

TEST(Rng, NormalZeroStddevIsDeterministic) {
  Rng rng(3);
  EXPECT_DOUBLE_EQ(rng.Normal(0.5, 0.0), 0.5);
}

TEST(Rng, TruncatedNormalStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.TruncatedNormal(0.3, 0.5, 0.05, 1.0);
    EXPECT_GE(x, 0.05);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Rng, TruncatedNormalPathologicalMeanClamps) {
  Rng rng(17);
  const double x = rng.TruncatedNormal(5.0, 1e-9, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(Rng, ExponentialInterarrivalMeanIsClose) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(ToSeconds(rng.ExponentialInterarrival(Seconds(10))));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.3);
}

TEST(Rng, ExponentialInterarrivalAlwaysPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.ExponentialInterarrival(Millis(1)).count(), 0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

}  // namespace
}  // namespace ks
