#include <gtest/gtest.h>

#include "baselines/extender.hpp"
#include "baselines/fractional_client.hpp"
#include "baselines/memory_hook.hpp"
#include "baselines/traits.hpp"
#include "cuda/context.hpp"
#include "workload/host.hpp"
#include "workload/job.hpp"

namespace ks::baselines {
namespace {

TEST(Traits, MatchTable1) {
  // The comparison matrix of the paper's Table 1.
  const BaselineTraits deep = DeepomaticTraits();
  EXPECT_FALSE(deep.multi_gpu_per_node);
  EXPECT_FALSE(deep.memory_isolation);
  EXPECT_FALSE(deep.compute_isolation);

  const BaselineTraits aliyun = AliyunTraits();
  EXPECT_TRUE(aliyun.multi_gpu_per_node);
  EXPECT_TRUE(aliyun.memory_isolation);
  EXPECT_FALSE(aliyun.compute_isolation);

  const BaselineTraits gaia = GaiaGpuTraits();
  EXPECT_TRUE(gaia.compute_isolation);
  EXPECT_FALSE(gaia.first_class_identity);
  EXPECT_FALSE(gaia.locality_constraints);

  const BaselineTraits kubeshare = KubeShareTraits();
  EXPECT_TRUE(kubeshare.first_class_identity);
  EXPECT_TRUE(kubeshare.locality_constraints);
  EXPECT_TRUE(kubeshare.coexists_with_kube_scheduler);
  EXPECT_TRUE(kubeshare.arbitrary_fractions);
}

class MemoryHookTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  gpu::GpuDevice dev_{&sim_, GpuUuid("GPU-0")};
  cuda::CudaContext ctx_{&dev_, ContainerId("c")};
};

TEST_F(MemoryHookTest, EnforcesQuota) {
  MemoryOnlyHook hook(&ctx_, 1000);
  gpu::DevicePtr p = 0;
  EXPECT_EQ(hook.MemAlloc(&p, 600), cuda::CudaResult::kSuccess);
  EXPECT_EQ(hook.MemAlloc(&p, 600), cuda::CudaResult::kErrorOutOfMemory);
  EXPECT_EQ(hook.AllocatedBytes(), 600u);
}

TEST_F(MemoryHookTest, FreeRestoresQuota) {
  MemoryOnlyHook hook(&ctx_, 1000);
  gpu::DevicePtr p = 0;
  ASSERT_EQ(hook.MemAlloc(&p, 1000), cuda::CudaResult::kSuccess);
  ASSERT_EQ(hook.MemFree(p), cuda::CudaResult::kSuccess);
  EXPECT_EQ(hook.MemAlloc(&p, 1000), cuda::CudaResult::kSuccess);
}

TEST_F(MemoryHookTest, ArrayCreateCountsAgainstQuota) {
  MemoryOnlyHook hook(&ctx_, 1000);
  gpu::DevicePtr p = 0;
  EXPECT_EQ(hook.ArrayCreate(&p, 100, 100, 1),
            cuda::CudaResult::kErrorOutOfMemory);
  EXPECT_EQ(hook.ArrayCreate(&p, 10, 10, 1), cuda::CudaResult::kSuccess);
}

TEST_F(MemoryHookTest, KernelsPassThroughUnthrottled) {
  MemoryOnlyHook hook(&ctx_, 1000);
  bool done = false;
  EXPECT_EQ(hook.LaunchKernel({Millis(5), 0.0, "k"}, cuda::kDefaultStream,
                              [&] { done = true; }),
            cuda::CudaResult::kSuccess);
  sim_.Run();
  EXPECT_TRUE(done);  // no token protocol in the way
}

class FractionalClientTest : public ::testing::Test {
 protected:
  static k8s::ClusterConfig ScaledCluster() {
    k8s::ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.gpus_per_node = 2;
    cfg.scaled_plugin = true;
    cfg.plugin_scale = 100;
    return cfg;
  }

  FractionalClientTest() : cluster_(ScaledCluster()), host_(&cluster_) {
    EXPECT_TRUE(cluster_.Start().ok());
  }

  k8s::Cluster cluster_;
  workload::WorkloadHost host_;
};

TEST_F(FractionalClientTest, AliyunJobRunsWithMemoryIsolationOnly) {
  FractionalClient client(&cluster_, &host_, AliyunTraits());
  workload::TrainingSpec big;
  big.model_bytes = 12ull << 30;  // 12 GB > 50% of 16 GB
  ASSERT_TRUE(client
                  .Submit("oom-job", 0.5, 0.5,
                          [big] { return std::make_unique<workload::TrainingJob>(big); })
                  .ok());
  cluster_.sim().RunUntil(Seconds(30));
  // Memory isolation rejected the over-quota model -> job failed cleanly.
  EXPECT_EQ(host_.failed(), 1u);
}

TEST_F(FractionalClientTest, AliyunCannotThrottleCompute) {
  FractionalClient client(&cluster_, &host_, AliyunTraits());
  workload::TrainingSpec spec;
  spec.steps = 100;
  spec.step_kernel = Millis(10);
  spec.model_bytes = 1ull << 30;
  // The job claims only 20% of a GPU but runs unthrottled: 1s of kernels
  // completes in ~1s, not ~5s.
  ASSERT_TRUE(client
                  .Submit("greedy", 0.2, 0.5,
                          [spec] { return std::make_unique<workload::TrainingJob>(spec); })
                  .ok());
  cluster_.sim().RunUntil(Seconds(30));
  ASSERT_EQ(host_.completed(), 1u);
  const auto* rec = host_.RecordOf("greedy");
  EXPECT_LT(rec->finished - rec->started, Millis(1500));
}

TEST_F(FractionalClientTest, GaiaGpuThrottlesCompute) {
  FractionalClient client(&cluster_, &host_, GaiaGpuTraits());
  workload::TrainingSpec spec;
  spec.steps = 100;
  spec.step_kernel = Millis(10);
  spec.model_bytes = 1ull << 30;
  ASSERT_TRUE(client
                  .Submit("throttled", 0.2, 0.5,
                          [spec] { return std::make_unique<workload::TrainingJob>(spec); })
                  .ok());
  cluster_.sim().RunUntil(Seconds(60));
  ASSERT_EQ(host_.completed(), 1u);
  const auto* rec = host_.RecordOf("throttled");
  // 1s of kernels hard-capped at 20% usage -> ~5s wall time.
  EXPECT_GE(rec->finished - rec->started, Seconds(4));
}

TEST_F(FractionalClientTest, DeepomaticRejectsMultiGpuNodes) {
  FractionalClient client(&cluster_, &host_, DeepomaticTraits());
  const Status s = client.Submit("x", 0.5, 0.5, [] {
    return std::make_unique<workload::TrainingJob>(workload::TrainingSpec{});
  });
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(FractionalClientTest, InvalidDemandRejected) {
  FractionalClient client(&cluster_, &host_, AliyunTraits());
  EXPECT_FALSE(client.Submit("x", 0.0, 0.5, nullptr).ok());
  EXPECT_FALSE(client.Submit("x", 1.5, 0.5, nullptr).ok());
}

class ExtenderTest : public ::testing::Test {
 protected:
  static k8s::ClusterConfig Config() {
    k8s::ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.gpus_per_node = 2;
    return cfg;
  }

  ExtenderTest() : cluster_(Config()) {
    EXPECT_TRUE(cluster_.Start().ok());
    extender_ = std::make_unique<ShareExtenderScheduler>(&cluster_);
  }

  k8s::Cluster cluster_;
  std::unique_ptr<ShareExtenderScheduler> extender_;
};

TEST_F(ExtenderTest, TracksPerGpuCommitmentsFirstFit) {
  ASSERT_TRUE(extender_->Submit("a", 0.6, 0.2).ok());
  ASSERT_TRUE(extender_->Submit("b", 0.6, 0.2).ok());  // spills to GPU 2
  ASSERT_TRUE(extender_->Submit("c", 0.4, 0.2).ok());  // back-fills GPU 1
  EXPECT_NEAR(extender_->CommittedOn(GpuUuid("GPU-0-0")), 1.0, 1e-9);
  EXPECT_NEAR(extender_->CommittedOn(GpuUuid("GPU-0-1")), 0.6, 1e-9);
  // No per-GPU capacity left for another 0.6.
  EXPECT_EQ(extender_->Submit("d", 0.6, 0.2).code(),
            StatusCode::kUnavailable);
  cluster_.sim().RunUntil(Seconds(10));
  // Pods run on the exact GPUs the extender chose.
  EXPECT_EQ(cluster_.api().pods().Get("a")->status.effective_env.at(
                k8s::kNvidiaVisibleDevices),
            "GPU-0-0");
  EXPECT_EQ(cluster_.api().pods().Get("b")->status.effective_env.at(
                k8s::kNvidiaVisibleDevices),
            "GPU-0-1");
}

TEST_F(ExtenderTest, TerminalPodsFreeTheLedger) {
  ASSERT_TRUE(extender_->Submit("a", 0.9, 0.2).ok());
  cluster_.sim().RunUntil(Seconds(10));
  ASSERT_TRUE(cluster_.api().pods().Delete("a").ok());
  cluster_.sim().RunUntil(Seconds(15));
  EXPECT_NEAR(extender_->CommittedOn(GpuUuid("GPU-0-0")), 0.0, 1e-9);
  EXPECT_TRUE(extender_->Submit("b", 0.9, 0.2).ok());
}

TEST_F(ExtenderTest, DoesNotCoexistWithKubeScheduler) {
  // Table 1's co-existence row, demonstrated: a native pod takes a whole
  // GPU through kube-scheduler, but the extender's private ledger never
  // learns of it and happily commits fractions of the SAME device.
  k8s::Pod native;
  native.meta.name = "native";
  native.spec.requests.Set(k8s::kResourceNvidiaGpu, 1);
  ASSERT_TRUE(cluster_.api().pods().Create(native).ok());
  cluster_.sim().RunUntil(Seconds(10));
  const std::string taken = cluster_.api()
                                .pods()
                                .Get("native")
                                ->status.effective_env.at(
                                    k8s::kNvidiaVisibleDevices);
  // Fill the extender's view of that very GPU.
  int placed_on_taken = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        extender_->Submit("frac-" + std::to_string(i), 0.5, 0.1).ok());
  }
  cluster_.sim().RunUntil(Seconds(20));
  for (int i = 0; i < 4; ++i) {
    const auto pod = cluster_.api().pods().Get("frac-" + std::to_string(i));
    ASSERT_TRUE(pod.ok());
    auto it = pod->status.effective_env.find(k8s::kNvidiaVisibleDevices);
    ASSERT_NE(it, pod->status.effective_env.end());
    if (it->second == taken) ++placed_on_taken;
  }
  // The extender over-committed the native pod's device: silent conflict.
  EXPECT_GE(placed_on_taken, 1);
}

TEST_F(ExtenderTest, InvalidDemandRejected) {
  EXPECT_FALSE(extender_->Submit("x", 0.0, 0.1).ok());
  EXPECT_FALSE(extender_->Submit("x", 1.5, 0.1).ok());
}

TEST_F(FractionalClientTest, FragmentationOvercommitsOneGpu) {
  // Two 60%-jobs fit the node's 200 aggregate units, but the kubelet's
  // first-fit unit pick plus first-unit GPU binding puts BOTH on GPU-0-0:
  // 120% on one device, 0% on the other — Fig 3a.
  FractionalClient client(&cluster_, &host_, AliyunTraits());
  workload::TrainingSpec spec;
  spec.steps = 200;
  spec.step_kernel = Millis(10);
  spec.model_bytes = 1ull << 30;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client
                    .Submit("frag-" + std::to_string(i), 0.6, 0.4,
                            [spec] {
                              return std::make_unique<workload::TrainingJob>(spec);
                            })
                    .ok());
  }
  cluster_.sim().RunUntil(Seconds(60));
  EXPECT_EQ(host_.completed(), 2u);
  gpu::GpuDevice* gpu0 = cluster_.FindGpu(GpuUuid("GPU-0-0"));
  gpu::GpuDevice* gpu1 = cluster_.FindGpu(GpuUuid("GPU-0-1"));
  gpu0->utilization().Flush(cluster_.sim().Now());
  gpu1->utilization().Flush(cluster_.sim().Now());
  EXPECT_GT(ToSeconds(gpu0->utilization().TotalBusy()), 1.0);
  EXPECT_DOUBLE_EQ(ToSeconds(gpu1->utilization().TotalBusy()), 0.0);
}

}  // namespace
}  // namespace ks::baselines
