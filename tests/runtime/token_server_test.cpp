#include "runtime/token_server.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "runtime/worker.hpp"

namespace ks::runtime {
namespace {

// Real-thread tests use short quotas and generous tolerances: they verify
// protocol behaviour, not precise timing (the deterministic policy tests
// live in the simulated vgpu::TokenBackend suite).

TokenServerConfig FastConfig() {
  TokenServerConfig cfg;
  cfg.quota = std::chrono::milliseconds(10);
  cfg.usage_window = std::chrono::milliseconds(200);
  return cfg;
}

TEST(TokenServer, SingleClientAcquiresImmediately) {
  TokenServer server(FastConfig());
  server.RegisterClient("a", 0.5, 1.0);
  EXPECT_TRUE(server.Acquire("a"));
  EXPECT_TRUE(server.Valid("a"));
  server.Release("a");
  EXPECT_FALSE(server.Valid("a"));
}

TEST(TokenServer, UnknownClientFails) {
  TokenServer server(FastConfig());
  EXPECT_FALSE(server.Acquire("ghost"));
  EXPECT_FALSE(server.Valid("ghost"));
  EXPECT_DOUBLE_EQ(server.UsageOf("ghost"), 0.0);
}

TEST(TokenServer, ReentrantAcquireByHolder) {
  TokenServer server(FastConfig());
  server.RegisterClient("a", 0.5, 1.0);
  ASSERT_TRUE(server.Acquire("a"));
  EXPECT_TRUE(server.Acquire("a"));  // still the holder
  server.Release("a");
}

TEST(TokenServer, QuotaExpires) {
  TokenServer server(FastConfig());
  server.RegisterClient("a", 0.5, 1.0);
  ASSERT_TRUE(server.Acquire("a"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(server.Valid("a"));
  server.Release("a");
}

TEST(TokenServer, ShutdownUnblocksWaiters) {
  TokenServer server(FastConfig());
  server.RegisterClient("a", 0.5, 1.0);
  server.RegisterClient("b", 0.5, 1.0);
  ASSERT_TRUE(server.Acquire("a"));
  std::thread waiter([&] { EXPECT_FALSE(server.Acquire("b")); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.Shutdown();
  waiter.join();
}

TEST(TokenServer, ShutdownRevokesHolderAndFailsFast) {
  TokenServer server(FastConfig());
  server.RegisterClient("a", 0.5, 1.0);
  ASSERT_TRUE(server.Acquire("a"));
  server.Shutdown();
  EXPECT_TRUE(server.is_shutdown());
  // The outstanding token is revoked and later Acquires fail immediately
  // instead of parking forever on a dead daemon.
  EXPECT_FALSE(server.Valid("a"));
  EXPECT_FALSE(server.Acquire("a"));
  server.Release("a");      // must be a harmless no-op
  server.Shutdown();        // idempotent
  EXPECT_TRUE(server.is_shutdown());
}

TEST(TokenServer, ShutdownUnblocksEveryWaiter) {
  TokenServer server(FastConfig());
  server.RegisterClient("a", 0.5, 1.0);
  server.RegisterClient("b", 0.5, 1.0);
  server.RegisterClient("c", 0.5, 1.0);
  ASSERT_TRUE(server.Acquire("a"));
  std::vector<std::thread> waiters;
  for (const char* id : {"b", "c"}) {
    waiters.emplace_back([&server, id] { EXPECT_FALSE(server.Acquire(id)); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.Shutdown();
  for (auto& w : waiters) w.join();  // would hang before the shutdown fix
}

TEST(TokenServer, SecondClientWaitsForRelease) {
  TokenServer server(FastConfig());
  server.RegisterClient("a", 0.5, 1.0);
  server.RegisterClient("b", 0.5, 1.0);
  ASSERT_TRUE(server.Acquire("a"));
  std::atomic<bool> b_granted{false};
  std::thread waiter([&] {
    if (server.Acquire("b")) b_granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(b_granted.load());
  server.Release("a");
  waiter.join();
  EXPECT_TRUE(b_granted.load());
  server.Release("b");
}

TEST(TokenServer, TwoGreedyWorkersShareFairly) {
  TokenServer server(FastConfig());
  GreedyWorker a(&server, "a", 0.3, 1.0);
  GreedyWorker b(&server, "b", 0.3, 1.0);
  a.Start();
  b.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const double usage_a = server.UsageOf("a");
  const double usage_b = server.UsageOf("b");
  a.Stop();
  b.Stop();
  // Both above their guaranteed 0.3 and roughly even.
  EXPECT_GT(usage_a, 0.25);
  EXPECT_GT(usage_b, 0.25);
  EXPECT_NEAR(usage_a, usage_b, 0.3);
}

TEST(TokenServer, LimitThrottlesWorker) {
  TokenServer server(FastConfig());
  GreedyWorker a(&server, "a", 0.1, 0.4);
  a.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const double usage = server.UsageOf("a");
  a.Stop();
  // Hard limit 0.4 (+ quota-granularity slack on a loaded CI machine).
  EXPECT_LE(usage, 0.6);
  EXPECT_GT(usage, 0.1);
}

TEST(TokenServer, GrantsAccumulate) {
  TokenServer server(FastConfig());
  GreedyWorker a(&server, "a", 0.5, 1.0);
  a.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  a.Stop();
  EXPECT_GE(server.grants(), 2u);  // several 10ms quota cycles elapsed
  EXPECT_GT(a.work_done_us(), 0);
}

TEST(TokenServer, SnapshotIsConsistent) {
  TokenServer server(FastConfig());
  server.RegisterClient("a", 0.3, 0.8);
  server.RegisterClient("b", 0.2, 1.0);
  ASSERT_TRUE(server.Acquire("a"));
  const auto view = server.Snapshot();
  ASSERT_EQ(view.size(), 2u);
  int holders = 0;
  for (const auto& c : view) {
    if (c.holding) {
      ++holders;
      EXPECT_EQ(c.id, "a");
      EXPECT_DOUBLE_EQ(c.request, 0.3);
      EXPECT_DOUBLE_EQ(c.limit, 0.8);
    }
  }
  EXPECT_EQ(holders, 1);
  server.Release("a");
}

TEST(TokenServer, BurstyWorkerMakesProgressAndIdles) {
  TokenServer server(FastConfig());
  BurstyWorker worker(&server, "bursty", 0.2, 1.0,
                      std::chrono::milliseconds(1), 3,
                      std::chrono::milliseconds(8), 42);
  worker.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const double usage = server.UsageOf("bursty");
  worker.Stop();
  EXPECT_GT(worker.bursts_completed(), 5u);
  EXPECT_GT(worker.work_done_us(), 0);
  // ~3ms busy per ~11ms cycle: well below saturation.
  EXPECT_LT(usage, 0.8);
}

TEST(TokenServer, MixedWorkersStressInvariants) {
  // 6 real threads (2 greedy, 4 bursty) against one server; a monitor
  // thread snapshots continuously and checks the single-holder invariant.
  TokenServer server(FastConfig());
  GreedyWorker g1(&server, "g1", 0.2, 0.6);
  GreedyWorker g2(&server, "g2", 0.2, 0.6);
  std::vector<std::unique_ptr<BurstyWorker>> bursty;
  for (int i = 0; i < 4; ++i) {
    bursty.push_back(std::make_unique<BurstyWorker>(
        &server, "b" + std::to_string(i), 0.05, 0.5,
        std::chrono::milliseconds(1), 2, std::chrono::milliseconds(10),
        100 + static_cast<std::uint64_t>(i)));
  }
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread monitor([&] {
    while (!stop.load()) {
      const auto view = server.Snapshot();
      int holders = 0;
      for (const auto& c : view) {
        if (c.holding) ++holders;
        if (c.usage < -1e-9 || c.usage > 1.0 + 1e-9) violations.fetch_add(1);
      }
      if (holders > 1) violations.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  g1.Start();
  g2.Start();
  for (auto& w : bursty) w->Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true);
  monitor.join();
  g1.Stop();
  g2.Stop();
  std::int64_t bursty_work = 0;
  for (auto& w : bursty) {
    bursty_work += w->work_done_us();
    w->Stop();
  }
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(g1.work_done_us(), 0);
  EXPECT_GT(g2.work_done_us(), 0);
  EXPECT_GT(bursty_work, 0);
}

TEST(TokenServer, UnregisterWhileWaitingUnblocks) {
  TokenServer server(FastConfig());
  server.RegisterClient("a", 0.5, 1.0);
  server.RegisterClient("b", 0.5, 1.0);
  ASSERT_TRUE(server.Acquire("a"));
  std::thread waiter([&] { EXPECT_FALSE(server.Acquire("b")); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.UnregisterClient("b");
  waiter.join();
  server.Release("a");
}

}  // namespace
}  // namespace ks::runtime
