#include "runtime/vgpu_client.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace ks::runtime {
namespace {

TokenServerConfig FastConfig() {
  TokenServerConfig cfg;
  cfg.quota = std::chrono::milliseconds(10);
  cfg.usage_window = std::chrono::milliseconds(200);
  return cfg;
}

VgpuClientConfig FastClient() {
  VgpuClientConfig cfg;
  cfg.backoff_initial = std::chrono::microseconds(200);
  cfg.backoff_max = std::chrono::microseconds(2'000);
  return cfg;
}

TEST(VgpuClient, AcquiresFromLiveServer) {
  TokenServer server(FastConfig());
  VgpuClient client([&] { return &server; }, "c1", FastClient());
  EXPECT_TRUE(client.Acquire());
  EXPECT_TRUE(client.Valid());
  EXPECT_EQ(client.acquisitions(), 1u);
  EXPECT_EQ(client.reconnects(), 0u);
  client.Release();
}

TEST(VgpuClient, RetriesAcrossServerDeath) {
  // The client blocks on s1 (another holder has the token), s1 dies, the
  // replacement daemon comes up: Acquire must re-resolve, re-register and
  // succeed on s2 instead of failing or hanging.
  TokenServer s1(FastConfig());
  TokenServer s2(FastConfig());
  std::atomic<TokenServer*> current{&s1};

  s1.RegisterClient("hog", 0.5, 1.0);
  ASSERT_TRUE(s1.Acquire("hog"));

  VgpuClient client([&] { return current.load(); }, "c1", FastClient());
  std::atomic<bool> acquired{false};
  std::thread t([&] { acquired.store(client.Acquire()); });

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(acquired.load());  // still parked behind the hog on s1
  current.store(&s2);
  s1.Shutdown();

  t.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_TRUE(client.Valid());
  EXPECT_GE(client.reconnects(), 1u);
  client.Release();
}

TEST(VgpuClient, StopUnblocksBlockedAcquire) {
  TokenServer server(FastConfig());
  server.RegisterClient("hog", 0.5, 1.0);
  ASSERT_TRUE(server.Acquire("hog"));

  VgpuClient client([&] { return &server; }, "c1", FastClient());
  std::atomic<bool> result{true};
  std::thread t([&] { result.store(client.Acquire()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  client.Stop();
  t.join();
  EXPECT_FALSE(result.load());
  EXPECT_TRUE(client.stopped());
  server.Release("hog");
  server.Shutdown();
}

TEST(VgpuClient, GivesUpAfterMaxAttemptsWhenDaemonNeverComes) {
  VgpuClientConfig cfg = FastClient();
  cfg.max_attempts = 3;
  VgpuClient client([] { return static_cast<TokenServer*>(nullptr); }, "c1",
                    cfg);
  EXPECT_FALSE(client.Acquire());
  EXPECT_FALSE(client.Valid());
}

TEST(VgpuClient, ReleaseAfterServerDeathIsSafe) {
  TokenServer s1(FastConfig());
  std::atomic<TokenServer*> current{&s1};
  VgpuClient client([&] { return current.load(); }, "c1", FastClient());
  ASSERT_TRUE(client.Acquire());
  s1.Shutdown();
  current.store(nullptr);
  EXPECT_FALSE(client.Valid());  // the dead daemon's token is worthless
  client.Release();              // must not crash or hang
}

}  // namespace
}  // namespace ks::runtime
