// Figure 9: "The average GPU utilization and the number of active GPUs
// over time" (workload: mean demand 30%, Poisson arrivals).
//
// One run per system. For KubeShare the held-GPU count is the vGPU pool
// size; for native Kubernetes every job pins a whole GPU (the paper notes
// "the number of active GPUs from Kubernetes is always 32" while the
// workload is in flight).

#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"
#include "k8s/resources.hpp"
#include "metrics/sampler.hpp"

namespace {

struct TimelineResult {
  ks::Table table{{"time (s)", "avg util (active GPUs)", "GPUs held"}};
  double makespan_s = 0.0;
  std::size_t completed = 0;
};

TimelineResult RunTimeline(bool use_kubeshare) {
  using namespace ks;
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 8;
  ccfg.gpus_per_node = 4;
  k8s::Cluster cluster(ccfg);
  std::unique_ptr<kubeshare::KubeShare> kubeshare;
  if (use_kubeshare) {
    kubeshare = std::make_unique<kubeshare::KubeShare>(&cluster);
  }
  workload::WorkloadHost host(&cluster);
  workload::WorkloadConfig wcfg;
  wcfg.total_jobs = 300;
  wcfg.mean_interarrival = Seconds(0.6);
  wcfg.demand_mean = 0.3;
  wcfg.demand_stddev = 0.14;  // the paper's "variance 2" demand spread
  wcfg.gpu_mem = 0.2;
  wcfg.seed = 77;
  workload::WorkloadDriver driver(
      &cluster, &host,
      use_kubeshare ? workload::WorkloadDriver::Mode::kKubeShare
                    : workload::WorkloadDriver::Mode::kNative,
      kubeshare.get(), wcfg);

  (void)cluster.Start();
  if (kubeshare != nullptr) (void)kubeshare->Start();
  cluster.nvml().Start();
  driver.Start();

  TimelineResult out;
  // Track "ever active" incrementally for the active-GPU utilization
  // average, sampling every 30 s of simulated time.
  std::vector<bool> ever_active(32, false);
  std::vector<const gpu::GpuDevice*> devices;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    for (const auto& dev : cluster.node(n).gpus) devices.push_back(dev.get());
  }
  std::vector<Duration> last_busy(devices.size(), Duration{0});
  Time last_t = kTimeZero;

  for (int t = 30; t <= 1800; t += 30) {
    cluster.sim().RunUntil(Seconds(t));
    double util_total = 0.0;
    int active = 0;
    for (std::size_t d = 0; d < devices.size(); ++d) {
      auto* dev = const_cast<gpu::GpuDevice*>(devices[d]);
      dev->utilization().Flush(cluster.sim().Now());
      const Duration busy = dev->utilization().TotalBusy();
      const Duration delta = busy - last_busy[d];
      last_busy[d] = busy;
      if (delta.count() > 0) ever_active[d] = true;
      if (ever_active[d]) {
        util_total += ToSeconds(delta) / ToSeconds(cluster.sim().Now() - last_t);
        ++active;
      }
    }
    last_t = cluster.sim().Now();
    double held = 0;
    if (kubeshare != nullptr) {
      held = static_cast<double>(kubeshare->pool().size());
    } else {
      for (const k8s::Pod& p : cluster.api().pods().List()) {
        if (p.terminal() || !p.scheduled()) continue;
        held += static_cast<double>(
            p.spec.requests.Get(k8s::kResourceNvidiaGpu));
      }
    }
    out.table.AddRow({Cell(static_cast<std::int64_t>(t)),
                      Cell(active > 0 ? util_total / active : 0.0, 3),
                      Cell(held, 0)});
    if (driver.AllDone()) break;
  }
  out.makespan_s = ToSeconds(driver.Makespan());
  out.completed = host.completed();
  return out;
}

}  // namespace

int main() {
  using namespace ks;
  bench::Banner("bench_fig9: GPU utilization and active GPUs over time",
                "Figure 9");

  std::cout << "\n--- native Kubernetes ---\n\n";
  TimelineResult k8s = RunTimeline(false);
  k8s.table.Print(std::cout);
  std::cout << "completed " << k8s.completed << " jobs, makespan "
            << Cell(k8s.makespan_s, 1) << " s\n";

  std::cout << "\n--- KubeShare ---\n\n";
  TimelineResult kshare = RunTimeline(true);
  kshare.table.Print(std::cout);
  std::cout << "completed " << kshare.completed << " jobs, makespan "
            << Cell(kshare.makespan_s, 1) << " s\n";

  std::cout << "\nExpected shape (paper): KubeShare drives active GPUs to "
               "much higher\nutilization, holds fewer than 32 GPUs for most "
               "of the run, and finishes\nthe same workload sooner; native "
               "Kubernetes holds all 32 GPUs at low\nutilization for "
               "longer.\n";
  return 0;
}
