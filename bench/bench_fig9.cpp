// Figure 9: "The average GPU utilization and the number of active GPUs
// over time" (workload: mean demand 30%, Poisson arrivals).
//
// One run per system. For KubeShare the held-GPU count is the vGPU pool
// size; for native Kubernetes every job pins a whole GPU (the paper notes
// "the number of active GPUs from Kubernetes is always 32" while the
// workload is in flight).

#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"
#include "json_report.hpp"
#include "k8s/resources.hpp"
#include "metrics/sampler.hpp"

namespace {

struct TimelineResult {
  ks::Table table{{"time (s)", "avg util (active GPUs)", "GPUs held"}};
  double makespan_s = 0.0;
  std::size_t completed = 0;
  std::uint64_t total_events = 0;
};

TimelineResult RunTimeline(bool use_kubeshare,
                           ks::vgpu::TokenTimerMode timers =
                               ks::vgpu::TokenTimerMode::kWheel,
                           ks::Duration coalesce_window = ks::Micros(500),
                           ks::gpu::GpuExecMode exec =
                               ks::gpu::GpuExecMode::kFused,
                           ks::workload::WorkloadConfig::JobKind kind =
                               ks::workload::WorkloadConfig::JobKind::
                                   kInference) {
  using namespace ks;
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 8;
  ccfg.gpus_per_node = 4;
  ccfg.token_timers = timers;
  ccfg.backend.coalesce_window = coalesce_window;
  ccfg.exec = exec;
  k8s::Cluster cluster(ccfg);
  std::unique_ptr<kubeshare::KubeShare> kubeshare;
  if (use_kubeshare) {
    kubeshare = std::make_unique<kubeshare::KubeShare>(&cluster);
  }
  workload::WorkloadHost host(&cluster);
  workload::WorkloadConfig wcfg;
  wcfg.total_jobs = 300;
  wcfg.mean_interarrival = Seconds(0.6);
  wcfg.demand_mean = 0.3;
  wcfg.demand_stddev = 0.14;  // the paper's "variance 2" demand spread
  wcfg.gpu_mem = 0.2;
  wcfg.seed = 77;
  wcfg.job_kind = kind;
  workload::WorkloadDriver driver(
      &cluster, &host,
      use_kubeshare ? workload::WorkloadDriver::Mode::kKubeShare
                    : workload::WorkloadDriver::Mode::kNative,
      kubeshare.get(), wcfg);

  (void)cluster.Start();
  if (kubeshare != nullptr) (void)kubeshare->Start();
  cluster.nvml().Start();
  driver.Start();

  TimelineResult out;
  // Track "ever active" incrementally for the active-GPU utilization
  // average, sampling every 30 s of simulated time.
  std::vector<bool> ever_active(32, false);
  std::vector<const gpu::GpuDevice*> devices;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    for (const auto& dev : cluster.node(n).gpus) devices.push_back(dev.get());
  }
  std::vector<Duration> last_busy(devices.size(), Duration{0});
  Time last_t = kTimeZero;

  for (int t = 30; t <= 1800; t += 30) {
    cluster.sim().RunUntil(Seconds(t));
    double util_total = 0.0;
    int active = 0;
    for (std::size_t d = 0; d < devices.size(); ++d) {
      auto* dev = const_cast<gpu::GpuDevice*>(devices[d]);
      dev->utilization().Flush(cluster.sim().Now());
      const Duration busy = dev->utilization().TotalBusy();
      const Duration delta = busy - last_busy[d];
      last_busy[d] = busy;
      if (delta.count() > 0) ever_active[d] = true;
      if (ever_active[d]) {
        util_total += ToSeconds(delta) / ToSeconds(cluster.sim().Now() - last_t);
        ++active;
      }
    }
    last_t = cluster.sim().Now();
    double held = 0;
    if (kubeshare != nullptr) {
      held = static_cast<double>(kubeshare->pool().size());
    } else {
      for (const k8s::Pod& p : cluster.api().pods().List()) {
        if (p.terminal() || !p.scheduled()) continue;
        held += static_cast<double>(
            p.spec.requests.Get(k8s::kResourceNvidiaGpu));
      }
    }
    out.table.AddRow({Cell(static_cast<std::int64_t>(t)),
                      Cell(active > 0 ? util_total / active : 0.0, 3),
                      Cell(held, 0)});
    if (driver.AllDone()) break;
  }
  out.makespan_s = ToSeconds(driver.Makespan());
  out.completed = host.completed();
  out.total_events = cluster.sim().lifetime_events();
  return out;
}

}  // namespace

int main() {
  using namespace ks;
  bench::Banner("bench_fig9: GPU utilization and active GPUs over time",
                "Figure 9");

  std::cout << "\n--- native Kubernetes ---\n\n";
  TimelineResult k8s = RunTimeline(false);
  k8s.table.Print(std::cout);
  std::cout << "completed " << k8s.completed << " jobs, makespan "
            << Cell(k8s.makespan_s, 1) << " s\n";

  std::cout << "\n--- KubeShare ---\n\n";
  TimelineResult kshare = RunTimeline(true);
  kshare.table.Print(std::cout);
  std::cout << "completed " << kshare.completed << " jobs, makespan "
            << Cell(kshare.makespan_s, 1) << " s\n";

  std::cout << "\nExpected shape (paper): KubeShare drives active GPUs to "
               "much higher\nutilization, holds fewer than 32 GPUs for most "
               "of the run, and finishes\nthe same workload sooner; native "
               "Kubernetes holds all 32 GPUs at low\nutilization for "
               "longer.\n";

  // Same KubeShare timeline under the per-renewal reference backend and
  // under a coarse 5 ms coalescing window, to record the timer wheel's
  // event saving on a full workload. The default 500 us window keeps every
  // deadline exact (it divides each daemon duration) and so schedules about
  // as many events as the reference; the coarse window batches renewals.
  TimelineResult kshare_ref =
      RunTimeline(true, vgpu::TokenTimerMode::kReference);
  TimelineResult kshare_coarse =
      RunTimeline(true, vgpu::TokenTimerMode::kWheel, Millis(5));
  std::cout << "\nKubeShare engine events: " << kshare_ref.total_events
            << " per-renewal reference, " << kshare.total_events
            << " wheel (exact 500 us window), " << kshare_coarse.total_events
            << " wheel (5 ms window, "
            << Cell(static_cast<double>(kshare_ref.total_events) /
                        static_cast<double>(kshare_coarse.total_events),
                    2)
            << "x reduction).\n";

  // Device-engine comparison: the same KubeShare timeline on the per-kernel
  // reference device, and the kernel-heavy variant (the same jobs issuing
  // their request volume as back-to-back training streams) on both engines.
  // The differential suite pins the traces byte-equal; this records what
  // the fused engine's event economy is worth on a full workload.
  TimelineResult kshare_devref = RunTimeline(
      true, vgpu::TokenTimerMode::kWheel, Micros(500),
      gpu::GpuExecMode::kReference);
  TimelineResult train_fused = RunTimeline(
      true, vgpu::TokenTimerMode::kWheel, Micros(500),
      gpu::GpuExecMode::kFused, workload::WorkloadConfig::JobKind::kTraining);
  TimelineResult train_devref = RunTimeline(
      true, vgpu::TokenTimerMode::kWheel, Micros(500),
      gpu::GpuExecMode::kReference,
      workload::WorkloadConfig::JobKind::kTraining);
  std::cout << "\nDevice-engine events (inference workload): "
            << kshare_devref.total_events << " per-kernel reference, "
            << kshare.total_events << " fused ("
            << Cell(static_cast<double>(kshare_devref.total_events) /
                        static_cast<double>(kshare.total_events),
                    2)
            << "x).\nDevice-engine events (training workload): "
            << train_devref.total_events << " per-kernel reference, "
            << train_fused.total_events << " fused ("
            << Cell(static_cast<double>(train_devref.total_events) /
                        static_cast<double>(train_fused.total_events),
                    2)
            << "x reduction on the kernel-heavy case).\n";

  JsonValue report = bench::MakeReport("fig9");
  struct NamedResult {
    const char* system;
    const char* timers;
    const char* exec;
    const char* workload;
    const TimelineResult* r;
  };
  const NamedResult named[] = {
      {"native", "wheel", "fused", "inference", &k8s},
      {"kubeshare", "wheel", "fused", "inference", &kshare},
      {"kubeshare", "reference", "fused", "inference", &kshare_ref},
      {"kubeshare", "wheel-5ms", "fused", "inference", &kshare_coarse},
      {"kubeshare", "wheel", "reference", "inference", &kshare_devref},
      {"kubeshare", "wheel", "fused", "training", &train_fused},
      {"kubeshare", "wheel", "reference", "training", &train_devref},
  };
  for (const NamedResult& n : named) {
    JsonValue row = JsonValue::Object();
    row.Set("system", n.system);
    row.Set("token_timers", n.timers);
    row.Set("exec", n.exec);
    row.Set("workload", n.workload);
    row.Set("completed", n.r->completed);
    row.Set("makespan_s", n.r->makespan_s);
    row.Set("total_events", n.r->total_events);
    bench::AddRow(report, std::move(row));
  }
  std::cout << "wrote " << bench::WriteReport(report) << "\n";
  return 0;
}
