// Extension study (paper §1 motivation): "low resource utilization when a
// GPU device cannot be fully utilized by a single application due to the
// burstiness of GPU workload".
//
// Phased training jobs (compute bursts separated by checkpoint/data-load
// phases) with the duty cycle swept. Native Kubernetes pins one job per
// GPU, so its throughput scales with the duty cycle; KubeShare interleaves
// the bursts of co-located jobs — the sharing gain should approach
// 1/duty_cycle until packing limits bind.

#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "harness.hpp"
#include "sweep.hpp"
#include "workload/host.hpp"

namespace {

using namespace ks;

struct Result {
  double jobs_per_minute = 0.0;
  double avg_util = 0.0;
};

Result Run(bool use_kubeshare, Duration io_per_epoch, double duty) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 2;
  ccfg.gpus_per_node = 2;
  k8s::Cluster cluster(ccfg);
  std::unique_ptr<kubeshare::KubeShare> kubeshare;
  if (use_kubeshare) {
    kubeshare = std::make_unique<kubeshare::KubeShare>(&cluster);
  }
  workload::WorkloadHost host(&cluster);
  (void)cluster.Start();
  if (kubeshare != nullptr) (void)kubeshare->Start();
  cluster.nvml().Start();

  const int total_jobs = 24;
  Time next = Seconds(1);
  for (int i = 0; i < total_jobs; ++i) {
    const std::string name = "job-" + std::to_string(i);
    workload::PhasedTrainingSpec spec;
    spec.epochs = 12;
    spec.steps_per_epoch = 100;  // 1 s of compute per epoch
    spec.step_kernel = Millis(10);
    spec.io_per_epoch = io_per_epoch;
    cluster.sim().ScheduleAt(next, [&, name, spec, duty] {
      host.ExpectJob(name, [spec] {
        return std::make_unique<workload::PhasedTrainingJob>(spec);
      });
      if (kubeshare != nullptr) {
        kubeshare::SharePod sp;
        sp.meta.name = name;
        sp.spec.gpu.gpu_request = duty;  // request the duty cycle
        sp.spec.gpu.gpu_limit = 1.0;
        sp.spec.gpu.gpu_mem = 0.2;
        (void)kubeshare->CreateSharePod(sp);
      } else {
        k8s::Pod pod;
        pod.meta.name = name;
        pod.spec.requests.Set(k8s::kResourceNvidiaGpu, 1);
        (void)cluster.api().pods().Create(pod);
      }
    });
    next += Seconds(1);
  }

  const Duration slice = Seconds(10);
  while (host.completed() + host.failed() <
             static_cast<std::size_t>(total_jobs) &&
         cluster.sim().Now() < Minutes(120)) {
    cluster.sim().RunUntil(cluster.sim().Now() + slice);
  }
  Result r;
  if (!host.completion_times().empty()) {
    const Duration span = host.completion_times().back() - Seconds(1);
    r.jobs_per_minute =
        static_cast<double>(host.completed()) / (ToSeconds(span) / 60.0);
  }
  return r;
}

}  // namespace

int main() {
  bench::Banner(
      "bench_study_burstiness: sharing gain vs training duty cycle",
      "extension study (paper §1 burstiness motivation)");

  Table table({"io per epoch (s)", "duty cycle", "k8s jobs/min",
               "kubeshare jobs/min", "gain", "1/duty"});
  // Each point builds its own clusters, so the sweep pool can run them
  // concurrently; results print in point order (byte-identical to serial).
  const std::vector<double> io_seconds = {0.0, 0.5, 1.0, 2.0, 4.0};
  struct Point {
    double duty = 0.0;
    Result k8s;
    Result kshare;
  };
  const std::vector<Point> results = bench::RunSweep<Point>(
      io_seconds.size(), [&io_seconds](std::size_t i) {
        const double io_s = io_seconds[i];
        workload::PhasedTrainingSpec probe;
        probe.steps_per_epoch = 100;
        probe.step_kernel = Millis(10);
        probe.io_per_epoch = Seconds(io_s);
        Point p;
        p.duty = probe.duty_cycle();
        p.k8s = Run(false, Seconds(io_s), p.duty);
        p.kshare = Run(true, Seconds(io_s), p.duty);
        return p;
      });
  for (std::size_t i = 0; i < io_seconds.size(); ++i) {
    const Point& p = results[i];
    table.AddRow({Cell(io_seconds[i], 1), Cell(p.duty, 2),
                  Cell(p.k8s.jobs_per_minute, 1),
                  Cell(p.kshare.jobs_per_minute, 1),
                  Cell(p.k8s.jobs_per_minute > 0
                           ? p.kshare.jobs_per_minute / p.k8s.jobs_per_minute
                           : 0.0,
                       2),
                  Cell(1.0 / p.duty, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: with duty > 0.5 the jobs' gpu_requests exceed "
               "half a GPU, so\nno pair fits and KubeShare only pays its "
               "pod-creation overhead; once\nduty <= 0.5 jobs co-locate and "
               "the gain grows toward 1/duty (bounded by\nqueueing and the "
               "guarantee sums) — the utilization argument of the\npaper's "
               "introduction, quantified.\n";
  return 0;
}
