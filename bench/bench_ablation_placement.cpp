// Ablation (DESIGN.md): the Step-3 placement choice of Algorithm 1.
//
// The paper uses best-fit on unlabelled devices ("utilize the resources of
// existing vGPUs as much as possible") and worst-fit on labelled devices.
// This bench quantifies the choice against worst-fit-everywhere and
// first-fit under the Fig 8 inference workload: best-fit should complete
// the workload holding fewer GPUs (frees whole devices for native pods)
// at comparable throughput.
//
// The three variants run through the parallel sweep runner (each point
// owns its Simulation); output is collected first and printed in point
// order, so serial (KS_BENCH_THREADS=1) and parallel runs are
// byte-identical. Writes BENCH_ablation_placement.json.

#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "harness.hpp"
#include "json_report.hpp"
#include "sweep.hpp"

int main() {
  using namespace ks;
  bench::Banner("bench_ablation_placement: Step-3 placement policy",
                "DESIGN.md ablation (Algorithm 1, Step 3)");

  const struct {
    const char* name;
    kubeshare::PlacementVariant variant;
  } variants[] = {
      {"paper (best-fit)", kubeshare::PlacementVariant::kPaper},
      {"worst-fit", kubeshare::PlacementVariant::kWorstFitEverywhere},
      {"first-fit", kubeshare::PlacementVariant::kFirstFit},
  };
  const std::size_t points = std::size(variants);

  std::vector<bench::RunResult> results(points);
  bench::RunSweep(points, [&](std::size_t i) {
    bench::RunOptions opt;
    opt.cluster.nodes = 8;
    opt.cluster.gpus_per_node = 4;
    opt.workload.total_jobs = 250;
    opt.workload.mean_interarrival = Seconds(3.6 / 5);
    opt.workload.demand_mean = 0.3;
    opt.workload.demand_stddev = 0.1;
    opt.workload.gpu_mem = 0.2;
    opt.workload.seed = 909;
    opt.kubeshare.placement = variants[i].variant;
    results[i] = bench::RunWorkload(opt);
  });

  Table table({"policy", "jobs/min", "mean GPUs held", "peak GPUs held"});
  JsonValue report = bench::MakeReport("ablation_placement");
  for (std::size_t i = 0; i < points; ++i) {
    const bench::RunResult& result = results[i];
    table.AddRow({variants[i].name, Cell(result.jobs_per_minute, 1),
                  Cell(result.mean_gpus_held, 1),
                  Cell(result.peak_gpus_held, 0)});
    JsonValue row = JsonValue::Object();
    row.Set("policy", variants[i].name);
    bench::FillRunResult(row, result);
    bench::AddRow(report, std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nExpected: best-fit packs onto fewer devices (lower held-"
               "GPU footprint)\nwithout losing throughput; worst-fit spreads "
               "and hoards devices.\n";
  std::cout << "\nwrote " << bench::WriteReport(report) << "\n";
  return 0;
}
