// Figure 5: "The positive correlation between the GPU usage and the number
// of client requests for TF-serving."
//
// A single inference job runs unthrottled on one GPU while the client
// request rate is swept; GPU usage is read from the NVML monitor, exactly
// as the paper measures it.

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "cuda/context.hpp"
#include "gpu/nvml.hpp"
#include "harness.hpp"
#include "workload/job.hpp"

int main() {
  using namespace ks;
  bench::Banner("bench_fig5: inference GPU usage vs client request rate",
                "Figure 5");

  Table table({"request_rate (req/s)", "expected_usage", "nvml_gpu_usage"});
  for (const double rate : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0,
                            45.0}) {
    sim::Simulation sim;
    gpu::GpuDevice dev(&sim, GpuUuid("GPU-0"));
    gpu::NvmlMonitor nvml(&sim, Seconds(1));
    nvml.Register(&dev);
    nvml.Start();
    cuda::CudaContext ctx(&dev, ContainerId("tf-serving"));

    workload::InferenceSpec spec;
    spec.request_rate_hz = rate;
    spec.kernel_per_request = Millis(20);
    spec.total_requests = static_cast<int>(rate * 120);  // 2 minutes
    spec.seed = 99;
    workload::InferenceJob job(spec);
    job.Start(&ctx, &sim, nullptr);
    sim.RunUntil(Seconds(120));
    nvml.Stop();

    table.AddRow({Cell(rate, 0), Cell(rate * 0.020, 2),
                  Cell(nvml.AverageUtilization(dev.uuid()), 3)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): GPU usage rises roughly linearly with the\n"
      "client request rate until the device saturates.\n");
  return 0;
}
