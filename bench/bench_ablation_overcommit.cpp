// Ablation (DESIGN.md extension; paper §4.5 related work): GPUswap-style
// memory over-commitment.
//
// Memory-heavy inference jobs (each reserving 60% of device memory, but
// only 30% compute) are packed two-per-GPU only when over-commitment is
// on; the cost is page migration on token hand-offs. The bench sweeps the
// model size and reports throughput with and without the extension —
// showing both the paper's warning ("the risk to introduce more
// performance overhead from the memory swapping operations") and the
// upside (more sharing opportunities).

#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"
#include "workload/host.hpp"

namespace {

using namespace ks;

struct Result {
  double jobs_per_minute = 0.0;
  std::size_t completed = 0;
};

Result Run(bool overcommit, double model_fraction) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 2;
  ccfg.gpus_per_node = 2;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShareConfig kcfg;
  kcfg.allow_memory_overcommit = overcommit;
  kubeshare::KubeShare kubeshare(&cluster, kcfg);
  workload::WorkloadHost host(&cluster);
  if (overcommit) host.EnableMemoryOvercommit(12e9);
  (void)cluster.Start();
  (void)kubeshare.Start();

  const int total_jobs = 24;
  const auto model_bytes = static_cast<std::uint64_t>(
      model_fraction * static_cast<double>(cluster.config().gpu_spec.memory_bytes));
  Time next = Seconds(1);
  for (int i = 0; i < total_jobs; ++i) {
    const std::string name = "job-" + std::to_string(i);
    workload::InferenceSpec spec =
        workload::InferenceSpec::ForDemand(0.3, 450, Millis(20));
    spec.model_bytes = model_bytes;
    spec.seed = 11 + static_cast<std::uint64_t>(i);
    cluster.sim().ScheduleAt(next, [&, name, spec, model_fraction] {
      host.ExpectJob(name, [spec] {
        return std::make_unique<workload::InferenceJob>(spec);
      });
      kubeshare::SharePod sp;
      sp.meta.name = name;
      sp.spec.gpu.gpu_request = 0.3;
      sp.spec.gpu.gpu_limit = 0.8;
      sp.spec.gpu.gpu_mem = model_fraction + 0.02;
      (void)kubeshare.CreateSharePod(sp);
    });
    next += Seconds(2);
  }
  const Duration slice = Seconds(10);
  while (host.completed() + host.failed() <
             static_cast<std::size_t>(total_jobs) &&
         cluster.sim().Now() < Minutes(120)) {
    cluster.sim().RunUntil(cluster.sim().Now() + slice);
  }
  Result r;
  r.completed = host.completed();
  if (!host.completion_times().empty()) {
    const Duration span = host.completion_times().back() - Seconds(1);
    r.jobs_per_minute =
        static_cast<double>(host.completed()) / (ToSeconds(span) / 60.0);
  }
  return r;
}

}  // namespace

int main() {
  bench::Banner("bench_ablation_overcommit: GPUswap-style memory sharing",
                "DESIGN.md extension (paper §4.5 related work)");

  Table table({"model size (frac of GPU mem)", "strict jobs/min",
               "overcommit jobs/min", "overcommit gain"});
  for (const double frac : {0.25, 0.40, 0.60, 0.75}) {
    const Result strict = Run(false, frac);
    const Result oc = Run(true, frac);
    table.AddRow({Cell(frac, 2), Cell(strict.jobs_per_minute, 1),
                  Cell(oc.jobs_per_minute, 1),
                  Cell(strict.jobs_per_minute > 0
                           ? oc.jobs_per_minute / strict.jobs_per_minute
                           : 0.0,
                       2)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: small models (<=0.5) fit pairwise anyway — no "
               "difference.\nLarge models only share under over-commitment; "
               "whether that wins depends\non migration cost vs queueing "
               "(the tradeoff the paper cites from the\nGPUswap line of "
               "work).\n";
  return 0;
}
