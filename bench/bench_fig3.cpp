// Figure 3: "Resource fragmentation can cause resource over-commitment and
// under-utilization problems, if a scheduler is not aware of the identity
// of the GPU assigned to a container in a node."
//
// The paper's illustrative example made measurable: six fractional jobs
// (the paper's containers A..F) are placed on a 4-GPU node
//   (a) by the scaling-factor baseline — kube-scheduler sees only the
//       aggregate unit count and the kubelet hands out units first-fit, so
//       containers land wherever their first unit lives (round-robin-ish,
//       identity-blind), over-committing some GPUs and idling others;
//   (b) by KubeShare's locality-aware Algorithm 1 — per-device packing.
// The output is each GPU's committed demand and measured utilization.

#include <iostream>

#include "baselines/fractional_client.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "workload/host.hpp"

namespace {

using namespace ks;

// The paper's Fig 3 containers: demands that sum to 2.4 GPUs, so a
// locality-aware packer needs 3 devices while identity-blind placement
// spreads and overcommits.
struct JobDef {
  const char* name;
  double demand;
};
constexpr JobDef kJobs[] = {{"A", 0.6}, {"B", 0.5}, {"C", 0.5},
                            {"D", 0.4}, {"E", 0.2}, {"F", 0.2}};

void PrintGpuReport(k8s::Cluster& cluster, Time horizon) {
  Table table({"GPU", "busy time (s)", "utilization"});
  for (int g = 0; g < 4; ++g) {
    gpu::GpuDevice* dev = cluster.FindGpu(GpuUuid("GPU-0-" + std::to_string(g)));
    dev->utilization().Flush(cluster.sim().Now());
    const double busy = ToSeconds(dev->utilization().TotalBusy());
    table.AddRow({dev->uuid().value(), Cell(busy, 1),
                  Cell(busy / ToSeconds(horizon), 2)});
  }
  table.Print(std::cout);
}

workload::WorkloadHost::JobFactory MakeJob(double demand) {
  workload::InferenceSpec spec =
      workload::InferenceSpec::ForDemand(demand, static_cast<int>(
          demand / 0.020 * 120.0), Millis(20));
  spec.seed = 5;
  return [spec] { return std::make_unique<workload::InferenceJob>(spec); };
}

}  // namespace

int main() {
  bench::Banner("bench_fig3: fragmentation under identity-blind placement",
                "Figure 3");

  std::cout << "\n(a) scaling-factor baseline (no GPU identity)\n\n";
  {
    k8s::ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.gpus_per_node = 4;
    cfg.scaled_plugin = true;
    k8s::Cluster cluster(cfg);
    workload::WorkloadHost host(&cluster);
    baselines::FractionalClient client(&cluster, &host,
                                       baselines::GaiaGpuTraits());
    (void)cluster.Start();
    for (const JobDef& j : kJobs) {
      (void)client.Submit(j.name, j.demand, 0.15, MakeJob(j.demand));
    }
    cluster.sim().RunUntil(Seconds(140));
    PrintGpuReport(cluster, Seconds(120));
    std::cout << "completed " << host.completed() << "/6 jobs in 120s of "
              << "service time\n";
  }

  std::cout << "\n(b) KubeShare (first-class GPUs, Algorithm 1)\n\n";
  {
    k8s::ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.gpus_per_node = 4;
    k8s::Cluster cluster(cfg);
    kubeshare::KubeShare kubeshare(&cluster);
    workload::WorkloadHost host(&cluster);
    (void)cluster.Start();
    (void)kubeshare.Start();
    for (const JobDef& j : kJobs) {
      host.ExpectJob(j.name, MakeJob(j.demand));
      kubeshare::SharePod sp;
      sp.meta.name = j.name;
      sp.spec.gpu.gpu_request = j.demand;
      sp.spec.gpu.gpu_limit = std::min(1.0, j.demand + 0.1);
      sp.spec.gpu.gpu_mem = 0.15;
      (void)kubeshare.CreateSharePod(sp);
    }
    cluster.sim().RunUntil(Seconds(140));
    PrintGpuReport(cluster, Seconds(120));
    std::cout << "completed " << host.completed() << "/6 jobs; vGPUs "
              << "acquired: " << kubeshare.devmgr().vgpus_created()
              << " of 4 (all released after the run)\n";
  }

  std::cout << "\nExpected shape (paper): the identity-blind baseline "
               "over-commits the\nfirst GPU(s) (utilization pinned at ~1.0, "
               "jobs slowed) and leaves others\nidle; KubeShare packs the "
               "same demands onto fewer GPUs without\nover-committing any "
               "of them.\n";
  return 0;
}
