// Figure 12: "The performance slowdown on a shared GPU for different job
// combinations: A+A, B+B, and A+B."
//
// Job A requests more GPU than it actually uses (resilient to sharing);
// Job B requests less than it actually uses (sensitive). Both request
// < 50%, so any pair can share a GPU:
//   A: actual demand 0.25, gpu_request 0.45
//   B: actual demand 0.75, gpu_request 0.45
// Expected: B+B -> each B throttled to ~0.5 -> ~1.5x slowdown;
// A+A and A+B -> < 1.1x.

#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"
#include "workload/host.hpp"

namespace {

using namespace ks;

struct JobKind {
  double demand;
  double request;
  double limit;
};

constexpr JobKind kJobA{0.25, 0.45, 0.90};
constexpr JobKind kJobB{0.75, 0.45, 0.90};
constexpr double kSoloDurationS = 60.0;

/// Runs `kinds` together on one shared GPU through the full KubeShare
/// stack and returns each job's execution time (container start to job
/// completion) in seconds. `seed_base + position` seeds each job's client
/// arrival process, so a solo run at the same position is an exact
/// baseline for the shared run.
std::vector<double> RunCombo(const std::vector<JobKind>& kinds,
                             std::uint64_t seed_base = 1000) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 1;
  ccfg.gpus_per_node = 1;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  (void)cluster.Start();
  (void)kubeshare.Start();

  std::vector<std::string> names;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const JobKind kind = kinds[i];
    const std::string name = "job-" + std::to_string(i);
    names.push_back(name);
    workload::InferenceSpec spec = workload::InferenceSpec::ForDemand(
        kind.demand,
        static_cast<int>(kind.demand / 0.020 * kSoloDurationS), Millis(20));
    spec.seed = seed_base + i;
    host.ExpectJob(name, [spec] {
      return std::make_unique<workload::InferenceJob>(spec);
    });
    kubeshare::SharePod sp;
    sp.meta.name = name;
    sp.spec.gpu.gpu_request = kind.request;
    sp.spec.gpu.gpu_limit = kind.limit;
    sp.spec.gpu.gpu_mem = 0.4;
    (void)kubeshare.CreateSharePod(sp);
  }
  cluster.sim().RunUntil(Minutes(10));
  std::vector<double> times;
  for (const std::string& name : names) {
    const auto* rec = host.RecordOf(name);
    times.push_back(rec != nullptr && rec->has_finished
                        ? ToSeconds(rec->finished - rec->started)
                        : -1.0);
  }
  return times;
}

}  // namespace

int main() {
  bench::Banner("bench_fig12: slowdown on a shared GPU per job combination",
                "Figure 12");

  // Per-seed standalone baselines: position i of a pair uses seed 1000+i,
  // so the solo run with the matching seed is the exact denominator.
  const double solo_a0 = RunCombo({kJobA}, 1000)[0];
  const double solo_a1 = RunCombo({kJobA}, 1001)[0];
  const double solo_b0 = RunCombo({kJobB}, 1000)[0];
  const double solo_b1 = RunCombo({kJobB}, 1001)[0];
  std::cout << "\nStandalone execution: A = " << Cell(solo_a0, 1)
            << " s, B = " << Cell(solo_b0, 1) << " s\n\n";

  Table table({"combination", "job 1 slowdown", "job 2 slowdown"});
  {
    const auto t = RunCombo({kJobA, kJobA});
    table.AddRow({"A+A", Cell(t[0] / solo_a0, 2), Cell(t[1] / solo_a1, 2)});
  }
  {
    const auto t = RunCombo({kJobB, kJobB});
    table.AddRow({"B+B", Cell(t[0] / solo_b0, 2), Cell(t[1] / solo_b1, 2)});
  }
  {
    const auto t = RunCombo({kJobA, kJobB});
    table.AddRow({"A+B", Cell(t[0] / solo_a0, 2), Cell(t[1] / solo_b1, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): B+B ~1.5x for both jobs; A+A and "
               "A+B < 1.1x —\nJob B under-requests, so co-locating two Bs "
               "caps each at the fair split\n(0.5) below their real demand "
               "(0.75).\n";
  return 0;
}
