// Figure 10: "The overhead of KubeShare on pod creation" — end-to-end pod
// creation latency vs the number of concurrent creation requests, for:
//   - native Kubernetes pods,
//   - KubeShare sharePods hitting warm vGPUs (no vGPU creation), and
//   - KubeShare sharePods that must first acquire a vGPU (cold pool).
//
// Paper expectations: warm KubeShare ~ +15% over native (scheduling + vGPU
// info query); cold KubeShare ~ 2x (it launches two pods); and while the
// base creation time grows with concurrency (runtime worker queueing), the
// KubeShare overhead stays constant.

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "k8s/resources.hpp"

namespace {

using namespace ks;

k8s::ClusterConfig BigCluster() {
  k8s::ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.gpus_per_node = 4;
  return cfg;
}

/// Mean creation latency (submit -> Running) of `n` simultaneous native
/// GPU pods.
double NativeCreation(int n) {
  k8s::Cluster cluster(BigCluster());
  (void)cluster.Start();
  cluster.sim().RunUntil(Seconds(1));
  for (int i = 0; i < n; ++i) {
    k8s::Pod pod;
    pod.meta.name = "p" + std::to_string(i);
    pod.spec.requests.Set(k8s::kResourceNvidiaGpu, 1);
    (void)cluster.api().pods().Create(pod);
  }
  cluster.sim().RunUntil(Minutes(10));
  RunningStats stats;
  for (const k8s::Pod& p : cluster.api().pods().List()) {
    if (p.status.running_time.has_value()) {
      stats.Add(ToSeconds(*p.status.running_time - p.meta.creation_time));
    }
  }
  return stats.mean();
}

/// Mean creation latency of `n` simultaneous sharePods. With `warm_pool`
/// every vGPU is pre-acquired (reservation mode), so no acquisition pod is
/// needed on the critical path.
double SharePodCreation(int n, bool warm_pool) {
  k8s::Cluster cluster(BigCluster());
  kubeshare::KubeShareConfig kcfg;
  kcfg.pool_policy = warm_pool ? kubeshare::PoolPolicy::kReservation
                               : kubeshare::PoolPolicy::kOnDemand;
  kubeshare::KubeShare kubeshare(&cluster, kcfg);
  (void)cluster.Start();
  (void)kubeshare.Start();
  if (warm_pool) {
    for (std::size_t node = 0; node < cluster.node_count(); ++node) {
      for (int g = 0; g < cluster.config().gpus_per_node; ++g) {
        (void)kubeshare.devmgr().ReserveVgpu(cluster.node(node).name);
      }
    }
    cluster.sim().RunUntil(Seconds(30));  // acquisitions complete
  } else {
    cluster.sim().RunUntil(Seconds(1));
  }

  const Time submit_at = cluster.sim().Now();
  for (int i = 0; i < n; ++i) {
    kubeshare::SharePod sp;
    sp.meta.name = "sp" + std::to_string(i);
    // 0.9 demand: one sharePod per physical GPU, matching the native runs.
    sp.spec.gpu.gpu_request = 0.9;
    sp.spec.gpu.gpu_limit = 1.0;
    sp.spec.gpu.gpu_mem = 0.9;
    (void)kubeshare.CreateSharePod(sp);
  }
  cluster.sim().RunUntil(submit_at + Minutes(10));
  RunningStats stats;
  for (const kubeshare::SharePod& sp : kubeshare.sharepods().List()) {
    if (sp.status.running_time.has_value()) {
      stats.Add(ToSeconds(*sp.status.running_time - sp.meta.creation_time));
    }
  }
  return stats.mean();
}

}  // namespace

int main() {
  bench::Banner("bench_fig10: pod creation overhead vs concurrency",
                "Figure 10");

  Table table({"concurrent", "k8s (s)", "kubeshare warm (s)", "warm/k8s",
               "kubeshare cold (s)", "cold/k8s"});
  for (const int n : {1, 2, 4, 8, 16, 32}) {
    const double native = NativeCreation(n);
    const double warm = SharePodCreation(n, true);
    const double cold = SharePodCreation(n, false);
    table.AddRow({Cell(static_cast<std::int64_t>(n)), Cell(native, 2),
                  Cell(warm, 2), Cell(native > 0 ? warm / native : 0, 2),
                  Cell(cold, 2), Cell(native > 0 ? cold / native : 0, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): warm ~1.15x native; cold ~2x "
               "native (two pod\nlaunches); absolute times grow with "
               "concurrency for every system while\nKubeShare's overhead "
               "stays roughly constant.\n";
  return 0;
}
