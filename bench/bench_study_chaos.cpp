// Chaos study (design extension; no paper figure): throughput and job
// completion under deterministic fault injection, native Kubernetes vs
// KubeShare.
//
// 8-node / 32-GPU cluster under the Fig-8-style Poisson inference
// workload. A seeded FaultPlan injects node crashes (with auto-recovery),
// token-daemon restarts, container OOM-kills, apiserver latency spikes and
// dropped watch events at increasing rates. KubeShare runs with the DevMgr
// reconcile pass enabled and infrastructure-killed sharePods requeued;
// native Kubernetes has no retry path, so evicted jobs stay failed — the
// gap between the two "completed" columns is the recovery subsystem.
//
// The 10 (rate, mode) points run through the parallel sweep runner — each
// RunWithChaos builds its own Simulation/Cluster/FaultInjector, so points
// are independent. Results are collected and printed in point order:
// KS_BENCH_THREADS=1 (serial) and the default parallel run produce
// byte-identical output and BENCH_study_chaos.json.

#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "json_report.hpp"
#include "sweep.hpp"

namespace {

ks::bench::RunOptions BaseOptions() {
  ks::bench::RunOptions opt;
  opt.cluster.nodes = 8;
  opt.cluster.gpus_per_node = 4;
  // Faster control-plane reaction than the Kubernetes defaults so the
  // recovery path, not the detection latency, dominates the measurement.
  opt.cluster.node_detection = ks::Seconds(2);
  opt.cluster.pod_eviction_timeout = ks::Seconds(3);
  // Periodic relist so dropped watch events cannot strand a pod forever.
  opt.cluster.component_resync = ks::Seconds(2);
  opt.workload.total_jobs = 150;
  opt.workload.mean_interarrival = ks::Seconds(1.0);
  opt.workload.job_duration = ks::Seconds(38.4);
  opt.workload.demand_mean = 0.3;
  opt.workload.demand_stddev = 0.1;
  opt.workload.gpu_mem = 0.2;
  opt.workload.seed = 7;
  opt.kubeshare.reconcile_period = ks::Seconds(2);
  opt.kubeshare.requeue_lost_workloads = true;
  opt.horizon = ks::Minutes(30);
  return opt;
}

ks::chaos::RandomPlanOptions PlanFor(const ks::bench::RunOptions& opt,
                                     int faults_per_minute) {
  ks::chaos::RandomPlanOptions plan;
  plan.seed = 1234;  // same plan for both modes at a given rate
  plan.start = ks::Seconds(5);
  plan.horizon = ks::Minutes(5);
  plan.fault_count =
      faults_per_minute * 5;  // rate x the 5-minute injection window
  for (int n = 0; n < opt.cluster.nodes; ++n) {
    plan.nodes.push_back("node-" + std::to_string(n));
  }
  plan.outage_min = ks::Seconds(8);
  plan.outage_max = ks::Seconds(20);
  // Control-plane faults from the crash-consistency PR. Both modes draw
  // the same plan; in native-k8s mode there is no KubeShare control plane
  // to kill, so these land as recorded skips and the node-level faults
  // stay identical across the two columns.
  plan.devmgr_crash_weight = 0.4;
  plan.sched_crash_weight = 0.4;
  return plan;
}

struct ChaosRun {
  ks::bench::RunResult result;
  ks::chaos::ChaosStats chaos;
};

ChaosRun RunWithChaos(ks::bench::RunOptions opt, int faults_per_minute,
                      bool kubeshare) {
  opt.use_kubeshare = kubeshare;
  std::unique_ptr<ks::chaos::FaultInjector> injector;
  if (faults_per_minute > 0) {
    const ks::chaos::FaultPlan plan =
        ks::chaos::FaultPlan::Random(PlanFor(opt, faults_per_minute));
    opt.on_start = [&injector, plan](ks::k8s::Cluster& cluster,
                                     ks::kubeshare::KubeShare* ks) {
      injector =
          std::make_unique<ks::chaos::FaultInjector>(&cluster, plan);
      if (ks != nullptr) injector->SetKubeShare(ks);
      (void)injector->Arm();
    };
  }
  ChaosRun run;
  run.result = ks::bench::RunWorkload(opt);
  if (injector != nullptr) run.chaos = injector->stats();
  return run;
}

struct Point {
  int rate;
  bool kubeshare;
};

}  // namespace

int main() {
  using namespace ks;
  bench::Banner("bench_study_chaos: throughput & completion vs fault rate",
                "design study (chaos subsystem)");

  std::cout << "\n150 jobs, Poisson arrivals (1 s mean), faults injected "
               "over the first 5 min.\nSame seeded FaultPlan for both "
               "modes at each rate.\n\n";

  std::vector<Point> sweep;
  for (const int rate : {0, 1, 2, 4, 8}) {
    for (const bool kubeshare : {false, true}) {
      sweep.push_back({rate, kubeshare});
    }
  }

  std::vector<ChaosRun> runs(sweep.size());
  bench::RunSweep(sweep.size(), [&](std::size_t i) {
    runs[i] = RunWithChaos(BaseOptions(), sweep[i].rate, sweep[i].kubeshare);
  });

  Table table({"faults/min", "mode", "completed", "failed", "jobs/min",
               "MTTR s", "devmgr MTTR s", "sched MTTR s", "evicted",
               "vGPU reclaim", "requeued", "daemon restarts"});
  JsonValue report = bench::MakeReport("study_chaos");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const ChaosRun& run = runs[i];
    const std::string mode = sweep[i].kubeshare ? "kubeshare" : "k8s";
    table.AddRow(
        {Cell(static_cast<std::int64_t>(sweep[i].rate)), mode,
         Cell(static_cast<std::int64_t>(run.result.completed)),
         Cell(static_cast<std::int64_t>(run.result.failed)),
         Cell(run.result.jobs_per_minute, 1),
         Cell(ToSeconds(run.chaos.MeanTimeToRecovery()), 2),
         Cell(ToSeconds(run.chaos.MeanDevMgrRecovery()), 2),
         Cell(ToSeconds(run.chaos.MeanSchedRecovery()), 2),
         Cell(static_cast<std::int64_t>(run.result.recovery.pods_evicted)),
         Cell(static_cast<std::int64_t>(
             run.result.recovery.vgpus_reclaimed)),
         Cell(static_cast<std::int64_t>(
             run.result.recovery.sharepods_requeued)),
         Cell(static_cast<std::int64_t>(
             run.result.recovery.backend_restarts))});
    JsonValue row = JsonValue::Object();
    row.Set("faults_per_minute", sweep[i].rate);
    row.Set("mode", mode);
    row.Set("mttr_s", ToSeconds(run.chaos.MeanTimeToRecovery()));
    row.Set("devmgr_mttr_s", ToSeconds(run.chaos.MeanDevMgrRecovery()));
    row.Set("sched_mttr_s", ToSeconds(run.chaos.MeanSchedRecovery()));
    row.Set("devmgr_crashes",
            static_cast<std::int64_t>(run.chaos.devmgr_crashes));
    row.Set("sched_crashes",
            static_cast<std::int64_t>(run.chaos.sched_crashes));
    bench::FillRunResult(row, run.result);
    bench::AddRow(report, std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\nExpected shape: at rate 0 the modes match their fault-free "
               "baselines.\nAs the fault rate grows, native Kubernetes loses "
               "every job on a crashed\nnode (failed column grows) while "
               "KubeShare requeues them — completion\nstays near the job "
               "count at the cost of throughput (recovery latency).\n";
  std::cout << "\nwrote " << bench::WriteReport(report) << "\n";
  return 0;
}
