// Engine microbenchmark: events/sec and schedules/sec for the current
// ks::sim::Simulation against the pre-change engine, which is embedded
// below verbatim (std::function events in a lazy-deletion
// std::priority_queue with an unordered_set tombstone set). Both engines
// run the same workload patterns in the same process, so the ratio column
// is a like-for-like measurement on this machine.
//
// Patterns, chosen to mirror what the cluster simulation actually does:
//   churn-1k / churn-100k   N periodic timers rescheduling themselves,
//                           capturing owner pointer + id + name (the
//                           kubelet-sync / sampler shape)
//   bulk-1M                 one-shot events scheduled en masse, then
//                           drained (workload arrival generation)
//   timeout-90pct           batches of request timeouts, 90% cancelled
//                           before firing (RPC / eviction timeouts)
//   watchdog-100k           per-node detection timer reset (cancel +
//                           reschedule) on every heartbeat — the node
//                           failure-detection shape, tombstone-heavy
//
// Writes BENCH_engine.json (schema ks-bench/1) with one row per
// (pattern, engine) holding events/sec, plus a ratio row per pattern.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/table.hpp"
#include "harness.hpp"
#include "json_report.hpp"
#include "sim/simulation.hpp"
#include "vgpu/token_backend.hpp"
#include "vgpu/token_backend_reference.hpp"

namespace baseline {

// The pre-change ks::sim::Simulation, kept verbatim as the measurement
// baseline. Do not modernize: the point is to preserve what the engine
// looked like before the rework.
using ks::Duration;
using ks::Time;

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time Now() const { return now_; }

  EventId ScheduleAt(Time t, std::function<void()> fn) {
    if (t < now_) t = now_;
    const EventId id = next_id_++;
    queue_.push(Event{t, id, std::move(fn)});
    return id;
  }

  EventId ScheduleAfter(Duration delay, std::function<void()> fn) {
    if (delay.count() < 0) delay = Duration{0};
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  bool Cancel(EventId id) {
    if (id == kInvalidEvent || id >= next_id_) return false;
    return cancelled_.insert(id).second;
  }

  bool Step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      now_ = ev.at;
      ++executed_;
      ev.fn();
      return true;
    }
    return false;
  }

  void Run(std::uint64_t max_events = UINT64_MAX) {
    while (max_events-- > 0 && Step()) {
    }
  }

  void RunUntil(Time t) {
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (cancelled_.count(top.id) > 0) {
        cancelled_.erase(top.id);
        queue_.pop();
        continue;
      }
      if (top.at > t) break;
      Step();
    }
    if (now_ < t) now_ = t;
  }

  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  Time now_{0};
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace baseline

namespace {

using ks::Duration;
using ks::Seconds;
using ks::Time;

volatile std::uint64_t g_sink = 0;

double NowSec() {
  using namespace std::chrono;
  return duration_cast<duration<double>>(
             steady_clock::now().time_since_epoch())
      .count();
}

/// Callback payload shaped like the simulation's real captures: an owner
/// pointer, a numeric id, and a pod/node name.
struct Payload {
  void* owner = nullptr;
  std::uint64_t id = 0;
  std::string name;
};

// Each pattern is a template over the engine type so both engines run
// byte-for-byte the same workload code.

template <typename Sim>
double ChurnPattern(std::size_t timers, std::uint64_t total) {
  Sim sim;
  struct Timer {
    Sim* sim;
    Payload p;
    void operator()() {
      g_sink = g_sink + p.id + p.name.size();
      Payload np = p;
      np.id++;
      sim->ScheduleAfter(Seconds(1.0 + (p.id % 7) * 0.1),
                         Timer{sim, std::move(np)});
    }
  };
  for (std::size_t i = 0; i < timers; ++i) {
    sim.ScheduleAfter(
        Seconds(0.001 * static_cast<double>(i)),
        Timer{&sim, Payload{&sim, i, "pod-" + std::to_string(i)}});
  }
  const double t0 = NowSec();
  sim.Run(total);
  return static_cast<double>(total) / (NowSec() - t0);
}

template <typename Sim>
double BulkPattern(std::uint64_t n) {
  Sim sim;
  struct Fire {
    Payload p;
    void operator()() { g_sink = g_sink + p.id + p.name.size(); }
  };
  const double t0 = NowSec();
  for (std::uint64_t i = 0; i < n; ++i) {
    sim.ScheduleAt(
        Seconds(static_cast<double>((i * 2654435761ull) % 1000000)),
        Fire{Payload{nullptr, i, "job-" + std::to_string(i % 97)}});
  }
  sim.Run();
  return static_cast<double>(n) / (NowSec() - t0);
}

template <typename Sim>
double TimeoutPattern(std::uint64_t n) {
  Sim sim;
  struct Fire {
    Payload p;
    void operator()() { g_sink = g_sink + p.id; }
  };
  std::vector<std::uint64_t> ids(1000);
  const double t0 = NowSec();
  std::uint64_t done = 0;
  while (done < n) {
    for (int i = 0; i < 1000; ++i) {
      ids[static_cast<std::size_t>(i)] = sim.ScheduleAfter(
          Seconds(10 + i % 13),
          Fire{Payload{nullptr, done + static_cast<std::uint64_t>(i),
                       "req-" + std::to_string(i % 31)}});
    }
    for (int i = 0; i < 1000; ++i) {
      if (i % 10 != 0) sim.Cancel(ids[static_cast<std::size_t>(i)]);
    }
    sim.RunUntil(sim.Now() + Seconds(30));
    done += 1000;
  }
  return static_cast<double>(n) / (NowSec() - t0);
}

template <typename Sim>
double WatchdogPattern(std::size_t nodes, std::uint64_t total) {
  Sim sim;
  std::vector<std::uint64_t> detect(nodes, 0);
  struct Heartbeat {
    Sim* sim;
    std::vector<std::uint64_t>* detect;
    std::uint64_t node;
    void operator()() {
      std::uint64_t& d = (*detect)[node];
      if (d != 0) sim->Cancel(d);
      const std::uint64_t n = node;
      d = sim->ScheduleAfter(Seconds(10), [n]() { g_sink = g_sink + n; });
      sim->ScheduleAfter(Seconds(1), Heartbeat{sim, detect, node});
    }
  };
  for (std::size_t i = 0; i < nodes; ++i) {
    sim.ScheduleAfter(Seconds(0.00001 * static_cast<double>(i)),
                      Heartbeat{&sim, &detect, i});
  }
  const double t0 = NowSec();
  sim.Run(total);
  return static_cast<double>(total) / (NowSec() - t0);
}

struct PatternResult {
  std::string name;
  double baseline_eps = 0.0;
  double current_eps = 0.0;
  double ratio() const { return current_eps / baseline_eps; }
};

// ---------------------------------------------------------------------------
// Token-heavy cluster scenario: how many engine events the per-node daemon
// schedules under each timer implementation. 16 devices x 4 greedy
// containers each, staggered arrivals, 30 simulated seconds of continuous
// token exchange — the renewal-storm shape that motivated the timer wheel.

struct GreedyTokenClient : ks::vgpu::TokenClient {
  ks::vgpu::TokenBackendApi* backend = nullptr;
  ks::ContainerId id{""};
  void OnTokenGranted(ks::Time) override {}
  void OnTokenExpired() override {
    (void)backend->ReleaseToken(id);
    (void)backend->RequestToken(id);
  }
};

struct TokenClusterResult {
  std::string mode;
  std::uint64_t total_events = 0;
  std::uint64_t grants = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
};

TokenClusterResult TokenClusterScenario(const std::string& mode_name,
                                        ks::vgpu::TokenTimerMode mode,
                                        ks::Duration coalesce_window) {
  using namespace ks;
  sim::Simulation sim;
  vgpu::BackendConfig cfg;
  cfg.coalesce_window = coalesce_window;
  std::unique_ptr<vgpu::TokenBackendApi> backend;
  if (mode == vgpu::TokenTimerMode::kWheel) {
    backend = std::make_unique<vgpu::TokenBackend>(&sim, cfg);
  } else {
    backend = std::make_unique<vgpu::TokenBackendReference>(&sim, cfg);
  }

  const int kDevices = 16;
  const int kContainersPerDevice = 4;
  std::vector<GpuUuid> gpus;
  for (int d = 0; d < kDevices; ++d) {
    gpus.emplace_back("GPU-TC-" + std::to_string(d));
    backend->RegisterDevice(gpus.back());
  }
  std::vector<std::unique_ptr<GreedyTokenClient>> clients;
  for (int c = 0; c < kDevices * kContainersPerDevice; ++c) {
    auto client = std::make_unique<GreedyTokenClient>();
    client->backend = backend.get();
    client->id = ContainerId("tc" + std::to_string(c));
    vgpu::ResourceSpec spec;
    spec.gpu_request = 0.2;
    spec.gpu_limit = 1.0;
    if (!backend
             ->RegisterContainer(client->id,
                                 gpus[static_cast<std::size_t>(c % kDevices)],
                                 spec, client.get())
             .ok()) {
      continue;
    }
    // Staggered arrivals (1 ms apart) so deadlines are not in lockstep by
    // construction — coalescing must be earned by the wheel.
    sim.ScheduleAt(ks::Millis(c),
                   [&backend, id = client->id] {
                     (void)backend->RequestToken(id);
                   });
    clients.push_back(std::move(client));
  }

  const double t0 = NowSec();
  sim.RunUntil(Seconds(30.0));
  const double wall = NowSec() - t0;

  TokenClusterResult result;
  result.mode = mode_name;
  result.total_events = sim.lifetime_events();
  result.grants = backend->grants();
  result.wall_s = wall;
  result.events_per_sec =
      static_cast<double>(sim.executed()) / (wall > 0.0 ? wall : 1.0);
  return result;
}

// ---------------------------------------------------------------------------
// Kernel-heavy cluster scenario: how many engine events a full KubeShare
// workload costs under each device execution engine. Training jobs issue
// their steps as one back-to-back kernel stream each, so the per-kernel
// reference engine pays one event per step while the fused engine retires a
// token-interval's worth of identical steps per event. Token renewals,
// sampling and the control plane are identical across modes, so the event
// delta is purely the device engine's.

struct KernelClusterResult {
  std::string mode;
  std::uint64_t total_events = 0;
  std::size_t completed = 0;
  double wall_s = 0.0;
};

KernelClusterResult KernelClusterScenario(const std::string& mode_name,
                                          ks::gpu::GpuExecMode exec) {
  using namespace ks;
  bench::RunOptions opt;
  opt.cluster.nodes = 4;
  opt.cluster.gpus_per_node = 2;
  opt.cluster.exec = exec;
  opt.workload.total_jobs = 32;
  opt.workload.mean_interarrival = Seconds(0.5);
  opt.workload.demand_mean = 0.5;
  opt.workload.demand_stddev = 0.1;
  opt.workload.job_duration = Seconds(30);
  opt.workload.kernel = Millis(5);
  opt.workload.gpu_mem = 0.2;
  opt.workload.seed = 7;
  opt.workload.job_kind = workload::WorkloadConfig::JobKind::kTraining;
  opt.horizon = Minutes(60);
  const double t0 = NowSec();
  const bench::RunResult r = bench::RunWorkload(opt);
  KernelClusterResult result;
  result.mode = mode_name;
  result.total_events = r.total_events;
  result.completed = r.completed;
  result.wall_s = NowSec() - t0;
  return result;
}

}  // namespace

int main() {
  using namespace ks;
  bench::Banner("bench_engine: event-loop throughput, current vs baseline",
                "perf microbenchmark (no paper figure)");

  std::printf(
      "\nBaseline = pre-rework engine (std::function + lazy-deletion "
      "priority_queue),\nembedded in this binary. Same workload templates "
      "for both engines.\n\n");

  const std::uint64_t kEvents = 3000000;
  std::vector<PatternResult> results;

  {
    PatternResult r{"churn-1k"};
    r.baseline_eps = ChurnPattern<baseline::Simulation>(1000, kEvents);
    r.current_eps = ChurnPattern<sim::Simulation>(1000, kEvents);
    results.push_back(r);
  }
  {
    PatternResult r{"churn-100k"};
    r.baseline_eps = ChurnPattern<baseline::Simulation>(100000, kEvents);
    r.current_eps = ChurnPattern<sim::Simulation>(100000, kEvents);
    results.push_back(r);
  }
  {
    PatternResult r{"bulk-3M"};
    r.baseline_eps = BulkPattern<baseline::Simulation>(kEvents);
    r.current_eps = BulkPattern<sim::Simulation>(kEvents);
    results.push_back(r);
  }
  {
    PatternResult r{"timeout-90pct"};
    r.baseline_eps = TimeoutPattern<baseline::Simulation>(kEvents);
    r.current_eps = TimeoutPattern<sim::Simulation>(kEvents);
    results.push_back(r);
  }
  {
    PatternResult r{"watchdog-100k"};
    r.baseline_eps = WatchdogPattern<baseline::Simulation>(100000, kEvents);
    r.current_eps = WatchdogPattern<sim::Simulation>(100000, kEvents);
    results.push_back(r);
  }

  Table table({"pattern", "baseline Mev/s", "current Mev/s", "speedup"});
  double log_sum = 0.0;
  for (const PatternResult& r : results) {
    log_sum += std::log(r.ratio());
    table.AddRow({r.name, Cell(r.baseline_eps / 1e6, 2),
                  Cell(r.current_eps / 1e6, 2), Cell(r.ratio(), 2)});
  }
  const double geomean =
      std::exp(log_sum / static_cast<double>(results.size()));
  table.AddRow({std::string("geomean"), std::string("-"), std::string("-"),
                Cell(geomean, 2)});
  table.Print(std::cout);

  std::printf(
      "\nCancel-heavy patterns (timeout, watchdog) gain the most: the "
      "baseline\nengine keeps a tombstone per cancel and pays an allocation "
      "per schedule,\nwhile the current engine cancels in place and keeps "
      "captures inline.\n");

  // Token-heavy cluster scenario: scheduled-event counts per timer mode.
  std::printf(
      "\nToken-cluster scenario: 16 devices x 4 greedy containers, 30 "
      "simulated\nseconds of token exchange. 'total events' counts every "
      "event scheduled on\nthe engine; the wheel batches renewals per "
      "coalescing window.\n\n");
  std::vector<TokenClusterResult> token_rows;
  token_rows.push_back(TokenClusterScenario(
      "reference", vgpu::TokenTimerMode::kReference, Micros(500)));
  token_rows.push_back(TokenClusterScenario(
      "wheel-500us", vgpu::TokenTimerMode::kWheel, Micros(500)));
  token_rows.push_back(TokenClusterScenario(
      "wheel-5ms", vgpu::TokenTimerMode::kWheel, Millis(5)));
  const double ref_events =
      static_cast<double>(token_rows.front().total_events);
  Table token_table(
      {"timers", "total events", "grants", "reduction", "Mev/s"});
  for (const TokenClusterResult& r : token_rows) {
    token_table.AddRow(
        {r.mode, Cell(static_cast<std::int64_t>(r.total_events)),
         Cell(static_cast<std::int64_t>(r.grants)),
         Cell(ref_events / static_cast<double>(r.total_events), 2),
         Cell(r.events_per_sec / 1e6, 2)});
  }
  token_table.Print(std::cout);
  std::printf(
      "\nwheel-500us keeps deadlines exact (the window divides every daemon "
      "\nduration) and already coalesces same-tick renewals; wheel-5ms "
      "trades\ndeadline precision for the headline event reduction.\n");

  // Kernel-heavy cluster scenario: scheduled-event counts per device
  // execution engine on a full KubeShare training workload.
  std::printf(
      "\nKernel-cluster scenario: 8 GPUs, 32 training jobs issuing their "
      "steps as\nback-to-back 5 ms kernel streams. 'total events' counts "
      "every event the\nwhole run scheduled; the fused engine retires a "
      "token-interval of identical\nsteps per event, the reference engine "
      "pays one event per step.\n\n");
  std::vector<KernelClusterResult> kernel_rows;
  kernel_rows.push_back(
      KernelClusterScenario("reference", gpu::GpuExecMode::kReference));
  kernel_rows.push_back(
      KernelClusterScenario("fused", gpu::GpuExecMode::kFused));
  const double kernel_ref_events =
      static_cast<double>(kernel_rows.front().total_events);
  Table kernel_table(
      {"device engine", "total events", "completed", "reduction", "wall (s)"});
  for (const KernelClusterResult& r : kernel_rows) {
    kernel_table.AddRow(
        {r.mode, Cell(static_cast<std::int64_t>(r.total_events)),
         Cell(static_cast<std::int64_t>(r.completed)),
         Cell(kernel_ref_events / static_cast<double>(r.total_events), 2),
         Cell(r.wall_s, 2)});
  }
  kernel_table.Print(std::cout);
  std::printf(
      "\nThe differential suite (ctest -L differential) pins both engines "
      "to\nbyte-equal kernel, NVML and token traces on runs like this one; "
      "the\nreduction is the event economy that equivalence buys.\n");

  JsonValue report = bench::MakeReport("engine");
  for (const PatternResult& r : results) {
    JsonValue row = JsonValue::Object();
    row.Set("pattern", r.name);
    row.Set("engine", "baseline");
    row.Set("events_per_sec", r.baseline_eps);
    bench::AddRow(report, std::move(row));
    JsonValue row2 = JsonValue::Object();
    row2.Set("pattern", r.name);
    row2.Set("engine", "current");
    row2.Set("events_per_sec", r.current_eps);
    row2.Set("speedup_vs_baseline", r.ratio());
    bench::AddRow(report, std::move(row2));
  }
  JsonValue summary = JsonValue::Object();
  summary.Set("pattern", "geomean");
  summary.Set("engine", "summary");
  summary.Set("speedup_vs_baseline", geomean);
  bench::AddRow(report, std::move(summary));
  for (const TokenClusterResult& r : token_rows) {
    JsonValue row = JsonValue::Object();
    row.Set("pattern", "token-cluster");
    row.Set("engine", r.mode);
    row.Set("total_events", r.total_events);
    row.Set("grants", r.grants);
    row.Set("events_reduction_vs_reference",
            ref_events / static_cast<double>(r.total_events));
    row.Set("events_per_sec", r.events_per_sec);
    bench::AddRow(report, std::move(row));
  }
  for (const KernelClusterResult& r : kernel_rows) {
    JsonValue row = JsonValue::Object();
    row.Set("pattern", "kernel-cluster");
    row.Set("engine", r.mode);
    row.Set("total_events", r.total_events);
    row.Set("completed", r.completed);
    row.Set("events_reduction_vs_reference",
            kernel_ref_events / static_cast<double>(r.total_events));
    bench::AddRow(report, std::move(row));
  }
  const std::string path = bench::WriteReport(report);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
