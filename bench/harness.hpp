#pragma once

#include <functional>
#include <string>

#include "k8s/cluster.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/recovery.hpp"
#include "metrics/sampler.hpp"
#include "workload/generator.hpp"
#include "workload/host.hpp"

namespace ks::bench {

/// One cluster-scale experiment run: a generated inference workload pushed
/// through either native Kubernetes or KubeShare, on a fresh simulated
/// cluster. Returns the paper's headline quantities.
struct RunOptions {
  k8s::ClusterConfig cluster;
  workload::WorkloadConfig workload;
  bool use_kubeshare = true;
  kubeshare::KubeShareConfig kubeshare;
  /// Safety horizon: the run aborts (and reports what completed) if the
  /// simulation passes this point.
  Duration horizon = Minutes(240);
  /// Invoked after the cluster (and KubeShare, when enabled) has started,
  /// before the run loop — the chaos benches use it to arm a FaultInjector
  /// against the live cluster. The kubeshare pointer is null in native
  /// mode.
  std::function<void(k8s::Cluster&, kubeshare::KubeShare*)> on_start;
};

struct RunResult {
  std::size_t completed = 0;
  std::size_t failed = 0;
  Duration makespan{0};
  double jobs_per_minute = 0.0;
  /// Mean of "average utilization across active GPUs" samples (Fig 9's
  /// y-axis) over the busy part of the run.
  double avg_active_utilization = 0.0;
  /// Mean number of GPUs held (vGPU pool size for KubeShare; GPUs with
  /// bound jobs for native).
  double mean_gpus_held = 0.0;
  double peak_gpus_held = 0.0;
  /// Fault-recovery counters accumulated over the run.
  metrics::RecoveryMetrics recovery;
  /// Jobs whose container was relaunched after an infrastructure kill.
  std::size_t job_restarts = 0;
  /// Engine events scheduled over the whole run (Simulation::
  /// lifetime_events()) — the quantity the timer-wheel token renewals and
  /// the shared sampler tick exist to shrink. Deterministic for a given
  /// configuration, so reports can compare it across timer modes.
  std::uint64_t total_events = 0;
};

RunResult RunWorkload(const RunOptions& options);

/// Prints the standard benchmark banner.
void Banner(const std::string& title, const std::string& paper_ref);

}  // namespace ks::bench
