#include "harness.hpp"

#include <algorithm>
#include <cstdio>

#include "k8s/resources.hpp"

namespace ks::bench {

void Banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s — KubeShare (HPDC'20)\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

RunResult RunWorkload(const RunOptions& options) {
  k8s::Cluster cluster(options.cluster);
  std::unique_ptr<kubeshare::KubeShare> kubeshare;
  if (options.use_kubeshare) {
    kubeshare = std::make_unique<kubeshare::KubeShare>(&cluster,
                                                       options.kubeshare);
  }
  workload::WorkloadHost host(&cluster);
  workload::WorkloadDriver driver(
      &cluster, &host,
      options.use_kubeshare ? workload::WorkloadDriver::Mode::kKubeShare
                            : workload::WorkloadDriver::Mode::kNative,
      kubeshare.get(), options.workload);

  if (!cluster.Start().ok()) return {};
  if (kubeshare != nullptr && !kubeshare->Start().ok()) return {};

  // GPUs-held probe: vGPU pool size under KubeShare; GPU-consuming bound
  // pods under native Kubernetes. Rides the cluster's shared sampler tick
  // (with the NVML poll) when one is configured; push mode otherwise.
  auto held_probe = [&]() -> double {
    if (kubeshare != nullptr) {
      return static_cast<double>(kubeshare->pool().size());
    }
    double held = 0;
    for (const k8s::Pod& p : cluster.api().pods().List()) {
      if (p.terminal() || !p.scheduled()) continue;
      held += static_cast<double>(
          p.spec.requests.Get(k8s::kResourceNvidiaGpu));
    }
    return held;
  };
  std::unique_ptr<metrics::PeriodicSampler> gpus_held;
  if (cluster.tick_hub() != nullptr) {
    gpus_held = std::make_unique<metrics::PeriodicSampler>(
        cluster.tick_hub(), Seconds(1), held_probe);
  } else {
    gpus_held = std::make_unique<metrics::PeriodicSampler>(
        &cluster.sim(), Seconds(1), held_probe);
  }
  gpus_held->Start();
  cluster.nvml().Start();

  if (options.on_start) options.on_start(cluster, kubeshare.get());

  driver.Start();
  // Run in slices until the workload drains or the horizon passes.
  const Duration slice = Seconds(10);
  Time deadline = cluster.sim().Now() + options.horizon;
  while (!driver.AllDone() && cluster.sim().Now() < deadline) {
    cluster.sim().RunUntil(cluster.sim().Now() + slice);
  }
  gpus_held->Stop();
  cluster.nvml().Stop();

  RunResult result;
  result.completed = host.completed();
  result.failed = host.failed();
  result.makespan = driver.Makespan();
  result.jobs_per_minute = driver.JobsPerMinute();
  result.mean_gpus_held = gpus_held->MeanValue();
  result.peak_gpus_held = gpus_held->MaxValue();
  result.recovery = metrics::CollectRecoveryMetrics(cluster, kubeshare.get());
  result.job_restarts = host.restarts();
  result.total_events = cluster.sim().lifetime_events();

  // Average utilization across active GPUs, averaged over the samples in
  // which at least one GPU was active (incremental "ever active" scan).
  std::vector<const std::vector<gpu::NvmlSample>*> series;
  std::size_t samples = 0;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    for (const auto& dev : cluster.node(n).gpus) {
      series.push_back(&cluster.nvml().SamplesFor(dev->uuid()));
      samples = std::max(samples, series.back()->size());
    }
  }
  std::vector<bool> ever_active(series.size(), false);
  double util_total = 0.0;
  std::size_t util_samples = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    double total = 0.0;
    int active = 0;
    for (std::size_t d = 0; d < series.size(); ++d) {
      if (i >= series[d]->size()) continue;
      const double u = (*series[d])[i].gpu_util;
      if (u > 0.0) ever_active[d] = true;
      if (ever_active[d]) {
        total += u;
        ++active;
      }
    }
    if (active > 0) {
      util_total += total / active;
      ++util_samples;
    }
  }
  if (util_samples > 0) {
    result.avg_active_utilization = util_total / util_samples;
  }
  return result;
}

}  // namespace ks::bench
