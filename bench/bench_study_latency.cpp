// Extension study: inference tail latency under GPU sharing vs token quota.
//
// The paper evaluates GPU sharing by throughput (Figs 8/9) and job-level
// slowdown (Fig 12); this study measures what sharing does to a *request*:
// an inference service (demand 0.3) shares one GPU with a continuously
// busy training job, and a request that arrives while the trainer holds
// the token waits out the remaining quota before its kernel can run. The
// p99 latency therefore grows roughly linearly with the quota — the other
// side of the Fig 7 tradeoff (larger quota = less exchange overhead but
// worse service tails).

#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "sweep.hpp"
#include "workload/host.hpp"

namespace {

using namespace ks;

struct LatencyResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool ok = false;
};

/// Runs the service (with or without a co-located trainer) for a fixed
/// horizon and samples the live job's request latencies.
LatencyResult RunSampled(Duration quota, bool with_trainer) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 1;
  ccfg.gpus_per_node = 1;
  ccfg.backend.quota = quota;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  (void)cluster.Start();
  (void)kubeshare.Start();

  workload::InferenceSpec service =
      workload::InferenceSpec::ForDemand(0.3, 1'000'000, Millis(20));
  service.seed = 12;
  host.ExpectJob("service", [service] {
    return std::make_unique<workload::InferenceJob>(service);
  });
  kubeshare::SharePod svc;
  svc.meta.name = "service";
  svc.spec.gpu.gpu_request = 0.35;
  svc.spec.gpu.gpu_limit = 0.9;
  svc.spec.gpu.gpu_mem = 0.2;
  (void)kubeshare.CreateSharePod(svc);

  if (with_trainer) {
    workload::TrainingSpec train;
    train.steps = 1'000'000;
    train.step_kernel = Millis(10);
    host.ExpectJob("trainer", [train] {
      return std::make_unique<workload::TrainingJob>(train);
    });
    kubeshare::SharePod sp;
    sp.meta.name = "trainer";
    sp.spec.gpu.gpu_request = 0.5;
    sp.spec.gpu.gpu_limit = 0.9;
    sp.spec.gpu.gpu_mem = 0.2;
    (void)kubeshare.CreateSharePod(sp);
  }

  cluster.sim().RunUntil(Minutes(3));
  LatencyResult out;
  auto* job = dynamic_cast<workload::InferenceJob*>(host.RunningJob("service"));
  if (job == nullptr || job->request_latencies().empty()) return out;
  std::vector<double> ms;
  ms.reserve(job->request_latencies().size());
  for (const Duration d : job->request_latencies()) ms.push_back(ToMillis(d));
  out.p50_ms = Percentile(ms, 50);
  out.p99_ms = Percentile(ms, 99);
  out.ok = true;
  return out;
}

}  // namespace

int main() {
  bench::Banner(
      "bench_study_latency: inference tail latency vs token quota",
      "extension study (the latency side of the Fig 7 tradeoff)");

  Table table({"quota (ms)", "solo p50/p99 (ms)", "shared p50 (ms)",
               "shared p99 (ms)"});
  // Each point builds its own cluster, so the sweep pool can run them
  // concurrently; results print in point order (byte-identical to serial).
  const std::vector<int> quotas_ms = {25, 50, 100, 200};
  struct Point {
    LatencyResult solo;
    LatencyResult shared;
  };
  const std::vector<Point> results = bench::RunSweep<Point>(
      quotas_ms.size(), [&quotas_ms](std::size_t i) {
        return Point{RunSampled(Millis(quotas_ms[i]), false),
                     RunSampled(Millis(quotas_ms[i]), true)};
      });
  for (std::size_t i = 0; i < quotas_ms.size(); ++i) {
    const Point& p = results[i];
    table.AddRow({Cell(static_cast<std::int64_t>(quotas_ms[i])),
                  Cell(p.solo.p50_ms, 1) + " / " + Cell(p.solo.p99_ms, 1),
                  Cell(p.shared.p50_ms, 1), Cell(p.shared.p99_ms, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: solo latency ~= the 20 ms kernel regardless of "
               "quota; under\nsharing the p99 tracks the quota (a request "
               "arriving mid-slice waits for\nthe trainer's token to "
               "expire) — the service-latency cost that bounds how\nlarge "
               "a quota a latency-sensitive deployment can pick.\n";
  return 0;
}
