#pragma once

#include <string>

#include "common/json.hpp"
#include "harness.hpp"

namespace ks::bench {

/// Machine-readable benchmark reports: BENCH_<study>.json.
///
/// Schema "ks-bench/1" (checked by scripts/check_bench_json.py in CI):
///   {
///     "schema": "ks-bench/1",
///     "study": "<name>",            // e.g. "study_chaos"
///     "rows": [ { <flat key/value point> }, ... ]
///   }
/// Row values are strings, numbers or booleans — one row per sweep point,
/// in sweep order. Absolute numbers are environment-dependent; only the
/// shape is contractual.

/// Starts a report for `study`. Add rows, then call Write().
JsonValue MakeReport(const std::string& study);

/// Appends one sweep-point row (an object built by the caller).
void AddRow(JsonValue& report, JsonValue row);

/// Flattens the harness RunResult into `row` under conventional keys.
void FillRunResult(JsonValue& row, const RunResult& result);

/// Writes the report to <dir>/BENCH_<study>.json where <dir> is
/// KS_BENCH_JSON_DIR (default "."). Returns the path written. The file is
/// byte-deterministic for identical results — CI relies on comparing a
/// serial and a parallel sweep's files.
std::string WriteReport(const JsonValue& report);

}  // namespace ks::bench
