// SLO-driven inference serving study (ROADMAP item 4): batched arrival
// streams, streaming latency digests, daemon-side admission control and
// the metrics-driven horizontal autoscaler, measured together.
//
// Part 1 — serving rows: one SLO-bound service (10 ms/request replicas,
// p99 target 250 ms) is driven through three traffic patterns (steady,
// diurnal, flash crowd) in two provisioning modes:
//   static  two replicas, no admission control — yesterday's capacity
//           planning;
//   auto    the SloAutoscaler scales 1..8 replicas on observed p99
//           headroom while the token daemon sheds at the door once p99
//           crosses 90% of the SLO.
// The gate (scripts/check_bench_json.py, BENCH_serving.json): on the
// flash crowd, auto's SLO-violation rate (violations + shed + lost over
// arrivals) beats static's.
//
// Part 2 — arrival rows: the load generator alone on a bare engine, at
// 0.1 rps per simulated client, swept to one million clients. Per-request
// generation costs one engine event per arrival; the batched stream costs
// one per non-empty 10 ms window. The gate: >= 5x fewer events at the
// million-client point (the measured gap is orders of magnitude).

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness.hpp"
#include "json_report.hpp"
#include "k8s/cluster.hpp"
#include "kubeshare/autoscaler.hpp"
#include "kubeshare/kubeshare.hpp"
#include "kubeshare/replicaset.hpp"
#include "serving/arrivals.hpp"
#include "serving/service.hpp"
#include "workload/host.hpp"

namespace {

using namespace ks;

const Time kArrivalsStop = Seconds(60.0);
const Time kHorizon = Seconds(240.0);
constexpr double kRpsPerClient = 0.1;

struct Pattern {
  const char* name;
  serving::RateEnvelope envelope;
  double peak_hz;
};

std::vector<Pattern> Patterns() {
  return {
      {"steady", serving::RateEnvelope::Steady(60.0), 60.0},
      {"diurnal",
       serving::RateEnvelope::Diurnal(40.0, 140.0, Seconds(40.0)), 140.0},
      {"flash-crowd",
       serving::RateEnvelope::FlashCrowd(50.0, 300.0, Seconds(20.0),
                                         Seconds(2.0), Seconds(25.0)),
       300.0},
  };
}

struct ServingResult {
  std::uint64_t arrived = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t lost = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double violation_rate = 0.0;
  int replicas_peak = 0;
  std::uint64_t total_events = 0;
};

ServingResult RunServing(const Pattern& pattern, bool autoscale) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 2;
  ccfg.gpus_per_node = 2;
  if (autoscale) {
    ccfg.backend.admission.enabled = true;
    ccfg.backend.admission.policy = vgpu::AdmissionConfig::Policy::kShed;
  }
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  (void)cluster.Start();
  (void)kubeshare.Start();

  serving::ServiceConfig cfg;
  cfg.name = "svc";
  cfg.envelope = pattern.envelope;
  cfg.clients =
      static_cast<std::uint64_t>(pattern.peak_hz / kRpsPerClient);
  cfg.slo_p99 = Millis(250);
  cfg.batch_window = Millis(10);
  cfg.until = kArrivalsStop;
  cfg.seed = 7;
  cfg.replica.kernel_per_request = Millis(10);
  cfg.replica.model_bytes = 256ull << 20;
  serving::ServiceFrontend frontend(&cluster, &host, cfg);

  kubeshare::SharePodReplicaSet::Spec spec;
  spec.name = "svc";
  spec.replicas = 2;
  spec.template_spec.gpu.gpu_request = 0.45;
  spec.template_spec.gpu.gpu_limit = 1.0;
  spec.template_spec.gpu.gpu_mem = 0.15;
  kubeshare::SharePodReplicaSet rs(&kubeshare, spec);
  rs.SetReplicaHook(frontend.MakeReplicaHook());
  (void)rs.Start();

  std::unique_ptr<kubeshare::SloAutoscaler> scaler;
  if (autoscale) {
    kubeshare::AutoscalerConfig acfg;
    acfg.slo_p99 = cfg.slo_p99;
    acfg.min_replicas = 1;
    acfg.max_replicas = 8;
    scaler = std::make_unique<kubeshare::SloAutoscaler>(
        &cluster.sim(), cluster.tick_hub(), &rs, acfg,
        frontend.MakeAutoscalerProbe());
    (void)scaler->Start();
  }
  frontend.Start();

  ServingResult r;
  const Duration slice = Seconds(1.0);
  while (cluster.sim().Now() < kHorizon) {
    cluster.sim().RunUntil(cluster.sim().Now() + slice);
    r.replicas_peak = std::max(r.replicas_peak, rs.desired());
    if (cluster.sim().Now() > kArrivalsStop && frontend.Drained()) break;
  }

  const metrics::ServiceSloSample s = frontend.Sample();
  r.arrived = s.arrived;
  r.served = s.served;
  r.shed = s.shed;
  r.lost = s.lost;
  r.p50_ms = s.p50_s * 1e3;
  r.p99_ms = s.p99_s * 1e3;
  r.p999_ms = s.p999_s * 1e3;
  r.violation_rate = s.violation_rate;
  r.total_events = cluster.sim().lifetime_events();
  return r;
}

struct ArrivalResult {
  std::uint64_t arrivals = 0;
  std::uint64_t engine_events = 0;
  double events_per_request = 0.0;
  std::uint64_t total_events = 0;
};

ArrivalResult RunArrivalScaling(std::uint64_t clients, bool batched) {
  const serving::RateEnvelope env =
      serving::RateEnvelope::Steady(static_cast<double>(clients) *
                                    kRpsPerClient);
  const Time until = Seconds(10.0);
  sim::Simulation sim;
  ArrivalResult r;
  if (batched) {
    serving::BatchedArrivalStream gen(
        &sim, env, /*seed=*/3, until, Millis(10),
        [](const std::vector<Time>&) {});
    gen.Start();
    sim.RunUntil(Seconds(20.0));
    r.arrivals = gen.arrivals();
    r.engine_events = gen.engine_events();
  } else {
    serving::ReferenceArrivalProcess gen(&sim, env, /*seed=*/3, until,
                                         [](Time) {});
    gen.Start();
    sim.RunUntil(Seconds(20.0));
    r.arrivals = gen.arrivals();
    r.engine_events = gen.engine_events();
  }
  r.events_per_request =
      r.arrivals == 0 ? 0.0
                      : static_cast<double>(r.engine_events) /
                            static_cast<double>(r.arrivals);
  r.total_events = sim.lifetime_events();
  return r;
}

}  // namespace

int main() {
  bench::Banner(
      "bench_study_serving: SLO serving at internet scale",
      "batched arrivals + latency digests + admission + autoscaler "
      "(ROADMAP item 4)");

  std::cout << "\n2 nodes x 2 GPUs, 10 ms/request replicas, p99 SLO 250 ms. "
               "\"static\" holds 2\nreplicas; \"auto\" scales 1..8 on "
               "observed p99 headroom and sheds at the\ndoor past 90% of "
               "the SLO. Arrivals stop at 60 s; runs drain.\n\n";

  Table table({"pattern", "mode", "arrived", "served", "shed", "lost",
               "p50 (ms)", "p99 (ms)", "p99.9 (ms)", "viol rate",
               "replicas pk"});
  JsonValue report = bench::MakeReport("serving");
  for (const Pattern& pattern : Patterns()) {
    for (const bool autoscale : {false, true}) {
      const ServingResult r = RunServing(pattern, autoscale);
      const char* mode = autoscale ? "auto" : "static";
      table.AddRow({pattern.name, mode,
                    Cell(static_cast<std::int64_t>(r.arrived)),
                    Cell(static_cast<std::int64_t>(r.served)),
                    Cell(static_cast<std::int64_t>(r.shed)),
                    Cell(static_cast<std::int64_t>(r.lost)),
                    Cell(r.p50_ms, 1), Cell(r.p99_ms, 1),
                    Cell(r.p999_ms, 1), Cell(r.violation_rate, 4),
                    Cell(static_cast<std::int64_t>(r.replicas_peak))});
      JsonValue row = JsonValue::Object();
      row.Set("pattern", std::string(pattern.name));
      row.Set("mode", std::string(mode));
      row.Set("slo_ms", 250.0);
      row.Set("clients", static_cast<std::int64_t>(
                             pattern.peak_hz / kRpsPerClient));
      row.Set("arrived", static_cast<std::int64_t>(r.arrived));
      row.Set("served", static_cast<std::int64_t>(r.served));
      row.Set("shed", static_cast<std::int64_t>(r.shed));
      row.Set("lost", static_cast<std::int64_t>(r.lost));
      row.Set("p50_ms", r.p50_ms);
      row.Set("p99_ms", r.p99_ms);
      row.Set("p999_ms", r.p999_ms);
      row.Set("slo_violation_rate", r.violation_rate);
      row.Set("replicas_peak", static_cast<std::int64_t>(r.replicas_peak));
      row.Set("total_events", static_cast<std::int64_t>(r.total_events));
      bench::AddRow(report, std::move(row));
    }
  }
  table.Print(std::cout);

  std::cout << "\nArrival-stream scaling: 0.1 rps per client for 10 s on a "
               "bare engine.\nPer-request generation costs one event per "
               "arrival; batching costs one\nper non-empty 10 ms window "
               "regardless of client count.\n\n";

  Table scaling({"clients", "mode", "arrivals", "engine events",
                 "events/request"});
  for (const std::uint64_t clients :
       {1000ull, 10000ull, 100000ull, 1000000ull}) {
    for (const bool batched : {false, true}) {
      const ArrivalResult r = RunArrivalScaling(clients, batched);
      const char* mode = batched ? "batched" : "per-request";
      scaling.AddRow({Cell(static_cast<std::int64_t>(clients)), mode,
                      Cell(static_cast<std::int64_t>(r.arrivals)),
                      Cell(static_cast<std::int64_t>(r.engine_events)),
                      Cell(r.events_per_request, 5)});
      JsonValue row = JsonValue::Object();
      row.Set("pattern", std::string("arrivals"));
      row.Set("mode", std::string(mode));
      row.Set("clients", static_cast<std::int64_t>(clients));
      row.Set("arrivals", static_cast<std::int64_t>(r.arrivals));
      row.Set("engine_events",
              static_cast<std::int64_t>(r.engine_events));
      row.Set("events_per_request", r.events_per_request);
      row.Set("total_events", static_cast<std::int64_t>(r.total_events));
      bench::AddRow(report, std::move(row));
    }
  }
  scaling.Print(std::cout);

  std::cout << "\nExpected shape: static provisioning rides out steady and "
               "diurnal but\nmelts on the flash crowd (p99 explodes, "
               "violation rate spikes); auto\nabsorbs it by scaling toward 8 "
               "replicas and shedding the residual. The\nbatched generator's "
               "events/request collapses toward zero as clients\ngrow "
               "(gate: >= 5x fewer events than per-request at 1M "
               "clients).\n";
  std::cout << "\nwrote " << bench::WriteReport(report) << "\n";
  return 0;
}
