// Ablation (DESIGN.md): the sliding-window length of the usage tracker.
//
// Fig 6 notes that "the GPU usage of a job slightly fluctuates at its
// requested demand" and ties the fluctuation to the time quota; the other
// parameter in that trade is the usage window the backend measures over.
// A short window reacts fast but wobbles (each quota is a big fraction of
// it); a long window is smooth but slow to redistribute capacity when a
// job leaves. Both effects are measured here with the Fig 6 regime
// (A req .3/lim .6 alone, then +B req .4/lim .6).
//
// The second sweep covers the backend's *other* window: the timer wheel's
// coalesce_window, which rounds every token deadline up to the window so
// same-window timers share one engine event. Coarser = fewer events, but
// expiries fire late (up to one window), which shows up as fewer grants
// over a fixed horizon and as measured expiry lag.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "cuda/context.hpp"
#include "harness.hpp"
#include "vgpu/frontend_hook.hpp"
#include "vgpu/token_backend_reference.hpp"
#include "workload/job.hpp"

namespace {

using namespace ks;

struct WindowResult {
  double yield_s = -1.0;   // time for the incumbent to yield to an arrival
  double settle_s = -1.0;  // time for the survivor to re-absorb a departure
};

WindowResult Run(Duration window) {
  sim::Simulation sim;
  gpu::GpuDevice dev(&sim, GpuUuid("GPU-0"));
  vgpu::BackendConfig cfg;
  cfg.usage_window = window;
  vgpu::TokenBackend backend(&sim, cfg);

  auto make_spec = [](double request, double limit) {
    vgpu::ResourceSpec s;
    s.gpu_request = request;
    s.gpu_limit = limit;
    return s;
  };
  cuda::CudaContext ctx_a(&dev, ContainerId("A"));
  vgpu::FrontendHook hook_a(&ctx_a, &backend, ContainerId("A"), dev.uuid(),
                            make_spec(0.3, 0.6), dev.spec().memory_bytes);
  workload::TrainingSpec train;
  train.steps = 1'000'000;
  train.step_kernel = Millis(10);
  workload::TrainingJob job_a(train);
  job_a.Start(&hook_a, &sim, nullptr);

  // Phase 1: A alone, throttled at its 0.6 limit.
  sim.RunUntil(Seconds(180));

  // Phase 2: B joins. A new arrival's guarantee engages almost instantly
  // (its early-ramp usage counts only its observed lifetime), but the
  // *incumbent* only yields as its window slides: measure the time until
  // A's measured usage drops to 0.52 on its way to the 0.5 split. Then B
  // leaves; measure how fast A re-absorbs (back to 0.575).
  WindowResult out;
  {
    cuda::CudaContext ctx_b(&dev, ContainerId("B"));
    vgpu::FrontendHook hook_b(&ctx_b, &backend, ContainerId("B"), dev.uuid(),
                              make_spec(0.4, 0.6), dev.spec().memory_bytes);
    workload::TrainingJob job_b(train);
    job_b.Start(&hook_b, &sim, nullptr);
    const Time arrival = sim.Now();
    for (int ms = 100; ms <= 120'000; ms += 100) {
      sim.RunUntil(arrival + Millis(ms));
      if (backend.UsageOf(ContainerId("A")) <= 0.52) {
        out.yield_s = ToSeconds(Millis(ms));
        break;
      }
    }
    sim.RunUntil(Seconds(300));  // settle at 0.5/0.5
    job_b.Stop();
  }  // B's hook unregisters here
  const Time departure = sim.Now();
  // A sits at ~0.5 when B leaves; time until it has re-absorbed 3/4 of the
  // freed capacity (usage 0.575 on the way back to its 0.6 limit).
  for (int ms = 100; ms <= 120'000; ms += 100) {
    sim.RunUntil(departure + Millis(ms));
    if (backend.UsageOf(ContainerId("A")) >= 0.575) {
      out.settle_s = ToSeconds(Millis(ms));
      break;
    }
  }
  job_a.Stop();
  return out;
}

// ---------------------------------------------------------------------------
// coalesce_window sweep: grant throughput and expiry precision.

struct GreedyClient : vgpu::TokenClient {
  vgpu::TokenBackendApi* backend = nullptr;
  ContainerId id{""};
  void OnTokenGranted(Time) override {}
  void OnTokenExpired() override {
    (void)backend->ReleaseToken(id);
    (void)backend->RequestToken(id);
  }
};

struct CoalesceResult {
  std::uint64_t total_events = 0;
  std::uint64_t grants = 0;
  double mean_lag_us = 0.0;
  double max_lag_us = 0.0;
};

/// 8 devices x 3 greedy containers exchanging 100 ms tokens for 30 s.
/// Expiry lag = actual "expire" transition minus the expiry promised at
/// grant time. The wheel rounds the deadline up to the window *before*
/// promising it, so lag stays zero at every window; the rounding instead
/// stretches each grant's effective quota, visible as fewer grants over
/// the fixed horizon.
CoalesceResult RunCoalesce(bool reference, Duration window) {
  sim::Simulation sim;
  vgpu::BackendConfig cfg;
  cfg.coalesce_window = window;
  std::unique_ptr<vgpu::TokenBackendApi> backend;
  if (reference) {
    backend = std::make_unique<vgpu::TokenBackendReference>(&sim, cfg);
  } else {
    backend = std::make_unique<vgpu::TokenBackend>(&sim, cfg);
  }

  std::map<std::string, Time> promised;
  RunningStats lag_us;
  double max_lag = 0.0;
  backend->SetGrantTraceFn([&](const char* what, const ContainerId& container,
                               Time when) {
    if (std::string_view(what) == "grant") {
      promised[container.value()] = when;
    } else if (std::string_view(what) == "expire") {
      const auto it = promised.find(container.value());
      if (it == promised.end()) return;
      const double lag = static_cast<double>((when - it->second).count());
      lag_us.Add(lag);
      max_lag = std::max(max_lag, lag);
    }
  });

  const int kDevices = 8;
  const int kContainersPerDevice = 3;
  std::vector<GpuUuid> gpus;
  for (int d = 0; d < kDevices; ++d) {
    gpus.emplace_back("GPU-CW-" + std::to_string(d));
    backend->RegisterDevice(gpus.back());
  }
  std::vector<std::unique_ptr<GreedyClient>> clients;
  for (int c = 0; c < kDevices * kContainersPerDevice; ++c) {
    auto client = std::make_unique<GreedyClient>();
    client->backend = backend.get();
    client->id = ContainerId("cw" + std::to_string(c));
    vgpu::ResourceSpec spec;
    spec.gpu_request = 0.3;
    spec.gpu_limit = 1.0;
    if (!backend
             ->RegisterContainer(client->id,
                                 gpus[static_cast<std::size_t>(c % kDevices)],
                                 spec, client.get())
             .ok()) {
      continue;
    }
    // Staggered arrivals so deadlines are not aligned by construction.
    sim.ScheduleAt(Millis(c), [&backend, id = client->id] {
      (void)backend->RequestToken(id);
    });
    clients.push_back(std::move(client));
  }
  sim.RunUntil(Seconds(30));

  CoalesceResult out;
  out.total_events = sim.lifetime_events();
  out.grants = backend->grants();
  out.mean_lag_us = lag_us.count() > 0 ? lag_us.mean() : 0.0;
  out.max_lag_us = max_lag;
  return out;
}

}  // namespace

int main() {
  bench::Banner(
      "bench_ablation_window: usage sliding-window length",
      "DESIGN.md ablation (Fig 6 fluctuation / responsiveness trade)");

  Table table({"window (s)", "incumbent yield time (s)",
               "re-absorb after departure (s)"});
  for (const double window_s : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    const WindowResult r = Run(Seconds(window_s));
    table.AddRow({Cell(window_s, 0),
                  r.yield_s < 0 ? "n/a" : Cell(r.yield_s, 1),
                  r.settle_s < 0 ? "n/a" : Cell(r.settle_s, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: both transients scale with the window — the "
               "backend compares\nusage measured over the trailing window "
               "against request/limit, so a job's\nmeasured share only "
               "moves as fast as the window slides. Short windows\nreact "
               "in fractions of a second; a 40 s window takes many seconds "
               "to\nrebalance. The Fig 6 regimes assume a window well "
               "below the 200 s phase\nlength; ~10 s satisfies that with "
               "smooth-enough accounting.\n";

  std::cout << "\ncoalesce_window sweep: 8 devices x 3 greedy containers, "
               "100 ms tokens,\n30 s horizon. Events = everything the "
               "engine scheduled; lag = actual\nexpiry minus the expiry "
               "promised at grant time.\n\n";
  Table cw({"coalesce window", "total events", "grants", "mean lag (us)",
            "max lag (us)"});
  const CoalesceResult ref = RunCoalesce(true, Micros(500));
  cw.AddRow({std::string("reference"),
             Cell(static_cast<std::int64_t>(ref.total_events)),
             Cell(static_cast<std::int64_t>(ref.grants)),
             Cell(ref.mean_lag_us, 1), Cell(ref.max_lag_us, 1)});
  struct WindowPoint {
    const char* label;
    Duration window;
  };
  const WindowPoint points[] = {
      {"100 us", Micros(100)}, {"500 us (default)", Micros(500)},
      {"1 ms", Millis(1)},     {"5 ms", Millis(5)},
      {"20 ms", Millis(20)},
  };
  for (const WindowPoint& p : points) {
    const CoalesceResult r = RunCoalesce(false, p.window);
    cw.AddRow({std::string(p.label),
               Cell(static_cast<std::int64_t>(r.total_events)),
               Cell(static_cast<std::int64_t>(r.grants)),
               Cell(r.mean_lag_us, 1), Cell(r.max_lag_us, 1)});
  }
  cw.Print(std::cout);
  std::cout << "\nThe trade (recorded in docs/performance.md): windows that "
               "divide every\ndaemon duration (<= 500 us) match the "
               "reference grant count exactly;\ncoarser windows shed engine "
               "events roughly linearly but round each\ndeadline up, "
               "stretching every grant's effective quota by up to one\n"
               "window — fewer grants over a fixed horizon and longer waits "
               "for the\nnext holder (the quota side of bench_study_latency)."
               " Promises are\nalways kept (lag 0: the rounded deadline is "
               "what gets promised).\n500 us stays the default: it is exact, "
               "and since the fused device\nengine removed the kernel-event "
               "bulk, token events no longer dominate\nfull runs — "
               "precision is worth more than the residual saving. 5 ms "
               "is\nthe documented knob for token-dense deployments.\n";
  return 0;
}
