// Ablation (DESIGN.md): the sliding-window length of the usage tracker.
//
// Fig 6 notes that "the GPU usage of a job slightly fluctuates at its
// requested demand" and ties the fluctuation to the time quota; the other
// parameter in that trade is the usage window the backend measures over.
// A short window reacts fast but wobbles (each quota is a big fraction of
// it); a long window is smooth but slow to redistribute capacity when a
// job leaves. Both effects are measured here with the Fig 6 regime
// (A req .3/lim .6 alone, then +B req .4/lim .6).

#include <cmath>
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "cuda/context.hpp"
#include "harness.hpp"
#include "vgpu/frontend_hook.hpp"
#include "workload/job.hpp"

namespace {

using namespace ks;

struct WindowResult {
  double yield_s = -1.0;   // time for the incumbent to yield to an arrival
  double settle_s = -1.0;  // time for the survivor to re-absorb a departure
};

WindowResult Run(Duration window) {
  sim::Simulation sim;
  gpu::GpuDevice dev(&sim, GpuUuid("GPU-0"));
  vgpu::BackendConfig cfg;
  cfg.usage_window = window;
  vgpu::TokenBackend backend(&sim, cfg);

  auto make_spec = [](double request, double limit) {
    vgpu::ResourceSpec s;
    s.gpu_request = request;
    s.gpu_limit = limit;
    return s;
  };
  cuda::CudaContext ctx_a(&dev, ContainerId("A"));
  vgpu::FrontendHook hook_a(&ctx_a, &backend, ContainerId("A"), dev.uuid(),
                            make_spec(0.3, 0.6), dev.spec().memory_bytes);
  workload::TrainingSpec train;
  train.steps = 1'000'000;
  train.step_kernel = Millis(10);
  workload::TrainingJob job_a(train);
  job_a.Start(&hook_a, &sim, nullptr);

  // Phase 1: A alone, throttled at its 0.6 limit.
  sim.RunUntil(Seconds(180));

  // Phase 2: B joins. A new arrival's guarantee engages almost instantly
  // (its early-ramp usage counts only its observed lifetime), but the
  // *incumbent* only yields as its window slides: measure the time until
  // A's measured usage drops to 0.52 on its way to the 0.5 split. Then B
  // leaves; measure how fast A re-absorbs (back to 0.575).
  WindowResult out;
  {
    cuda::CudaContext ctx_b(&dev, ContainerId("B"));
    vgpu::FrontendHook hook_b(&ctx_b, &backend, ContainerId("B"), dev.uuid(),
                              make_spec(0.4, 0.6), dev.spec().memory_bytes);
    workload::TrainingJob job_b(train);
    job_b.Start(&hook_b, &sim, nullptr);
    const Time arrival = sim.Now();
    for (int ms = 100; ms <= 120'000; ms += 100) {
      sim.RunUntil(arrival + Millis(ms));
      if (backend.UsageOf(ContainerId("A")) <= 0.52) {
        out.yield_s = ToSeconds(Millis(ms));
        break;
      }
    }
    sim.RunUntil(Seconds(300));  // settle at 0.5/0.5
    job_b.Stop();
  }  // B's hook unregisters here
  const Time departure = sim.Now();
  // A sits at ~0.5 when B leaves; time until it has re-absorbed 3/4 of the
  // freed capacity (usage 0.575 on the way back to its 0.6 limit).
  for (int ms = 100; ms <= 120'000; ms += 100) {
    sim.RunUntil(departure + Millis(ms));
    if (backend.UsageOf(ContainerId("A")) >= 0.575) {
      out.settle_s = ToSeconds(Millis(ms));
      break;
    }
  }
  job_a.Stop();
  return out;
}

}  // namespace

int main() {
  bench::Banner(
      "bench_ablation_window: usage sliding-window length",
      "DESIGN.md ablation (Fig 6 fluctuation / responsiveness trade)");

  Table table({"window (s)", "incumbent yield time (s)",
               "re-absorb after departure (s)"});
  for (const double window_s : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    const WindowResult r = Run(Seconds(window_s));
    table.AddRow({Cell(window_s, 0),
                  r.yield_s < 0 ? "n/a" : Cell(r.yield_s, 1),
                  r.settle_s < 0 ? "n/a" : Cell(r.settle_s, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: both transients scale with the window — the "
               "backend compares\nusage measured over the trailing window "
               "against request/limit, so a job's\nmeasured share only "
               "moves as fast as the window slides. Short windows\nreact "
               "in fractions of a second; a 40 s window takes many seconds "
               "to\nrebalance. The Fig 6 regimes assume a window well "
               "below the 200 s phase\nlength; ~10 s satisfies that with "
               "smooth-enough accounting.\n";
  return 0;
}
