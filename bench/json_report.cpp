#include "json_report.hpp"

#include <cstdlib>
#include <fstream>

#include "common/log.hpp"
#include "common/time.hpp"

namespace ks::bench {

JsonValue MakeReport(const std::string& study) {
  JsonValue report = JsonValue::Object();
  report.Set("schema", "ks-bench/1");
  report.Set("study", study);
  report.Set("rows", JsonValue::Array());
  return report;
}

void AddRow(JsonValue& report, JsonValue row) {
  report.MutableField("rows").Push(std::move(row));
}

void FillRunResult(JsonValue& row, const RunResult& result) {
  row.Set("completed", result.completed);
  row.Set("failed", result.failed);
  row.Set("makespan_s", ToSeconds(result.makespan));
  row.Set("jobs_per_minute", result.jobs_per_minute);
  row.Set("avg_active_utilization", result.avg_active_utilization);
  row.Set("mean_gpus_held", result.mean_gpus_held);
  row.Set("peak_gpus_held", result.peak_gpus_held);
  row.Set("job_restarts", result.job_restarts);
  row.Set("pods_evicted", result.recovery.pods_evicted);
  row.Set("vgpus_reclaimed", result.recovery.vgpus_reclaimed);
  row.Set("sharepods_requeued", result.recovery.sharepods_requeued);
  row.Set("backend_restarts", result.recovery.backend_restarts);
  row.Set("total_events", result.total_events);
}

std::string WriteReport(const JsonValue& report) {
  const char* dir = std::getenv("KS_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
  if (path.back() != '/') path += '/';

  // Recover the study name for the file name.
  path += "BENCH_" + report.FieldAsString("study") + ".json";

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    KS_LOG(kError) << "cannot write benchmark report: " << path;
    return path;
  }
  out << report.DumpPretty();
  return path;
}

}  // namespace ks::bench
