#include "sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace ks::bench {

std::size_t SweepThreadCount(std::size_t points) {
  if (points <= 1) return 1;
  std::size_t threads = 0;
  if (const char* env = std::getenv("KS_BENCH_THREADS")) {
    threads = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    if (threads == 0) return 1;
  } else {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  return threads < points ? threads : points;
}

void RunSweep(std::size_t points,
              const std::function<void(std::size_t)>& fn) {
  const std::size_t threads = SweepThreadCount(points);
  if (threads <= 1) {
    for (std::size_t i = 0; i < points; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;  // lowest point index wins
  std::size_t first_error_point = points;

  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= points) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (i < first_error_point) {
          first_error_point = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ks::bench
