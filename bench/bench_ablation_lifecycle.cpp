// Ablation (paper §4.4): on-demand vs reservation vGPU lifecycle.
//
// "The decision of when to release an idle vGPU presents a tradeoff
// between performance overhead and resource utilization." A bursty
// arrival pattern (bursts separated by idle gaps) makes the tradeoff
// visible: on-demand releases the pool between bursts and pays the
// acquisition latency again; reservation keeps GPUs hostage but rebinds
// instantly.

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "metrics/sampler.hpp"
#include "workload/host.hpp"

namespace {

using namespace ks;

struct LifecycleResult {
  double mean_creation_s = 0.0;   // sharePod submit -> Running
  double mean_gpus_held = 0.0;
  std::uint64_t acquisitions = 0;
};

LifecycleResult RunBursty(kubeshare::PoolPolicy policy) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 2;
  ccfg.gpus_per_node = 4;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShareConfig kcfg;
  kcfg.pool_policy = policy;
  kubeshare::KubeShare kubeshare(&cluster, kcfg);
  workload::WorkloadHost host(&cluster);
  (void)cluster.Start();
  (void)kubeshare.Start();

  metrics::PeriodicSampler held(&cluster.sim(), Seconds(1), [&] {
    return static_cast<double>(kubeshare.pool().size());
  });
  held.Start();

  // 6 bursts of 8 jobs, 90 s apart; each job ~30 s. Between bursts the
  // pool drains completely.
  int job_index = 0;
  for (int burst = 0; burst < 6; ++burst) {
    cluster.sim().ScheduleAt(Seconds(burst * 90), [&, burst] {
      for (int j = 0; j < 8; ++j) {
        const std::string name =
            "b" + std::to_string(burst) + "-j" + std::to_string(j);
        workload::InferenceSpec spec =
            workload::InferenceSpec::ForDemand(0.4, 600, Millis(20));
        spec.seed = static_cast<std::uint64_t>(job_index++) + 1;
        host.ExpectJob(name, [spec] {
          return std::make_unique<workload::InferenceJob>(spec);
        });
        kubeshare::SharePod sp;
        sp.meta.name = name;
        sp.spec.gpu.gpu_request = 0.4;
        sp.spec.gpu.gpu_limit = 0.9;
        sp.spec.gpu.gpu_mem = 0.4;
        (void)kubeshare.CreateSharePod(sp);
      }
    });
  }
  cluster.sim().RunUntil(Minutes(15));
  held.Stop();

  LifecycleResult out;
  RunningStats creation;
  for (const kubeshare::SharePod& sp : kubeshare.sharepods().List()) {
    if (sp.status.running_time.has_value()) {
      creation.Add(ToSeconds(*sp.status.running_time - sp.meta.creation_time));
    }
  }
  out.mean_creation_s = creation.mean();
  out.mean_gpus_held = held.MeanValue();
  out.acquisitions = kubeshare.devmgr().vgpus_created();
  return out;
}

}  // namespace

int main() {
  bench::Banner("bench_ablation_lifecycle: on-demand vs reservation vGPUs",
                "paper §4.4 tradeoff");

  Table table({"policy", "mean sharePod creation (s)", "mean GPUs held",
               "vGPU acquisitions"});
  const LifecycleResult on_demand = RunBursty(kubeshare::PoolPolicy::kOnDemand);
  table.AddRow({"on-demand", Cell(on_demand.mean_creation_s, 2),
                Cell(on_demand.mean_gpus_held, 1),
                Cell(static_cast<std::int64_t>(on_demand.acquisitions))});
  const LifecycleResult reservation =
      RunBursty(kubeshare::PoolPolicy::kReservation);
  table.AddRow({"reservation", Cell(reservation.mean_creation_s, 2),
                Cell(reservation.mean_gpus_held, 1),
                Cell(static_cast<std::int64_t>(reservation.acquisitions))});
  const LifecycleResult hybrid = RunBursty(kubeshare::PoolPolicy::kHybrid);
  table.AddRow({"hybrid (reserve 2)", Cell(hybrid.mean_creation_s, 2),
                Cell(hybrid.mean_gpus_held, 1),
                Cell(static_cast<std::int64_t>(hybrid.acquisitions))});
  table.Print(std::cout);
  std::cout << "\nExpected: reservation re-binds bursts onto warm idle vGPUs "
               "(faster pod\ncreation, far fewer acquisitions) at the price "
               "of holding GPUs through\nthe idle gaps; on-demand frees them "
               "between bursts.\n";
  return 0;
}
