// Figure 6: "KubeShare ensures GPU isolation among containers according to
// their resource demands (gpu_request, gpu_limit)."
//
// Three TensorFlow-style training jobs share one GPU through the full
// KubeShare stack (sharePod -> Sched -> DevMgr -> device library):
//   Job A at t=0s    (gpu_request 0.3, gpu_limit 0.6)
//   Job B at t=200s  (gpu_request 0.4, gpu_limit 0.6)
//   Job C at t=400s  (gpu_request 0.3, gpu_limit 0.5), finishing ~660s.
//
// Expected regimes (paper §5.2):
//   [0,200):    A alone, throttled at its limit 0.6
//   [200,400):  A+B, elastic fair split 0.5 / 0.5
//   [400,660):  requests saturate (0.3+0.4+0.3=1.0): A=0.3, B=0.4, C=0.3
//               (note: the paper's figure labels read A=0.4/B=0.3; the
//               stated requests make B's guarantee 0.4 — see DESIGN.md)
//   [660,...):  C's residual redistributes: A and B back to 0.5 / 0.5.

#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"
#include "workload/host.hpp"

int main() {
  using namespace ks;
  bench::Banner("bench_fig6: per-container GPU isolation timeline",
                "Figure 6");

  k8s::ClusterConfig ccfg;
  ccfg.nodes = 1;
  ccfg.gpus_per_node = 1;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  if (!cluster.Start().ok() || !kubeshare.Start().ok()) return 1;

  struct JobDef {
    const char* name;
    double arrival_s;
    double request;
    double limit;
    int steps;  // large = runs past the sampling window
  };
  // C: ~260s at usage 0.3 -> 78s of kernels -> 7800 steps of 10ms.
  const JobDef jobs[] = {
      {"A", 0, 0.3, 0.6, 1'000'000},
      {"B", 200, 0.4, 0.6, 1'000'000},
      {"C", 400, 0.3, 0.5, 7'800},
  };

  for (const JobDef& j : jobs) {
    cluster.sim().ScheduleAt(Seconds(j.arrival_s), [&, j] {
      workload::TrainingSpec spec;
      spec.steps = j.steps;
      spec.step_kernel = Millis(10);
      spec.model_bytes = 2ull << 30;
      host.ExpectJob(j.name, [spec] {
        return std::make_unique<workload::TrainingJob>(spec);
      });
      kubeshare::SharePod sp;
      sp.meta.name = j.name;
      sp.spec.gpu.gpu_request = j.request;
      sp.spec.gpu.gpu_limit = j.limit;
      sp.spec.gpu.gpu_mem = 0.2;
      (void)kubeshare.CreateSharePod(sp);
    });
  }

  vgpu::TokenBackendApi* backend = cluster.node(0).token_backend.get();
  Table table({"time (s)", "A usage", "B usage", "C usage", "total"});
  auto usage_of = [&](const char* name) -> double {
    const vgpu::FrontendHook* hook = host.RunningHook(name);
    if (hook == nullptr) return 0.0;
    return backend->UsageOf(hook->container());
  };

  for (int t = 20; t <= 800; t += 20) {
    cluster.sim().RunUntil(Seconds(t));
    const double a = usage_of("A");
    const double b = usage_of("B");
    const double c = usage_of("C");
    table.AddRow({Cell(static_cast<std::int64_t>(t)), Cell(a, 3), Cell(b, 3),
                  Cell(c, 3), Cell(a + b + c, 3)});
  }
  table.Print(std::cout);

  std::cout << "\ntoken accounting over the run:\n";
  for (const JobDef& j : jobs) {
    const vgpu::FrontendHook* hook = host.RunningHook(j.name);
    if (hook == nullptr) continue;  // C already exited
    const auto stats = backend->StatsOf(hook->container());
    std::cout << "  job " << j.name << ": " << stats.grants << " grants, "
              << Cell(ToSeconds(stats.held_total), 1) << " s held, "
              << Cell(ToMillis(stats.overrun_total), 1) << " ms overrun\n";
  }

  std::cout << "\nExpected shape (paper): 0.6 alone -> 0.5/0.5 -> pinned at\n"
               "requests (0.3/0.4/0.3) -> back to 0.5/0.5 after C exits at\n"
               "~660s; total utilization ~1.0 from 200s on.\n";
  return 0;
}
