// Figure 13: "The system throughput comparison under performance
// interference workloads" — throughput vs the fraction of Job A in the
// mix, for three settings:
//   - native Kubernetes (no sharing at all),
//   - KubeShare without locality labels (shares freely; B+B pairs suffer
//     ~1.5x interference), and
//   - KubeShare with an anti-affinity label on Job B (B's never share a
//     GPU with each other).
//
// Job A: demand 0.25 / request 0.45 (resilient); Job B: demand 0.75 /
// request 0.45 (sensitive). Requests are both < 0.5 so any pair fits.

#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "k8s/resources.hpp"
#include "workload/host.hpp"

namespace {

using namespace ks;

enum class Setting { kNative, kKubeShare, kKubeShareAntiAffinity };

double RunMix(Setting setting, double ratio_a, std::uint64_t seed) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 8;
  ccfg.gpus_per_node = 4;
  k8s::Cluster cluster(ccfg);
  std::unique_ptr<kubeshare::KubeShare> kubeshare;
  if (setting != Setting::kNative) {
    kubeshare = std::make_unique<kubeshare::KubeShare>(&cluster);
  }
  workload::WorkloadHost host(&cluster);
  (void)cluster.Start();
  if (kubeshare != nullptr) (void)kubeshare->Start();

  Rng rng(seed);
  const int total_jobs = 192;
  const Duration solo = Seconds(45);
  Time first_submit{0};
  Time next = Seconds(1);
  for (int i = 0; i < total_jobs; ++i) {
    const bool is_a = rng.Chance(ratio_a);
    const double demand = is_a ? 0.25 : 0.75;
    const std::string name = "job-" + std::to_string(i);
    workload::InferenceSpec spec = workload::InferenceSpec::ForDemand(
        demand, static_cast<int>(demand / 0.020 * ToSeconds(solo)),
        Millis(20));
    spec.seed = seed + static_cast<std::uint64_t>(i);
    if (i == 0) first_submit = next;
    cluster.sim().ScheduleAt(next, [&, name, spec, is_a] {
      host.ExpectJob(name, [spec] {
        return std::make_unique<workload::InferenceJob>(spec);
      });
      if (kubeshare == nullptr) {
        k8s::Pod pod;
        pod.meta.name = name;
        pod.spec.requests.Set(k8s::kResourceNvidiaGpu, 1);
        (void)cluster.api().pods().Create(pod);
      } else {
        kubeshare::SharePod sp;
        sp.meta.name = name;
        sp.spec.gpu.gpu_request = 0.45;
        sp.spec.gpu.gpu_limit = 0.90;
        sp.spec.gpu.gpu_mem = 0.45;
        if (!is_a && setting == Setting::kKubeShareAntiAffinity) {
          sp.spec.locality.anti_affinity = Label("job-b");
        }
        (void)kubeshare->CreateSharePod(sp);
      }
    });
    next += rng.ExponentialInterarrival(Millis(700));
  }

  const Duration slice = Seconds(10);
  while (host.completed() + host.failed() <
             static_cast<std::size_t>(total_jobs) &&
         cluster.sim().Now() < Minutes(120)) {
    cluster.sim().RunUntil(cluster.sim().Now() + slice);
  }
  const Duration makespan = host.completion_times().empty()
                                ? Duration{0}
                                : host.completion_times().back() - first_submit;
  if (makespan.count() <= 0) return 0.0;
  return static_cast<double>(host.completed()) / (ToSeconds(makespan) / 60.0);
}

}  // namespace

int main() {
  bench::Banner(
      "bench_fig13: throughput under interference vs Job-A ratio",
      "Figure 13");

  Table table({"job A ratio", "k8s", "kubeshare (no label)",
               "kubeshare (anti-affinity on B)"});
  for (const double ratio : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double native = RunMix(Setting::kNative, ratio, 31);
    const double plain = RunMix(Setting::kKubeShare, ratio, 31);
    const double anti = RunMix(Setting::kKubeShareAntiAffinity, ratio, 31);
    table.AddRow({Cell(ratio, 2), Cell(native, 1), Cell(plain, 1),
                  Cell(anti, 1)});
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape (paper): at ratio 0, anti-affinity degenerates "
         "to the\nnative behaviour while label-free sharing wins despite "
         "interference; the\ncurves cross near ratio 0.5, after which "
         "anti-affinity wins; at ratio 1\nboth KubeShare settings coincide "
         "far above native Kubernetes.\n";
  return 0;
}
