// Spatial-sharing study (design extension; no paper figure): GPU goodput
// and slice fragmentation with MIG-style spatial partitions vs the
// temporal-only token path.
//
// Tenant mixes combine small-kernel jobs (kernels that saturate one SM
// group, sm_demand = 1/7) and large-kernel jobs (kernels sized to a wider
// slice). Under the temporal path every tenant time-slices the whole GPU,
// so a small kernel wastes 6/7 of the SMs while it holds the token; with
// spatial sharing each tenant is pinned to a slice matching its kernels
// and compatible tenants hold tokens *concurrently*. Goodput counts only
// useful SM-time (nominal duration x sm_demand), so idle SMs under a
// too-wide allocation are charged against the mode that caused them.
//
// Writes BENCH_spatial.json (schema checked by scripts/check_bench_json.py):
// per (mix, mode) one row with goodput, goodput_gain vs temporal,
// fragmentation_ratio (peak over the run), concurrent_tokens_peak and
// total_events.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness.hpp"
#include "json_report.hpp"
#include "kubeshare/kubeshare.hpp"
#include "sweep.hpp"
#include "workload/host.hpp"

namespace {

using namespace ks;

constexpr int kSmGroups = 7;

/// One tenant of a mix: a training job plus the slice claim its sharePod
/// declares. The same spec runs in both modes — the temporal cluster
/// simply ignores the slice claim.
struct Tenant {
  int slice_groups = 1;
  double sm_demand = 1.0 / kSmGroups;
  double gpu_request = 0.14;
  double gpu_mem = 0.1;
  int steps = 400;
};

struct Mix {
  std::string name;
  std::vector<Tenant> tenants;
};

std::vector<Mix> Mixes() {
  const Tenant small{1, 1.0 / kSmGroups, 0.14, 0.1, 400};
  const Tenant wide{4, 4.0 / kSmGroups, 0.55, 0.3, 400};
  const Tenant full{kSmGroups, 1.0, 0.9, 0.5, 400};
  std::vector<Mix> mixes;
  mixes.push_back({"small-only", {small, small, small, small, small, small}});
  mixes.push_back({"mixed", {small, small, small, wide, small, small, small,
                             wide}});
  mixes.push_back({"large-only", {full, full}});
  return mixes;
}

struct Result {
  double goodput = 0.0;            // useful SM-seconds per GPU-second
  double fragmentation = 0.0;      // peak pool fragmentation ratio
  std::size_t concurrent_peak = 0; // max simultaneous token holders
  std::uint64_t total_events = 0;
  std::size_t completed = 0;
  double makespan_s = 0.0;
};

Result Run(const Mix& mix, bool spatial) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 1;
  ccfg.gpus_per_node = 2;
  ccfg.spatial.enabled = spatial;
  ccfg.spatial.sm_groups = kSmGroups;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  (void)cluster.Start();
  (void)kubeshare.Start();

  const Duration step_kernel = Millis(10);
  double useful_sm_seconds = 0.0;
  for (std::size_t i = 0; i < mix.tenants.size(); ++i) {
    const Tenant& t = mix.tenants[i];
    const std::string name = "tenant-" + std::to_string(i);
    workload::TrainingSpec spec;
    spec.steps = t.steps;
    spec.step_kernel = step_kernel;
    spec.sm_demand = t.sm_demand;
    spec.model_bytes = 1ull << 30;
    useful_sm_seconds +=
        static_cast<double>(t.steps) * ToSeconds(step_kernel) * t.sm_demand;
    host.ExpectJob(name, [spec] {
      return std::make_unique<workload::TrainingJob>(spec);
    });
    kubeshare::SharePod sp;
    sp.meta.name = name;
    sp.spec.gpu.gpu_request = t.gpu_request;
    sp.spec.gpu.gpu_limit = 1.0;
    sp.spec.gpu.gpu_mem = t.gpu_mem;
    sp.spec.gpu.slice_groups = t.slice_groups;
    (void)kubeshare.CreateSharePod(sp);
  }

  Result r;
  const Duration slice = Millis(500);
  while (host.completed() + host.failed() < mix.tenants.size() &&
         cluster.sim().Now() < Minutes(60)) {
    cluster.sim().RunUntil(cluster.sim().Now() + slice);
    r.fragmentation =
        std::max(r.fragmentation, kubeshare.pool().FragmentationRatio());
    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      r.concurrent_peak = std::max(
          r.concurrent_peak,
          cluster.node(n).token_backend->peak_active_holders());
    }
  }
  cluster.sim().Run();

  r.completed = host.completed();
  r.total_events = cluster.sim().lifetime_events();
  if (!host.completion_times().empty()) {
    r.makespan_s = ToSeconds(host.completion_times().back());
    const double gpu_seconds =
        r.makespan_s * static_cast<double>(ccfg.nodes * ccfg.gpus_per_node);
    if (gpu_seconds > 0) r.goodput = useful_sm_seconds / gpu_seconds;
  }
  return r;
}

}  // namespace

int main() {
  bench::Banner(
      "bench_study_spatial: goodput & fragmentation, spatial vs temporal",
      "design study (spatial sharing subsystem)");

  std::cout << "\n1 node x 2 GPUs, " << kSmGroups
            << " SM groups per device. Each mix runs twice: temporal-only\n"
               "tokens (whole-GPU time slicing) and spatial slices with "
               "concurrent tokens.\n\n";

  const std::vector<Mix> mixes = Mixes();
  struct Point {
    Result temporal;
    Result spatial;
  };
  const std::vector<Point> results =
      bench::RunSweep<Point>(mixes.size(), [&mixes](std::size_t i) {
        Point p;
        p.temporal = Run(mixes[i], /*spatial=*/false);
        p.spatial = Run(mixes[i], /*spatial=*/true);
        return p;
      });

  Table table({"mix", "mode", "completed", "makespan s", "goodput", "gain",
               "frag ratio", "peak tokens"});
  JsonValue report = bench::MakeReport("spatial");
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    const Point& p = results[i];
    for (const bool spatial : {false, true}) {
      const Result& r = spatial ? p.spatial : p.temporal;
      const double gain =
          (spatial && p.temporal.goodput > 0)
              ? p.spatial.goodput / p.temporal.goodput
              : 1.0;
      table.AddRow({mixes[i].name, spatial ? "spatial" : "temporal",
                    Cell(static_cast<std::int64_t>(r.completed)),
                    Cell(r.makespan_s, 1), Cell(r.goodput, 3), Cell(gain, 2),
                    Cell(r.fragmentation, 3),
                    Cell(static_cast<std::int64_t>(r.concurrent_peak))});
      JsonValue row = JsonValue::Object();
      row.Set("mix", mixes[i].name);
      row.Set("mode", spatial ? "spatial" : "temporal");
      row.Set("completed", static_cast<std::int64_t>(r.completed));
      row.Set("makespan_s", r.makespan_s);
      row.Set("goodput", r.goodput);
      row.Set("goodput_gain", gain);
      row.Set("fragmentation_ratio", r.fragmentation);
      row.Set("concurrent_tokens_peak",
              static_cast<std::int64_t>(r.concurrent_peak));
      row.Set("total_events", static_cast<std::int64_t>(r.total_events));
      bench::AddRow(report, std::move(row));
    }
  }
  table.Print(std::cout);

  std::cout << "\nExpected shape: small-kernel tenants gain the most — "
               "temporally they waste\n6/7 of the SMs while holding the "
               "token, spatially they run concurrently on\n1/7 slices at "
               "full speed. The mixed row is the acceptance gate "
               "(>= 1.3x\ngoodput); large-only tenants claim every SM group "
               "and degenerate to the\ntemporal schedule.\n";
  std::cout << "\nwrote " << bench::WriteReport(report) << "\n";
  return 0;
}
