// Figure 11: "The scheduling time of KubeShare" — scheduling latency as a
// function of the number of SharePods in the system (the paper reports a
// linear O(N) growth, < 400 ms at 100 SharePods for their Go controller).
//
// Two views:
//  (a) the *modeled end-to-end* scheduling cycle (fixed cost + per-SharePod
//      status query), which is what the paper's wall clock measures, and
//  (b) the raw in-memory Algorithm 1 decision time of this C++
//      implementation, measured with google-benchmark (shape: linear in
//      the pool/attachment count; absolute numbers are microseconds, since
//      there is no apiserver round trip in the hot loop).

#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"
#include "kubeshare/algorithm.hpp"
#include "kubeshare/config.hpp"
#include "kubeshare/kubeshare.hpp"

namespace {

using namespace ks;

/// Builds a pool with `n` attached sharePods spread over enough devices.
kubeshare::VgpuPool BuildPool(int n) {
  kubeshare::VgpuPool pool;
  std::vector<kubeshare::NodeFreeGpus> supply{{"node-0", n}};
  for (int i = 0; i < n; ++i) {
    kubeshare::ScheduleRequest r;
    r.sharepod = "sp-" + std::to_string(i);
    r.gpu.gpu_request = 0.3;
    r.gpu.gpu_limit = 1.0;
    r.gpu.gpu_mem = 0.25;
    (void)kubeshare::ScheduleSharePod(pool, r, supply);
  }
  return pool;
}

void BM_Algorithm1Decision(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  kubeshare::VgpuPool pool = BuildPool(n);
  std::vector<kubeshare::NodeFreeGpus> supply{{"node-0", n + 1}};
  std::uint64_t i = 0;
  for (auto _ : state) {
    kubeshare::ScheduleRequest r;
    r.sharepod = "probe-" + std::to_string(i++);
    r.gpu.gpu_request = 0.3;
    r.gpu.gpu_limit = 1.0;
    r.gpu.gpu_mem = 0.25;
    auto id = kubeshare::ScheduleSharePod(pool, r, supply);
    benchmark::DoNotOptimize(id);
    state.PauseTiming();
    if (id.ok()) (void)pool.Detach(r.sharepod);
    state.ResumeTiming();
  }
  state.SetLabel(std::to_string(n) + " sharepods");
}

/// End-to-end: the time KubeShare-Sched takes to assign a GPUID to a new
/// sharePod while N others are live in the system, measured through the
/// full controller pipeline (watch delivery + serial cycle + O(N) query
/// cost) in simulated time.
Duration MeasuredSchedulingLatency(int live_sharepods) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 8;
  ccfg.gpus_per_node = 4;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShare kubeshare(&cluster);
  (void)cluster.Start();
  (void)kubeshare.Start();

  auto make_sharepod = [](const std::string& name) {
    kubeshare::SharePod sp;
    sp.meta.name = name;
    sp.spec.gpu.gpu_request = 0.01;  // tiny: always packable
    sp.spec.gpu.gpu_limit = 0.02;
    sp.spec.gpu.gpu_mem = 0.005;
    return sp;
  };
  for (int i = 0; i < live_sharepods; ++i) {
    (void)kubeshare.CreateSharePod(make_sharepod("bg-" + std::to_string(i)));
  }
  cluster.sim().RunUntil(Minutes(3));  // background sharepods settle

  const Time created = cluster.sim().Now();
  (void)kubeshare.CreateSharePod(make_sharepod("probe"));
  cluster.sim().RunUntil(created + Minutes(1));
  auto probe = kubeshare.sharepods().Get("probe");
  if (!probe.ok() || !probe->status.scheduled_time.has_value()) {
    return Duration{-1};
  }
  return *probe->status.scheduled_time - created;
}

}  // namespace

BENCHMARK(BM_Algorithm1Decision)->Arg(10)->Arg(25)->Arg(50)->Arg(75)->Arg(100)
    ->Arg(200);

int main(int argc, char** argv) {
  bench::Banner("bench_fig11: KubeShare scheduling time vs #SharePods",
                "Figure 11");

  kubeshare::KubeShareConfig cfg;
  std::cout << "\n(a) modeled end-to-end scheduling cycle "
               "(fixed + per-SharePod query)\n\n";
  Table table({"sharepods", "scheduling time (ms)"});
  for (const int n : {10, 25, 50, 75, 100}) {
    const Duration cycle = cfg.sched_fixed + cfg.sched_per_sharepod * n;
    table.AddRow({Cell(static_cast<std::int64_t>(n)),
                  Cell(ToMillis(cycle), 1)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): linear, < 400 ms at 100 "
               "SharePods.\n";

  std::cout << "\n(b) measured through the full controller (watch + cycle + "
               "O(N) query)\n\n";
  Table measured({"live sharepods", "probe scheduling latency (ms)"});
  for (const int n : {10, 25, 50, 100}) {
    const Duration latency = MeasuredSchedulingLatency(n);
    measured.AddRow({Cell(static_cast<std::int64_t>(n)),
                     Cell(ToMillis(latency), 1)});
  }
  measured.Print(std::cout);

  std::cout << "\n(c) raw Algorithm 1 decision time (google-benchmark)\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
