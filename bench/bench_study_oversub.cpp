// Memory-oversubscription study (ROADMAP item 2; paper §4.5 related work):
// completion time of a bursty training mix as the aggregate working set
// grows past physical device memory, with and without the nvshare-style
// exclusive-time-quantum (TQ) anti-thrashing rotation.
//
// Four phased (bursty) training tenants share one GPU through the full
// KubeShare stack. Each tenant's model is sized to factor x capacity x
// 0.9 / 4, so the sweep's oversubscription factor directly scales the
// aggregate working set: at 1.0x everything fits and no page ever moves;
// above it every token hand-off migrates the in-bound tenant's pages over
// the shared host<->device link. Two modes per factor:
//   share  plain temporal sharing — the 100 ms token quota keeps rotating
//          a working set larger than the device through the link
//          (swap-thrashing: most of the wall clock is migration);
//   tq     BackendConfig::tq on — the thrash detector sees the swap
//          traffic and switches the device to an exclusive 30 s quantum
//          per memory-pressured holder, so each tenant's burst pays one
//          migration instead of one per quota.
//
// The acceptance gate (scripts/check_bench_json.py, BENCH_oversub.json):
// tq completion at 2.5x stays within 2x of the 1.0x baseline, while
// share at 2.5x visibly collapses (>= 2x the tq time or incomplete).

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness.hpp"
#include "json_report.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/swap.hpp"
#include "workload/host.hpp"

namespace {

using namespace ks;

constexpr int kTenants = 4;
const Time kHorizon = Seconds(300);

struct ModeResult {
  double completion_s = 0.0;  // makespan; horizon when jobs never finish
  std::size_t completed = 0;
  std::uint64_t migrations = 0;
  std::uint64_t bytes_migrated = 0;
  double link_busy_fraction = 0.0;
  std::uint64_t tq_engagements = 0;
  std::uint64_t total_events = 0;
};

ModeResult Run(double factor, bool tq) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 1;
  ccfg.gpus_per_node = 1;
  ccfg.oversub.enabled = true;
  ccfg.oversub.swap.oversubscription_factor = factor;
  // NVLink-class link; migrations stay painful but one per burst is
  // affordable while one per 100 ms quota is not.
  ccfg.oversub.swap.link_bandwidth_bytes_per_s = 24e9;
  ccfg.backend.tq.enabled = tq;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShareConfig kcfg;
  kcfg.allow_memory_overcommit = true;
  kcfg.memory_overcommit_factor = factor;
  kubeshare::KubeShare kubeshare(&cluster, kcfg);
  workload::WorkloadHost host(&cluster);
  (void)cluster.Start();
  (void)kubeshare.Start();

  const auto capacity =
      static_cast<double>(cluster.config().gpu_spec.memory_bytes);
  for (int i = 0; i < kTenants; ++i) {
    const std::string name = "burst-" + std::to_string(i);
    workload::PhasedTrainingSpec spec;
    spec.epochs = 3;
    spec.steps_per_epoch = 100;
    spec.step_kernel = Millis(10);
    spec.io_per_epoch = Millis(500);
    spec.model_bytes =
        static_cast<std::uint64_t>(factor * 0.9 / kTenants * capacity);
    host.ExpectJob(name, [spec] {
      return std::make_unique<workload::PhasedTrainingJob>(spec);
    });
    kubeshare::SharePod sp;
    sp.meta.name = name;
    sp.spec.gpu.gpu_request = 1.0 / kTenants;
    sp.spec.gpu.gpu_limit = 1.0;
    sp.spec.gpu.gpu_mem = factor * 0.95 / kTenants;
    (void)kubeshare.CreateSharePod(sp);
  }

  const Duration slice = Seconds(5);
  while (host.completed() + host.failed() <
             static_cast<std::size_t>(kTenants) &&
         cluster.sim().Now() < kHorizon) {
    cluster.sim().RunUntil(cluster.sim().Now() + slice);
  }

  ModeResult r;
  r.completed = host.completed();
  r.completion_s =
      r.completed == static_cast<std::size_t>(kTenants)
          ? ToSeconds(host.completion_times().back())
          : ToSeconds(kHorizon);
  const metrics::SwapMetrics swap = metrics::CollectSwapMetrics(
      cluster, [&host](const GpuUuid& uuid) { return host.SwapFor(uuid); });
  r.migrations = swap.migrations_total;
  r.bytes_migrated = swap.bytes_migrated_total;
  if (!swap.devices.empty()) {
    r.link_busy_fraction = swap.devices.front().link_busy_fraction;
  }
  r.tq_engagements = swap.tq_engagements_total;
  r.total_events = cluster.sim().lifetime_events();
  return r;
}

}  // namespace

int main() {
  bench::Banner(
      "bench_study_oversub: completion time vs memory oversubscription",
      "GPUswap-style paging + nvshare-TQ anti-thrashing (ROADMAP item 2)");

  std::cout << "\n1 node x 1 GPU, " << kTenants
            << " bursty training tenants; aggregate working set =\nfactor x "
               "0.9 x device memory. \"share\" rotates the 100 ms token "
               "quota;\n\"tq\" engages the exclusive time quantum once swap "
               "traffic crosses the\nthrash threshold.\n\n";

  Table table({"factor", "mode", "completion (s)", "done", "migrations",
               "GiB moved", "link busy", "tq engages"});
  JsonValue report = bench::MakeReport("oversub");
  for (const double factor : {1.0, 1.5, 2.0, 2.5, 3.0}) {
    for (const bool tq : {false, true}) {
      const ModeResult r = Run(factor, tq);
      const char* mode = tq ? "tq" : "share";
      table.AddRow({Cell(factor, 1), mode, Cell(r.completion_s, 1),
                    Cell(static_cast<std::int64_t>(r.completed)),
                    Cell(static_cast<std::int64_t>(r.migrations)),
                    Cell(static_cast<double>(r.bytes_migrated) / (1ull << 30),
                         1),
                    Cell(r.link_busy_fraction, 3),
                    Cell(static_cast<std::int64_t>(r.tq_engagements))});
      JsonValue row = JsonValue::Object();
      row.Set("factor", factor);
      row.Set("mode", std::string(mode));
      row.Set("jobs", static_cast<std::int64_t>(kTenants));
      row.Set("completed", static_cast<std::int64_t>(r.completed));
      row.Set("completion_time_s", r.completion_s);
      row.Set("migrations", static_cast<std::int64_t>(r.migrations));
      row.Set("bytes_migrated", static_cast<std::int64_t>(r.bytes_migrated));
      row.Set("link_busy_fraction", r.link_busy_fraction);
      row.Set("tq_engagements",
              static_cast<std::int64_t>(r.tq_engagements));
      row.Set("total_events", static_cast<std::int64_t>(r.total_events));
      bench::AddRow(report, std::move(row));
    }
  }
  table.Print(std::cout);

  std::cout << "\nExpected shape: at 1.0x nothing swaps and the modes are "
               "identical. Above\nit, \"share\" pays a full working-set "
               "migration per 100 ms quota and\ncollapses; \"tq\" pays one "
               "per burst and stays within 2x of the 1.0x\nbaseline "
               "(the gate check_bench_json.py enforces).\n";
  std::cout << "\nwrote " << bench::WriteReport(report) << "\n";
  return 0;
}
