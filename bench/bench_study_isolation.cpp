// Isolation-under-attack study (robustness extension; no paper figure):
// what one hostile tenant costs its polite neighbors, with and without
// server-side isolation enforcement.
//
// Three tenants share one GPU through the full KubeShare stack; all are
// continuous training jobs with gpu_request 0.3, so the healthy elastic
// split is ~1/3 each. One tenant ("greedy") is turned hostile by the chaos
// injector — it overstays its token grants and floods kernels straight at
// the driver, revocation or not. Three modes:
//   baseline    all tenants polite (the fig6-style fair split);
//   unenforced  greedy attacks, isolation enforcement OFF — the client-side
//               device library is the only throttle, and a tenant that
//               patches it out steals its neighbors' share;
//   enforced    greedy attacks, enforcement ON — token-epoch fencing at the
//               device, overstay reclaim, violation clamp-down, eviction.
//
// The acceptance gate (checked by scripts/check_bench_json.py against
// BENCH_isolation.json): with enforcement on, every polite tenant keeps
// >= 95% of its baseline usage; with enforcement off, the attack visibly
// collapses at least one polite tenant's share.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "json_report.hpp"
#include "kubeshare/kubeshare.hpp"
#include "metrics/isolation.hpp"
#include "workload/host.hpp"

namespace {

using namespace ks;

const char* kTenants[] = {"polite-0", "polite-1", "greedy"};
constexpr std::size_t kHostile = 2;  // index of the attacker

struct ModeResult {
  // Mean over the steady-state sampling window, per tenant.
  double usage[3] = {0.0, 0.0, 0.0};
  metrics::IsolationMetrics isolation;
  std::uint64_t total_events = 0;
  bool hostile_evicted = false;
};

ModeResult Run(bool attack, bool enforcement) {
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 1;
  ccfg.gpus_per_node = 1;
  ccfg.backend.enforcement.enabled = enforcement;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShare kubeshare(&cluster);
  workload::WorkloadHost host(&cluster);
  (void)cluster.Start();
  (void)kubeshare.Start();

  for (const char* name : kTenants) {
    workload::TrainingSpec spec;
    spec.steps = 1'000'000;  // runs past the end of the sampling window
    spec.step_kernel = Millis(10);
    spec.model_bytes = 1ull << 30;
    host.ExpectJob(name, [spec] {
      return std::make_unique<workload::TrainingJob>(spec);
    });
    kubeshare::SharePod sp;
    sp.meta.name = name;
    sp.spec.gpu.gpu_request = 0.3;
    sp.spec.gpu.gpu_limit = 1.0;
    sp.spec.gpu.gpu_mem = 0.2;
    (void)kubeshare.CreateSharePod(sp);
  }

  chaos::FaultInjector* injector = nullptr;
  chaos::FaultPlan plan;
  if (attack) {
    // Hostile from t=10s (well past the ~5s pod-start pipeline) for the
    // rest of the run: overstay every grant and flood the driver.
    for (const chaos::FaultKind kind :
         {chaos::FaultKind::kTenantTokenOverstay,
          chaos::FaultKind::kTenantKernelFlood}) {
      chaos::Fault f;
      f.at = Seconds(10);
      f.kind = kind;
      f.pod = kTenants[kHostile];
      f.duration = Duration{0};  // stays hostile until the run ends
      plan.faults.push_back(f);
    }
  }
  chaos::FaultInjector inj(&cluster, plan);
  inj.SetKubeShare(&kubeshare);
  inj.SetWorkloadHost(&host);
  injector = &inj;
  (void)injector->Arm();

  vgpu::TokenBackendApi* backend = cluster.node(0).token_backend.get();
  ModeResult r;
  // Steady state: attack (if any) starts at 10s; sample [24s, 40s] so the
  // 10s usage window only sees the attacked regime.
  int samples = 0;
  for (int t = 24; t <= 40; t += 2) {
    cluster.sim().RunUntil(Seconds(t));
    for (std::size_t i = 0; i < 3; ++i) {
      if (const vgpu::FrontendHook* hook = host.RunningHook(kTenants[i])) {
        r.usage[i] += backend->UsageOf(hook->container());
      }
    }
    ++samples;
  }
  for (double& u : r.usage) u /= samples;

  r.isolation = metrics::CollectIsolationMetrics(cluster, &kubeshare);
  r.total_events = cluster.sim().lifetime_events();
  r.hostile_evicted = r.isolation.tenants_evicted > 0;
  return r;
}

}  // namespace

int main() {
  bench::Banner(
      "bench_study_isolation: polite-tenant fairness under a hostile tenant",
      "robustness study (isolation enforcement subsystem)");

  std::cout << "\n1 node x 1 GPU, 3 training tenants (request 0.3 each); "
               "\"greedy\" turns\nhostile at t=10s (token overstay + kernel "
               "flood). Usage is the backend's\nserver-side attribution, "
               "averaged over t=[24s,40s].\n\n";

  const ModeResult baseline = Run(/*attack=*/false, /*enforcement=*/false);
  const ModeResult unenforced = Run(/*attack=*/true, /*enforcement=*/false);
  const ModeResult enforced = Run(/*attack=*/true, /*enforcement=*/true);

  struct ModeRow {
    const char* mode;
    const ModeResult* r;
  };
  const ModeRow modes[] = {{"baseline", &baseline},
                           {"unenforced", &unenforced},
                           {"enforced", &enforced}};

  Table table({"mode", "tenant", "usage", "vs baseline", "violations",
               "fenced", "clamps", "evicts"});
  JsonValue report = bench::MakeReport("isolation");
  for (const ModeRow& m : modes) {
    for (std::size_t i = 0; i < 3; ++i) {
      const double base = baseline.usage[i];
      const double ratio = base > 0 ? m.r->usage[i] / base : 0.0;
      table.AddRow(
          {m.mode, kTenants[i], Cell(m.r->usage[i], 3), Cell(ratio, 2),
           Cell(static_cast<std::int64_t>(m.r->isolation.violations_total)),
           Cell(static_cast<std::int64_t>(
               m.r->isolation.fenced_kernel_rejections)),
           Cell(static_cast<std::int64_t>(m.r->isolation.clampdowns_total)),
           Cell(static_cast<std::int64_t>(m.r->isolation.tenants_evicted))});
      JsonValue row = JsonValue::Object();
      row.Set("mode", std::string(m.mode));
      row.Set("tenant", std::string(kTenants[i]));
      row.Set("hostile", i == kHostile);
      row.Set("usage", m.r->usage[i]);
      row.Set("ratio_vs_baseline", ratio);
      row.Set("violations_total",
              static_cast<std::int64_t>(m.r->isolation.violations_total));
      row.Set("fenced_rejections",
              static_cast<std::int64_t>(
                  m.r->isolation.fenced_kernel_rejections));
      row.Set("clampdowns_total",
              static_cast<std::int64_t>(m.r->isolation.clampdowns_total));
      row.Set("evictions_total",
              static_cast<std::int64_t>(m.r->isolation.tenants_evicted));
      row.Set("total_events", static_cast<std::int64_t>(m.r->total_events));
      bench::AddRow(report, std::move(row));
    }
  }
  table.Print(std::cout);

  std::cout << "\nExpected shape: baseline splits ~1/3 each. Unenforced, the "
               "hostile tenant's\nflood starves its neighbors (polite ratios "
               "well below 1). Enforced, the\ndevice fences the dead grants, "
               "violations clamp then evict the attacker, and\nthe polite "
               "tenants keep (or better) their baseline share.\n";
  std::cout << "\nwrote " << bench::WriteReport(report) << "\n";
  return 0;
}
