// Pod-churn soak at scale: 10k nodes x 100k live sharePods, driven by each
// engine kind in turn (ISSUE: sharded deterministic simulation with batched
// watch fan-out).
//
//   single-baseline   one engine, per-activity events, unbatched fan-out —
//                     the byte-equality oracle and the throughput baseline
//   single-batched    one engine + the scale event economy (work calendars,
//                     batched watch fan-out) — isolates the economy win
//   sharded-serial    ShardedSimulation, serial drain
//   sharded-parallel  ShardedSimulation, KS_SCALE_THREADS workers
//
// All four runs must agree on every deterministic field (useful_events,
// state_digest, trace_digest, scheduler counters); the bench aborts if they
// diverge, so the published numbers are guaranteed to price identical work.
//
// Writes BENCH_scale.json (schema ks-bench/1): one row per engine with
// total_events, events_per_sec, speedup_vs_single, scheduler p50/p99, and
// the watch fan-out economy (events armed vs what unbatched would arm).
//
// Env knobs (CI uses smaller soaks; defaults are the ISSUE scale):
//   KS_SCALE_NODES=10000  KS_SCALE_SHAREPODS=100000  KS_SCALE_SHARDS=16
//   KS_SCALE_THREADS=<hw>  KS_SCALE_DURATION_MS=5000  KS_SCALE_SEED=1
//   KS_SCALE_CRASH_NODES=8  KS_SCALE_DEVMGR_CRASHES=1

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "json_report.hpp"
#include "scale/cluster_model.hpp"

namespace {

std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoll(v, nullptr, 10);
}

struct Run {
  ks::scale::EngineKind kind;
  ks::scale::ScaleResult result;
};

}  // namespace

int main() {
  using ks::scale::EngineKind;
  using ks::scale::ScaleConfig;
  using ks::scale::ScaleResult;

  ScaleConfig config;
  config.nodes = static_cast<int>(EnvInt("KS_SCALE_NODES", 10000));
  config.sharepods = static_cast<int>(EnvInt("KS_SCALE_SHAREPODS", 100000));
  config.node_shards = static_cast<int>(EnvInt("KS_SCALE_SHARDS", 16));
  config.duration = ks::Millis(EnvInt("KS_SCALE_DURATION_MS", 5000));
  config.seed = static_cast<std::uint64_t>(EnvInt("KS_SCALE_SEED", 1));
  config.crash_nodes = static_cast<int>(EnvInt("KS_SCALE_CRASH_NODES", 8));
  config.devmgr_crashes =
      static_cast<int>(EnvInt("KS_SCALE_DEVMGR_CRASHES", 1));
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  config.threads = static_cast<int>(
      EnvInt("KS_SCALE_THREADS", hw > 1 ? std::min(hw, config.node_shards + 1)
                                        : 2));

  std::printf("scale soak: %d nodes x %d sharePods, %d shards, %d threads, "
              "%lld ms\n",
              config.nodes, config.sharepods, config.node_shards,
              config.threads,
              static_cast<long long>(config.duration.count() / 1000));

  std::vector<Run> runs;
  for (EngineKind kind :
       {EngineKind::kSingleBaseline, EngineKind::kSingleBatched,
        EngineKind::kShardedSerial, EngineKind::kShardedParallel}) {
    std::printf("  running %-16s ...", ks::scale::EngineKindName(kind));
    std::fflush(stdout);
    Run run{kind, ks::scale::RunScaleModel(config, kind)};
    std::printf(" %10.0f events/s  (%.2fs wall, %llu engine events)\n",
                run.result.events_per_sec, run.result.wall_seconds,
                static_cast<unsigned long long>(run.result.engine_events));
    runs.push_back(std::move(run));
  }

  // Differential guard: the bench only publishes numbers for identical
  // work. Any mismatch here is a correctness bug, not a perf artifact.
  const ScaleResult& oracle = runs.front().result;
  bool diverged = false;
  for (const Run& run : runs) {
    const ScaleResult& r = run.result;
    auto check = [&](const char* field, std::uint64_t got,
                     std::uint64_t want) {
      if (got == want) return;
      std::fprintf(stderr, "DIVERGENCE %s: %s=%llu oracle=%llu\n",
                   r.engine.c_str(), field,
                   static_cast<unsigned long long>(got),
                   static_cast<unsigned long long>(want));
      diverged = true;
    };
    check("useful_events", r.useful_events, oracle.useful_events);
    check("state_digest", r.state_digest, oracle.state_digest);
    check("trace_digest", r.trace_digest, oracle.trace_digest);
    check("scheduled", r.scheduled, oracle.scheduled);
    check("completed", r.completed, oracle.completed);
    check("mirror_divergence", r.devmgr_mirror_divergence, 0);
    check("watch_order_violations", r.watch_order_violations, 0);
    check("lookahead_violations", r.lookahead_violations, 0);
  }
  if (diverged) return 1;

  auto report = ks::bench::MakeReport("scale");
  ks::Table table({"engine", "shards", "threads", "events/s", "speedup",
                   "engine events", "sched p99 ms", "fanout events"});
  for (const Run& run : runs) {
    const ScaleResult& r = run.result;
    const double speedup =
        oracle.events_per_sec > 0 ? r.events_per_sec / oracle.events_per_sec
                                  : 0;
    auto row = ks::JsonValue::Object();
    row.Set("engine", r.engine);
    row.Set("shards", r.shards);
    row.Set("threads", r.threads);
    row.Set("nodes", config.nodes);
    row.Set("sharepods", config.sharepods);
    row.Set("total_events", static_cast<std::int64_t>(r.useful_events));
    row.Set("engine_events", static_cast<std::int64_t>(r.engine_events));
    row.Set("wall_seconds", r.wall_seconds);
    row.Set("events_per_sec", r.events_per_sec);
    row.Set("speedup_vs_single", speedup);
    row.Set("sched_p50_ms", r.sched_p50_ms);
    row.Set("sched_p99_ms", r.sched_p99_ms);
    row.Set("scheduled", static_cast<std::int64_t>(r.scheduled));
    row.Set("occ_conflicts", static_cast<std::int64_t>(r.occ_conflicts));
    row.Set("snapshot_refreshes",
            static_cast<std::int64_t>(r.snapshot_refreshes));
    row.Set("watch_deliveries",
            static_cast<std::int64_t>(r.watch_deliveries));
    row.Set("watch_fanout_events",
            static_cast<std::int64_t>(r.watch_fanout_events));
    row.Set("watch_fanout_unbatched",
            static_cast<std::int64_t>(r.watch_fanout_unbatched));
    row.Set("windows", static_cast<std::int64_t>(r.windows));
    row.Set("cross_shard_sends",
            static_cast<std::int64_t>(r.cross_shard_sends));
    row.Set("lookahead_violations",
            static_cast<std::int64_t>(r.lookahead_violations));
    row.Set("mirror_divergence",
            static_cast<std::int64_t>(r.devmgr_mirror_divergence));
    row.Set("watch_order_violations",
            static_cast<std::int64_t>(r.watch_order_violations));
    ks::bench::AddRow(report, std::move(row));

    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
    table.AddRow({r.engine, std::to_string(r.shards),
                  std::to_string(r.threads),
                  std::to_string(static_cast<long long>(r.events_per_sec)),
                  buf, std::to_string(r.engine_events),
                  ks::Cell(r.sched_p99_ms, 3),
                  std::to_string(r.watch_fanout_events)});
  }
  table.Print(std::cout);
  const std::string path = ks::bench::WriteReport(report);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
