#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace ks::bench {

/// Thread-pooled sweep runner for the study/ablation benches.
///
/// Each bench is a sweep over configuration points (fault rates, placement
/// variants, seeds, ...), and every point is a self-contained
/// RunWorkload(): it builds its own Simulation, Cluster and KubeShare, so
/// points share no mutable state and can run on worker threads. Results
/// are returned ordered by point index — the caller formats output *after*
/// the sweep (collect-then-print), which is what makes a parallel run's
/// output byte-identical to a serial one.
///
/// Determinism: the runner never reorders, merges, or times anything; it
/// only distributes index-tagged closures and slots results back by index.
///
/// Thread count: KS_BENCH_THREADS env var when set (0 or 1 forces serial),
/// else hardware concurrency capped by the number of points.
std::size_t SweepThreadCount(std::size_t points);

/// Runs `fn(i)` for i in [0, points), possibly concurrently, and blocks
/// until all complete. `fn` must not touch shared mutable state (the
/// thread-safe logger is fine). Exceptions from `fn` propagate after the
/// sweep drains (first point's exception wins).
void RunSweep(std::size_t points, const std::function<void(std::size_t)>& fn);

/// Typed convenience wrapper: returns one R per point, in point order.
template <typename R>
std::vector<R> RunSweep(std::size_t points,
                        const std::function<R(std::size_t)>& fn) {
  std::vector<R> results(points);
  RunSweep(points, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace ks::bench
