// Ablation (paper §6, kernel preemption discussion): CUDA kernels are
// non-preemptive, so a long-running kernel overruns its token quota and a
// co-resident container's guaranteed share erodes — the motivation for
// FLEP-style kernel slicing. This bench sweeps the kernel length of an
// aggressor container and measures how far the victim's achieved usage
// falls below its gpu_request.

#include <iostream>

#include "common/table.hpp"
#include "cuda/context.hpp"
#include "harness.hpp"
#include "vgpu/frontend_hook.hpp"
#include "workload/job.hpp"

namespace {

using namespace ks;

struct Stack {
  Stack(sim::Simulation* sim, gpu::GpuDevice* dev, vgpu::TokenBackend* backend,
        const std::string& name, double request, double limit)
      : ctx(dev, ContainerId(name)),
        hook(&ctx, backend, ContainerId(name), dev->uuid(), MakeSpec(request, limit),
             dev->spec().memory_bytes) {
    (void)sim;
  }
  static vgpu::ResourceSpec MakeSpec(double request, double limit) {
    vgpu::ResourceSpec s;
    s.gpu_request = request;
    s.gpu_limit = limit;
    return s;
  }
  cuda::CudaContext ctx;
  vgpu::FrontendHook hook;
};

}  // namespace

int main() {
  bench::Banner(
      "bench_ablation_kernel_length: quota overrun from non-preemptive "
      "kernels",
      "paper §6 (FLEP motivation)");

  Table table({"aggressor kernel (ms)", "victim usage", "aggressor usage",
               "victim deficit vs request 0.5"});
  for (const int kernel_ms : {10, 50, 100, 200, 400, 800}) {
    sim::Simulation sim;
    gpu::GpuDevice dev(&sim, GpuUuid("GPU-0"));
    vgpu::TokenBackend backend(&sim);  // quota 100 ms

    Stack victim(&sim, &dev, &backend, "victim", 0.5, 0.5);
    Stack aggressor(&sim, &dev, &backend, "aggressor", 0.5, 0.5);

    // Both continuously busy; the victim uses short 10 ms kernels, the
    // aggressor's kernel length is swept past the 100 ms quota.
    workload::TrainingSpec vspec;
    vspec.steps = 1'000'000;
    vspec.step_kernel = Millis(10);
    workload::TrainingJob vjob(vspec);
    vjob.Start(&victim.hook, &sim, nullptr);

    workload::TrainingSpec aspec;
    aspec.steps = 1'000'000;
    aspec.step_kernel = Millis(kernel_ms);
    workload::TrainingJob ajob(aspec);
    ajob.Start(&aggressor.hook, &sim, nullptr);

    sim.RunUntil(Seconds(120));
    const double vu = backend.UsageOf(ContainerId("victim"));
    const double au = backend.UsageOf(ContainerId("aggressor"));
    table.AddRow({Cell(static_cast<std::int64_t>(kernel_ms)), Cell(vu, 3),
                  Cell(au, 3), Cell(0.5 - vu, 3)});
    vjob.Stop();
    ajob.Stop();
  }
  table.Print(std::cout);
  std::cout << "\nExpected: with kernels <= the 100 ms quota both containers "
               "sit at their\n0.5 requests. Longer kernels overrun the quota "
               "(non-preemptive), pushing\nthe aggressor above its share and "
               "the victim below — the gap FLEP-style\nkernel slicing would "
               "close.\n";
  return 0;
}
