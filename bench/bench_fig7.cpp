// Figure 7: "Performance impact from different time quota setting in the
// vGPU device library" — normalized training throughput vs token quota.
//
// Two measurements:
//  (a) the simulated stack: a single training job under the device library
//      with the quota swept 30..160 ms, normalized against the same job
//      without the library (the paper's baseline);
//  (b) the real-thread token runtime: a greedy worker thread against the
//      condvar-based TokenServer, quota swept, throughput = work done per
//      wall second (demonstrates the protocol cost on a real host).

#include <chrono>
#include <iostream>
#include <thread>

#include "common/table.hpp"
#include "cuda/context.hpp"
#include "harness.hpp"
#include "runtime/worker.hpp"
#include "vgpu/frontend_hook.hpp"
#include "workload/job.hpp"

namespace {

/// Steps completed in `horizon` of simulated time by a training job that
/// never runs out of work, with or without the vGPU device library.
int StepsIn(ks::Duration horizon, bool with_library, ks::Duration quota) {
  using namespace ks;
  sim::Simulation sim;
  gpu::GpuDevice dev(&sim, GpuUuid("GPU-0"));
  vgpu::BackendConfig cfg;
  cfg.quota = quota;
  vgpu::TokenBackend backend(&sim, cfg);
  cuda::CudaContext ctx(&dev, ContainerId("train"));
  std::unique_ptr<vgpu::FrontendHook> hook;
  cuda::CudaApi* api = &ctx;
  if (with_library) {
    vgpu::ResourceSpec spec;  // request 0, limit 1: pure overhead probe
    hook = std::make_unique<vgpu::FrontendHook>(&ctx, &backend,
                                                ContainerId("train"),
                                                dev.uuid(), spec,
                                                dev.spec().memory_bytes);
    api = hook.get();
  }
  workload::TrainingSpec spec;
  spec.steps = 1'000'000;
  spec.step_kernel = Millis(10);
  workload::TrainingJob job(spec);
  job.Start(api, &sim, nullptr);
  sim.RunUntil(horizon);
  job.Stop();
  return job.completed_steps();
}

}  // namespace

int main() {
  using namespace ks;
  bench::Banner("bench_fig7: training throughput vs token time quota",
                "Figure 7");

  const Duration horizon = Seconds(60);
  const int baseline = StepsIn(horizon, /*with_library=*/false, Millis(100));

  std::cout << "\n(a) Simulated device library (baseline = no library, "
            << baseline << " steps / 60 s)\n\n";
  Table sim_table({"quota (ms)", "steps/60s", "normalized", "exchanges"});
  for (const int quota_ms : {30, 40, 60, 80, 100, 120, 140, 160}) {
    const int steps = StepsIn(horizon, true, Millis(quota_ms));
    // Analytic expectation: quota / (quota + exchange).
    sim_table.AddRow({Cell(static_cast<std::int64_t>(quota_ms)),
                      Cell(static_cast<std::int64_t>(steps)),
                      Cell(static_cast<double>(steps) / baseline, 4),
                      Cell(static_cast<std::int64_t>(
                          ToSeconds(horizon) * 1000 / (quota_ms + 1.5)))});
  }
  sim_table.Print(std::cout);
  std::cout << "\nExpected shape (paper): <=5% slowdown at quota 30 ms, "
               "shrinking as the\nquota grows (overhead ~ exchange/(quota+"
               "exchange), exchange = 1.5 ms).\n";

  std::cout << "\n(b) Real-thread token runtime (300 ms wall per point)\n\n";
  Table rt_table({"quota (ms)", "work done (ms)", "normalized"});
  double base_work = 0.0;
  for (const int quota_ms : {5, 10, 20, 40, 80}) {
    runtime::TokenServerConfig cfg;
    cfg.quota = std::chrono::milliseconds(quota_ms);
    runtime::TokenServer server(cfg);
    runtime::GreedyWorker worker(&server, "train", 0.0, 1.0,
                                 std::chrono::microseconds(500));
    worker.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    worker.Stop();
    const double work_ms = static_cast<double>(worker.work_done_us()) / 1000.0;
    if (base_work <= 0.0) base_work = work_ms;
    rt_table.AddRow({Cell(static_cast<std::int64_t>(quota_ms)),
                     Cell(work_ms, 1),
                     Cell(base_work > 0 ? work_ms / base_work : 0.0, 3)});
  }
  rt_table.Print(std::cout);
  std::cout << "\nNote: in the condvar implementation a token hand-off costs "
               "microseconds\n(no CUDA sync / IPC round trip), so the curve "
               "is flat within noise even\nat 5 ms quotas — the protocol "
               "itself adds negligible overhead; the Fig 7\nslowdown comes "
               "from the exchange latency, which part (a) models."
            << std::endl;
  return 0;
}
