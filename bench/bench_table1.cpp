// Table 1: "Comparison of GPU sharing solutions for Kubernetes."
//
// The capability matrix is printed from the baseline traits, and the
// load-bearing claims are probed against the running implementations:
//  - memory isolation: does an over-quota allocation fail cleanly inside
//    the offending container (instead of crashing a neighbour)?
//  - compute isolation: is a container that claims 20% of a GPU actually
//    throttled to ~20%?
//  - first-class identity / locality / co-existence: KubeShare-only
//    behaviours exercised end to end.

#include <iostream>

#include "baselines/fractional_client.hpp"
#include "baselines/traits.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "k8s/resources.hpp"
#include "workload/host.hpp"

namespace {

using namespace ks;

const char* YesNo(bool b) { return b ? "Yes" : "No"; }

/// Probe: submit a training job claiming 20% compute / 40% memory with a
/// 12 GB model (over the 6.4 GB quota) through a fractional baseline.
/// Returns {oom_rejected, throttled}.
struct ProbeResult {
  bool oom_rejected = false;
  bool throttled = false;
};

ProbeResult ProbeBaseline(const baselines::BaselineTraits& traits) {
  ProbeResult result;
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 1;
  ccfg.gpus_per_node = traits.multi_gpu_per_node ? 2 : 1;
  ccfg.scaled_plugin = true;
  k8s::Cluster cluster(ccfg);
  workload::WorkloadHost host(&cluster);
  baselines::FractionalClient client(&cluster, &host, traits);
  (void)cluster.Start();

  // Memory probe: 12 GB model under a 40% (6.4 GB) quota.
  workload::TrainingSpec oom;
  oom.model_bytes = 12ull << 30;
  (void)client.Submit("probe-oom", 0.2, 0.4, [oom] {
    return std::make_unique<workload::TrainingJob>(oom);
  });
  // Compute probe: 1 s of kernels under a 20% claim.
  workload::TrainingSpec train;
  train.steps = 100;
  train.step_kernel = Millis(10);
  train.model_bytes = 1ull << 30;
  (void)client.Submit("probe-compute", 0.2, 0.4, [train] {
    return std::make_unique<workload::TrainingJob>(train);
  });
  cluster.sim().RunUntil(Minutes(5));

  const auto* oom_rec = host.RecordOf("probe-oom");
  result.oom_rejected =
      oom_rec != nullptr && oom_rec->has_finished && !oom_rec->success;
  const auto* compute_rec = host.RecordOf("probe-compute");
  if (compute_rec != nullptr && compute_rec->has_finished &&
      compute_rec->success) {
    // 1 s of kernels at a hard 20% cap needs >= ~4 s.
    result.throttled =
        (compute_rec->finished - compute_rec->started) >= Seconds(3);
  }
  return result;
}

/// KubeShare-only probes: pinned GPUID honored; anti-affinity spreads;
/// native pods co-exist.
struct KubeShareProbe {
  bool identity = false;
  bool locality = false;
  bool coexist = false;
};

KubeShareProbe ProbeKubeShare() {
  KubeShareProbe probe;
  k8s::ClusterConfig ccfg;
  ccfg.nodes = 1;
  ccfg.gpus_per_node = 4;
  k8s::Cluster cluster(ccfg);
  kubeshare::KubeShare kubeshare(&cluster);
  (void)cluster.Start();
  (void)kubeshare.Start();

  kubeshare::SharePod pinned;
  pinned.meta.name = "pinned";
  pinned.spec.gpu.gpu_request = 0.3;
  pinned.spec.gpu_id = GpuId("user-chosen-vgpu");
  pinned.spec.node_name = "node-0";
  (void)kubeshare.CreateSharePod(pinned);

  for (int i = 0; i < 2; ++i) {
    kubeshare::SharePod sp;
    sp.meta.name = "spread-" + std::to_string(i);
    sp.spec.gpu.gpu_request = 0.2;
    sp.spec.locality.anti_affinity = Label("spread");
    (void)kubeshare.CreateSharePod(sp);
  }

  k8s::Pod native;
  native.meta.name = "native";
  native.spec.requests.Set(k8s::kResourceNvidiaGpu, 1);
  (void)cluster.api().pods().Create(native);

  cluster.sim().RunUntil(Minutes(2));

  auto p = kubeshare.sharepods().Get("pinned");
  probe.identity = p.ok() &&
                   p->status.phase == kubeshare::SharePodPhase::kRunning &&
                   p->spec.gpu_id == GpuId("user-chosen-vgpu");
  auto s0 = kubeshare.sharepods().Get("spread-0");
  auto s1 = kubeshare.sharepods().Get("spread-1");
  probe.locality = s0.ok() && s1.ok() && s0->spec.gpu_id != s1->spec.gpu_id;
  auto n = cluster.api().pods().Get("native");
  probe.coexist = n.ok() && n->status.phase == k8s::PodPhase::kRunning;
  return probe;
}

}  // namespace

int main() {
  bench::Banner("bench_table1: GPU sharing solution comparison",
                "Table 1");

  const std::vector<baselines::BaselineTraits> systems = {
      baselines::DeepomaticTraits(), baselines::AliyunTraits(),
      baselines::GaiaGpuTraits(), baselines::KubeShareTraits()};

  Table matrix({"feature", "Deepomatic", "Aliyun", "GigaGPU", "KubeShare"});
  auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells{name};
    for (const auto& t : systems) cells.push_back(YesNo(getter(t)));
    matrix.AddRow(cells);
  };
  row("Multi-GPUs per node",
      [](const auto& t) { return t.multi_gpu_per_node; });
  row("Fine-grained allocation",
      [](const auto& t) { return t.fine_grained_allocation; });
  row("  ... arbitrary fractions",
      [](const auto& t) { return t.arbitrary_fractions; });
  row("Memory isolation", [](const auto& t) { return t.memory_isolation; });
  row("Computation isolation",
      [](const auto& t) { return t.compute_isolation; });
  row("First class with GPU identity",
      [](const auto& t) { return t.first_class_identity; });
  row("Locality constraint",
      [](const auto& t) { return t.locality_constraints; });
  row("Co-exist with kube-scheduler",
      [](const auto& t) { return t.coexists_with_kube_scheduler; });
  matrix.Print(std::cout);

  std::cout << "\nRuntime probes (claimed vs measured):\n\n";
  Table probes({"system", "memory isolation", "compute isolation"});
  for (const auto& traits : systems) {
    if (traits.name == "KubeShare") continue;  // probed separately below
    const ProbeResult r = ProbeBaseline(traits);
    probes.AddRow({traits.name, YesNo(r.oom_rejected), YesNo(r.throttled)});
  }
  probes.Print(std::cout);

  const KubeShareProbe ks_probe = ProbeKubeShare();
  std::cout << "\nKubeShare end-to-end probes:\n"
            << "  memory isolation   : Yes (see vgpu tests / bench_fig6)\n"
            << "  compute isolation  : Yes (see bench_fig6 / bench_fig7)\n"
            << "  first-class GPUID  : " << YesNo(ks_probe.identity) << "\n"
            << "  locality constraint: " << YesNo(ks_probe.locality) << "\n"
            << "  co-exists with kube-scheduler: "
            << YesNo(ks_probe.coexist) << "\n";
  return 0;
}
